"""Sharded featurization: append a batch of recipes, recompute only new shards.

Featurizes a corpus through the :class:`~repro.pipeline.CorpusEngine`, appends
fresh recipes with :meth:`RecipeDB.extend`, and refeaturizes — the store's
per-shard hit/miss counters show that every untouched prefix shard is a cache
hit and only the appended tail is computed.  Also demonstrates the sharded
on-disk form (``save_shards_jsonl`` / ``iter_shards_jsonl``) that lets a
corpus stream through the engine shard by shard.

Run with:  python examples/shard_corpus.py
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import replace
from pathlib import Path

from repro.data import generate_recipedb
from repro.data.storage import iter_shards_jsonl, save_shards_jsonl
from repro.pipeline import CorpusEngine, FeatureStore
from repro.pipeline.engine import SHARD_KIND
from repro.text.pipeline import PipelineConfig

SHARD_SIZE = 256
PIPELINE = PipelineConfig(split_items=True)


def main() -> None:
    print("Generating a synthetic RecipeDB corpus (scale=0.04)...")
    corpus = generate_recipedb(scale=0.04, seed=7)
    # Align to the shard size so the append adds cleanly new shards.
    corpus = corpus.subset(range((len(corpus) // SHARD_SIZE) * SHARD_SIZE))
    print(f"  {len(corpus)} recipes -> {len(corpus.shards(SHARD_SIZE))} shards of {SHARD_SIZE}")

    store = FeatureStore(max_entries=4096)
    engine = CorpusEngine(store, shard_size=SHARD_SIZE)

    print("\nCold featurization (every shard computed):")
    start = time.perf_counter()
    engine.tokens(corpus, PIPELINE)
    cold_seconds = time.perf_counter() - start
    print(f"  {cold_seconds * 1000:.0f} ms, "
          f"shard misses={store.miss_count(SHARD_KIND)} hits={store.hit_count(SHARD_KIND)}")

    print("\nAppending one shard's worth of new recipes via RecipeDB.extend...")
    donor = generate_recipedb(scale=0.04, seed=99)
    extra = [
        replace(recipe, recipe_id=10**7 + i)
        for i, recipe in enumerate(donor.recipes[:SHARD_SIZE])
    ]
    grown = corpus.extend(extra)
    print(f"  {len(corpus)} -> {len(grown)} recipes; "
          f"fingerprint {corpus.fingerprint()[:12]}... -> {grown.fingerprint()[:12]}...")

    store.reset_stats()
    start = time.perf_counter()
    engine.tokens(grown, PIPELINE)
    incremental_seconds = time.perf_counter() - start
    print("\nIncremental refeaturization of the grown corpus:")
    print(f"  {incremental_seconds * 1000:.0f} ms "
          f"({cold_seconds / max(incremental_seconds, 1e-9):.1f}x faster than cold)")
    print(f"  shard hits={store.hit_count(SHARD_KIND)} (prefix reused) "
          f"misses={store.miss_count(SHARD_KIND)} (appended tail only)")

    with tempfile.TemporaryDirectory() as tmp:
        shard_dir = Path(tmp) / "corpus-shards"
        print("\nWriting the grown corpus as sharded JSONL...")
        paths = save_shards_jsonl(grown, shard_dir, shard_size=SHARD_SIZE)
        print(f"  {len(paths)} shard files + shards.json manifest in {shard_dir.name}/")

        print("Streaming the shards back through the engine (all cache hits):")
        store.reset_stats()
        n_recipes = 0
        for shard in iter_shards_jsonl(shard_dir):
            n_recipes += len(engine.shard_tokens(shard, PIPELINE))
        print(f"  {n_recipes} recipes featurized, "
              f"shard hits={store.hit_count(SHARD_KIND)} misses={store.miss_count(SHARD_KIND)}")


if __name__ == "__main__":
    main()
