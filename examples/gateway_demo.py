"""Train -> export -> deploy v1 -> canary v2 -> promote: the gateway flow.

Demonstrates the `repro.gateway` deployment subsystem end to end:

1. train two models and export them as versioned bundles;
2. stand up a :class:`~repro.gateway.ModelGateway`, deploy the first bundle
   as ``cuisine@v1`` and take live traffic;
3. deploy a candidate as ``v2`` *dark* (no traffic), qualify it with shadow
   mirroring (agreement vs. the primary, off the critical path);
4. open a deterministic 20% canary — the same request key always lands on
   the same side, so users never flap between variants;
5. promote ``v2`` with an atomic hot-swap, then show rollback; and
6. read the shared observability: per-route counters, shadow agreement and
   rolling latency quantiles, plus the underlying service stats.

Run with:  python examples/gateway_demo.py
"""

from __future__ import annotations

import tempfile

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.data import generate_recipedb
from repro.gateway import Canary, ModelGateway, Shadow


def main() -> None:
    print("Generating a synthetic RecipeDB corpus (scale=0.02)...")
    corpus = generate_recipedb(scale=0.02, seed=7)
    requests = [recipe.sequence for recipe in corpus.recipes[:300]]

    with tempfile.TemporaryDirectory() as export_dir:
        print("\n[1] Training logreg (v1) + naive_bayes (v2 candidate), exporting bundles...")
        config = ExperimentConfig(
            models=("logreg", "naive_bayes"), seed=7, export_dir=export_dir
        )
        result = ExperimentRunner(config, corpus=corpus).run()
        for name, model_result in result.model_results.items():
            print(f"    {name:<12} accuracy={model_result.metrics.accuracy:.3f}")

        with ModelGateway() as gateway:
            print("\n[2] Deploying v1 and serving traffic...")
            gateway.deploy("cuisine", "v1", f"{export_dir}/logreg")
            for sequence in requests[:50]:
                gateway.predict("cuisine", sequence)
            print(f"    active={gateway.registry.active_version('cuisine')}")

            print("\n[3] Deploying v2 dark + shadow-qualifying it...")
            gateway.deploy("cuisine", "v2", f"{export_dir}/naive_bayes", activate=False)
            gateway.set_policy("cuisine", Shadow(candidate="v2"))
            for sequence in requests[50:150]:
                gateway.predict("cuisine", sequence)
            gateway.flush_shadows()
            shadow = gateway.registry.metrics("cuisine").snapshot()["shadow"]
            print(
                f"    mirrored {shadow['requests']} requests off the critical path: "
                f"{shadow['agreements']} agree / {shadow['disagreements']} disagree "
                f"(rate {shadow['agreement_rate']:.2f})"
            )

            print("\n[4] Opening a deterministic 20% canary on v2...")
            gateway.set_policy("cuisine", Canary(candidate="v2", fraction=0.2))
            for index, sequence in enumerate(requests):
                gateway.predict("cuisine", sequence, key=f"user-{index % 100}")
            by_variant = gateway.registry.metrics("cuisine").snapshot()["by_variant"]
            print(f"    requests by variant: {by_variant}")
            same_key = {gateway.predict("cuisine", requests[0], key="user-3") for _ in range(5)}
            print(f"    5 repeats of one key hit one variant -> {len(same_key)} distinct answer(s)")

            print("\n[5] Promoting v2 (atomic hot-swap) and rolling back...")
            gateway.clear_policy("cuisine")
            gateway.swap("cuisine", "v2")
            print(f"    active={gateway.registry.active_version('cuisine')}")
            gateway.rollback("cuisine")
            print(f"    after rollback: active={gateway.registry.active_version('cuisine')}")
            gateway.swap("cuisine", "v2")  # promote for good

            print("\n[6] Health snapshot (shared observability):")
            snapshot = gateway.health_snapshot()
            route = snapshot["routes"]["cuisine"]
            latency = route["latency"]
            print(f"    status            {snapshot['status']}")
            print(f"    route requests    {route['requests']} (errors {route['errors']})")
            print(f"    by variant        {route['by_variant']}")
            print(
                f"    latency           p50={latency['p50_ms']:.2f}ms "
                f"p95={latency['p95_ms']:.2f}ms p99={latency['p99_ms']:.2f}ms"
            )
            service = snapshot["service"]
            print(
                f"    service           {service['requests']} requests, "
                f"{service['cache_hits']} cache hits, "
                f"{service['batches_flushed']} batches"
            )


if __name__ == "__main__":
    main()
