"""Train -> export -> prefork a worker fleet -> roll it under load.

Walks the scale-out story of the reproduction stack:

1. train a model and export it as a versioned bundle;
2. prefork a two-worker :class:`repro.cluster.ClusterSupervisor` over the
   export — one public port (``SO_REUSEPORT`` where the platform has it,
   a consistent-hash balancer otherwise), memory-mapped bundles so the
   workers share one physical copy of the model arrays;
3. read the fleet like an operator would — merged ``/healthz``,
   per-worker membership, flat-text ``/metrics`` — from the supervisor's
   control port;
4. replay a seeded open-loop workload with :mod:`repro.loadgen` and
   trigger a **rolling restart** mid-run: every worker is replaced
   spawn-before-drain, and zero requests are dropped;
5. print the loadgen report next to the fleet's merged latency
   quantiles, then drain the whole fleet gracefully.

Run with:  python examples/cluster_demo.py
"""

from __future__ import annotations

import http.client
import json
import tempfile
import threading

from repro.cluster import ClusterSupervisor
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.data import generate_recipedb
from repro.loadgen import HTTPTarget, build_workload, run_open_loop

ADMIN_TOKEN = "demo-admin-token"


def call(port: int, method: str, path: str, payload=None, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        body = json.dumps(payload) if payload is not None else None
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        data = response.read()
        try:
            return response.status, json.loads(data)
        except ValueError:
            return response.status, data.decode()
    finally:
        connection.close()


def main() -> None:
    print("Generating a synthetic RecipeDB corpus (scale=0.02)...")
    corpus = generate_recipedb(scale=0.02, seed=7)
    pool = [recipe.sequence for recipe in corpus.recipes[:200]]

    with tempfile.TemporaryDirectory() as workdir:
        print("\n[1] Training logreg and exporting the bundle...")
        config = ExperimentConfig(
            models=("logreg",), seed=7, export_dir=f"{workdir}/export"
        )
        ExperimentRunner(config, corpus=corpus).run()

        print("\n[2] Preforking a two-worker fleet over the export...")
        supervisor = ClusterSupervisor(
            workers=2,
            export_dir=f"{workdir}/export",
            route="cuisine",
            admin_token=ADMIN_TOKEN,
            workdir=f"{workdir}/cluster",
        )
        handle = supervisor.start_in_thread()
        print(
            f"    {supervisor.mode} mode: data http://127.0.0.1:{handle.port}, "
            f"control http://127.0.0.1:{handle.control_port}"
        )

        print("\n[3] Reading the fleet from the supervisor's control port:")
        status, health = call(handle.control_port, "GET", "/healthz")
        members = health["cluster"]["members"]
        print(
            f"    GET /healthz   -> {status} status={health['status']} "
            f"workers={health['cluster']['workers']}"
        )
        for member in members:
            print(
                f"      worker {member['worker']}: pid={member['pid']} "
                f"port={member['port']} control={member['control_port']}"
            )
        status, answer = call(
            handle.port, "POST", "/routes/cuisine/predict",
            {"sequence": list(pool[0]), "key": "user-0"},
        )
        print(f"    POST .../predict -> {status} label={answer['label']}")
        status, text = call(handle.control_port, "GET", "/metrics")
        print(f"    GET /metrics   -> {status} ({len(text.splitlines())} metrics)")

        print("\n[4] Open-loop loadgen + rolling restart mid-run...")
        workload = build_workload(
            pool, n_requests=600, seed=42, rate=120.0,
            key_distribution="zipf", n_keys=100,
        )

        def roll() -> None:
            restarted = handle.rolling_restart()
            print(f"    [mid-run] rolled workers {restarted} (spawn-before-drain)")

        roller = threading.Timer(1.0, roll)
        roller.start()
        report = run_open_loop(HTTPTarget("127.0.0.1", handle.port, "cuisine"), workload)
        roller.join()

        print(
            f"    completed {report.ok}/{report.n_requests} "
            f"(errors={report.errors}, shed={report.shed}) at "
            f"{report.throughput_rps:.0f} rps — zero dropped through the roll"
        )
        latency = report.latency
        print(
            f"    client latency        p50={latency['p50_ms']:.2f}ms "
            f"p95={latency['p95_ms']:.2f}ms p99={latency['p99_ms']:.2f}ms"
        )
        _, health = call(handle.control_port, "GET", "/healthz")
        merged = health["server"]["latency"]
        print(
            f"    fleet latency (merged) p50={merged['p50_ms']:.2f}ms "
            f"p95={merged['p95_ms']:.2f}ms p99={merged['p99_ms']:.2f}ms"
        )
        pids = [member["pid"] for member in health["cluster"]["members"]]
        print(f"    fleet after the roll  pids={pids} (all replaced)")

        print("\n[5] Draining the fleet gracefully...")
        handle.stop()
        print("    drained.")


if __name__ == "__main__":
    main()
