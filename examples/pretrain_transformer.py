"""Walkthrough: masked-language-model pretraining on recipes (BERT vs RoBERTa).

The paper attributes RoBERTa's edge over BERT to its pretraining recipe
(longer training, dynamic masking).  This example makes that mechanism
visible: it pretrains the same transformer encoder on the recipe corpus with
the BERT-style static masking and the RoBERTa-style dynamic masking, shows the
MLM loss curves, then fine-tunes both for cuisine classification and compares
against a transformer trained from scratch (no pretraining at all).

Run with:  python examples/pretrain_transformer.py [--scale 0.015]
"""

from __future__ import annotations

import argparse

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.evaluation.reports import format_table, render_ascii_chart
from repro.models.transformer_classifier import (
    TransformerClassifierConfig,
    TransformerCuisineClassifier,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.015)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--epochs", type=int, default=4)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    runner = ExperimentRunner(ExperimentConfig(models=("logreg",), scale=args.scale, seed=args.seed))
    splits = runner.prepare_splits()
    label_space = splits.train.present_cuisines()
    print(
        f"Corpus: {sum(splits.sizes)} recipes "
        f"(train {splits.sizes[0]} / val {splits.sizes[1]} / test {splits.sizes[2]})"
    )

    variants = {
        "no pretraining": TransformerClassifierConfig(
            epochs=args.epochs, pretrain_epochs=0, seed=args.seed
        ),
        "BERT-style (static mask, short)": TransformerClassifierConfig(
            epochs=args.epochs, pretrain_epochs=1, pretrain_dynamic_masking=False, seed=args.seed
        ),
        "RoBERTa-style (dynamic mask, long)": TransformerClassifierConfig(
            epochs=args.epochs, pretrain_epochs=3, pretrain_dynamic_masking=True, seed=args.seed
        ),
    }

    rows = []
    mlm_curves: dict[str, list[float]] = {}
    for label, config in variants.items():
        print(f"\nTraining transformer [{label}] ...")
        model = TransformerCuisineClassifier(label_space=label_space, config=config)
        model.fit(splits.train, splits.validation)
        metrics = model.evaluate(splits.test)
        if model.pretraining_result is not None and model.pretraining_result.losses_per_epoch:
            mlm_curves[label] = model.pretraining_result.losses_per_epoch
        rows.append(
            {
                "Variant": label,
                "Test accuracy (%)": round(metrics.accuracy * 100, 2),
                "Test loss": round(metrics.loss, 3),
                "F1": round(metrics.f1, 3),
            }
        )

    print()
    if mlm_curves:
        print(render_ascii_chart(mlm_curves, title="MLM pretraining loss per epoch"))
        print()
    print(format_table(rows, title="Effect of in-domain MLM pretraining"))


if __name__ == "__main__":
    main()
