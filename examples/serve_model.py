"""Train -> export -> serve -> query: the full model-artifact flow.

Trains two Table IV models, exports each as a self-contained bundle
(``manifest.json`` + ``arrays-<digest>.npz``), then stands up a
:class:`~repro.serving.PredictionService` over the export directory — in a
real deployment this second half runs in a different process, loading the
bundles without any training code or corpus.  The service featurizes raw
recipe sequences through a shared warm feature store, micro-batches
concurrent requests, and LRU-caches repeated inputs.

Run with:  python examples/serve_model.py
"""

from __future__ import annotations

import tempfile
import threading

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.data import generate_recipedb
from repro.serving import PredictionService, discover_bundles


def main() -> None:
    print("Generating a synthetic RecipeDB corpus (scale=0.02)...")
    corpus = generate_recipedb(scale=0.02, seed=7)
    print(f"  {len(corpus)} recipes across {len(corpus.present_cuisines())} cuisines")

    with tempfile.TemporaryDirectory() as export_dir:
        print("\nTraining logreg + naive_bayes and exporting bundles...")
        config = ExperimentConfig(
            models=("logreg", "naive_bayes"), seed=7, export_dir=export_dir
        )
        result = ExperimentRunner(config, corpus=corpus).run()
        for name, model_result in result.model_results.items():
            print(
                f"  {name:<12} accuracy={model_result.metrics.accuracy:.3f} "
                f"-> {model_result.extra['bundle_path']}"
            )
        print(f"  bundles on disk: {sorted(discover_bundles(export_dir))}")

        print("\nServing from the export directory (fresh models, no corpus)...")
        with PredictionService.from_export_dir(export_dir) as service:
            recipes = {
                "curry-like": ["basmati rice", "coconut milk", "turmeric", "cumin",
                               "ginger", "simmer", "add", "stir", "season", "pot"],
                "pasta-like": ["pasta", "tomato", "garlic", "olive oil", "basil",
                               "boil", "add", "toss", "serve", "saucepan"],
                "taco-like": ["tortilla", "beef", "chunky salsa", "corn", "chili",
                              "fry", "add", "heat", "serve", "skillet"],
            }

            print("\nSingle predictions (micro-batched under the hood):")
            for label, sequence in recipes.items():
                cuisine = service.predict("logreg", sequence)
                print(f"  {label:<12} -> {cuisine}")

            print("\nConcurrent clients (one micro-batch per flush):")
            sequences = list(recipes.values()) * 4
            threads = [
                threading.Thread(target=service.predict, args=("naive_bayes", sequence))
                for sequence in sequences
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            print("\nBatch prediction (one model pass):")
            for label, cuisine in zip(recipes, service.predict_batch("logreg", list(recipes.values()))):
                print(f"  {label:<12} -> {cuisine}")

            stats = service.stats()
            print("\nService counters:")
            print(f"  requests          {stats['requests']}")
            print(f"  cache hits/misses {stats['cache_hits']}/{stats['cache_misses']}")
            print(
                f"  batches flushed   {stats['batches_flushed']} "
                f"(mean size {stats['mean_batch_size']:.1f}, largest {stats['largest_batch']})"
            )
            print(f"  mean latency      {stats['latency']['mean_ms']:.2f} ms")


if __name__ == "__main__":
    main()
