"""Quickstart: train a cuisine classifier and classify a new recipe.

Generates a small synthetic RecipeDB corpus, fits the paper's best
statistical baseline (Logistic Regression on TF-IDF), reports the Table IV
metric set on the held-out test split, and classifies a few hand-written
recipes given as sequences of ingredients, processes and utensils.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import CuisineClassifier
from repro.data import generate_recipedb


def main() -> None:
    print("Generating a synthetic RecipeDB corpus (scale=0.02)...")
    corpus = generate_recipedb(scale=0.02, seed=7)
    print(f"  {len(corpus)} recipes across {len(corpus.present_cuisines())} cuisines")

    print("\nTraining Logistic Regression on TF-IDF features (7:1:2 split)...")
    classifier = CuisineClassifier("logreg", label_space=corpus.present_cuisines())
    classifier.fit(corpus, seed=13)

    metrics = classifier.evaluate_holdout()
    print("\nHeld-out test metrics (Table IV format):")
    for metric, value in metrics.table_row().items():
        print(f"  {metric:<10} {value}")

    print("\nClassifying new recipes:")
    recipes = {
        "curry-like": ["basmati rice", "coconut milk", "turmeric", "cumin", "ginger",
                       "simmer", "add", "stir", "season", "pot"],
        "pasta-like": ["pasta", "tomato", "garlic", "olive oil", "basil",
                       "boil", "add", "toss", "serve", "saucepan"],
        "taco-like": ["tortilla", "beef", "chunky salsa", "corn", "chili",
                      "fry", "add", "heat", "serve", "skillet"],
    }
    for label, sequence in recipes.items():
        top = classifier.top_cuisines(sequence, k=3)
        formatted = ", ".join(f"{cuisine} ({probability:.2f})" for cuisine, probability in top)
        print(f"  {label:<12} -> {formatted}")


if __name__ == "__main__":
    main()
