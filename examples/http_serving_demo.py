"""Train -> export -> serve over HTTP -> measure with loadgen: the frontier flow.

Walks the full online story of the reproduction stack:

1. train two models and export them as versioned bundles;
2. stand up the asyncio HTTP server (:class:`repro.server.ModelServer`) over
   a gateway with ``cuisine@v1`` live and ``cuisine@v2`` dark;
3. speak to it like any client would — ``/healthz``, a JSON predict, the
   flat-text ``/metrics``;
4. replay a seeded open-loop workload (Zipf-hot keys, Poisson arrivals)
   with :mod:`repro.loadgen`, hot-swapping ``v2`` in mid-run through the
   admin API — zero requests dropped;
5. print the loadgen report next to the server's own latency quantiles and
   the service's batch-control / coalescing stats, then drain gracefully.

Run with:  python examples/http_serving_demo.py
"""

from __future__ import annotations

import http.client
import json
import tempfile
import threading

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.data import generate_recipedb
from repro.gateway import ModelGateway
from repro.loadgen import HTTPTarget, build_workload, run_open_loop
from repro.server import ModelServer

ADMIN_TOKEN = "demo-admin-token"


def call(port: int, method: str, path: str, payload=None, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        body = json.dumps(payload) if payload is not None else None
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        data = response.read()
        try:
            return response.status, json.loads(data)
        except ValueError:
            return response.status, data.decode()
    finally:
        connection.close()


def main() -> None:
    print("Generating a synthetic RecipeDB corpus (scale=0.02)...")
    corpus = generate_recipedb(scale=0.02, seed=7)
    pool = [recipe.sequence for recipe in corpus.recipes[:200]]

    with tempfile.TemporaryDirectory() as export_dir:
        print("\n[1] Training logreg (v1) + naive_bayes (v2), exporting bundles...")
        config = ExperimentConfig(
            models=("logreg", "naive_bayes"), seed=7, export_dir=export_dir
        )
        ExperimentRunner(config, corpus=corpus).run()

        print("\n[2] Serving cuisine@v1 over HTTP (v2 deployed dark)...")
        # Adaptive batch control: lone requests flush immediately, a backlog
        # grows batches toward the 25ms latency objective.
        gateway = ModelGateway(batch_policy="adaptive", slo_ms=25.0)
        gateway.deploy("cuisine", "v1", f"{export_dir}/logreg")
        gateway.deploy("cuisine", "v2", f"{export_dir}/naive_bayes", activate=False)
        # trace_capacity covers the whole loadgen run so the slowest
        # request's trace is still retrievable at the end.
        server = ModelServer(
            gateway, admin_token=ADMIN_TOKEN, max_inflight=128, trace_capacity=512
        )
        handle = server.start_in_thread()
        print(f"    listening on http://127.0.0.1:{handle.port}")

        print("\n[3] Talking to it like a client:")
        status, health = call(handle.port, "GET", "/healthz")
        print(f"    GET /healthz          -> {status} status={health['status']}")
        status, answer = call(
            handle.port, "POST", "/routes/cuisine/predict",
            {"sequence": list(pool[0]), "key": "user-0"},
        )
        print(f"    POST .../predict      -> {status} label={answer['label']}")
        status, text = call(handle.port, "GET", "/metrics")
        print(f"    GET /metrics          -> {status} ({len(text.splitlines())} metrics)")

        print("\n[4] Open-loop loadgen (Zipf keys, 400 rps offered) + mid-run hot swap...")
        workload = build_workload(
            pool, n_requests=400, seed=42, rate=400.0,
            key_distribution="zipf", n_keys=100,
        )

        def promote_v2() -> None:
            status, _ = call(
                handle.port, "POST", "/admin/routes/cuisine/swap",
                {"version": "v2"}, {"x-admin-token": ADMIN_TOKEN},
            )
            print(f"    [mid-run] admin swap to v2 -> {status}")

        swapper = threading.Timer(workload.duration / 2, promote_v2)
        swapper.start()
        report = run_open_loop(HTTPTarget("127.0.0.1", handle.port, "cuisine"), workload)
        swapper.join()

        print(
            f"    completed {report.ok}/{report.n_requests} "
            f"(errors={report.errors}, shed={report.shed}) at "
            f"{report.throughput_rps:.0f} rps"
        )
        latency = report.latency
        print(
            f"    client latency        p50={latency['p50_ms']:.2f}ms "
            f"p95={latency['p95_ms']:.2f}ms p99={latency['p99_ms']:.2f}ms"
        )
        _, health = call(handle.port, "GET", "/healthz")
        server_latency = health["server"]["latency"]
        print(
            f"    server latency        p50={server_latency['p50_ms']:.2f}ms "
            f"p95={server_latency['p95_ms']:.2f}ms p99={server_latency['p99_ms']:.2f}ms"
        )
        by_variant = health["routes"]["cuisine"]["by_variant"]
        print(f"    requests by variant   {by_variant} (swap dropped nothing)")
        # The prediction service splits each batch's wall clock into stage
        # timers (also flattened into /metrics as service_stages_* lines);
        # unit-free queue_depth / batch_size distributions sit next to them.
        service_stats = health["service"]
        stages = service_stats["stages"]
        print("    service stages        " + "  ".join(
            f"{name}: mean={snapshot['mean_ms']:.2f}ms p99={snapshot['p99_ms']:.2f}ms"
            for name, snapshot in stages.items() if "mean_ms" in snapshot
        ))
        batching = service_stats["batching"]
        batch_size = stages["batch_size"]
        queue_depth = stages["queue_depth"]
        print(
            f"    batch control         policy={batching['policy']} "
            f"window={batching['window_ms']:.1f}ms "
            f"batch p50={batch_size['p50']:.0f} max={batch_size['max']:.0f} "
            f"queue p99={queue_depth['p99']:.0f}"
        )
        print(
            f"    coalescing            hits={service_stats['coalesced_hits']} "
            f"(identical in-flight requests shared one model pass)"
        )

        print("\n[5] Tracing the slowest request of the run...")
        # Every response carried its trace id in the X-Repro-Trace header;
        # the load report kept the ids of the slowest requests, and the
        # server's debug plane can replay where each one spent its time.
        slowest = report.slow_traces[0]
        print(
            f"    slowest request       {slowest['latency_ms']:.2f}ms "
            f"trace_id={slowest['trace_id']}"
        )
        status, trace = call(
            handle.port, "GET", f"/debug/traces/{slowest['trace_id']}"
        )
        if status == 200:
            for span in trace["spans"]:
                indent = "  " if span["parent_id"] else ""
                duration = span["duration_ms"] or 0.0
                print(
                    f"      {indent}{span['name']:<26} "
                    f"start={span['start_ms']:7.2f}ms dur={duration:7.2f}ms"
                )
        else:
            # Evicted from the bounded ring by later traffic — the listing
            # still shows what the store retained.
            _, listing = call(handle.port, "GET", "/debug/traces")
            print(f"    (trace evicted; store stats: {listing['stats']})")

        print("\n[6] Draining gracefully (finish in-flight, close the service)...")
        handle.stop()
        print("    drained.")


if __name__ == "__main__":
    main()
