"""Explore the RecipeDB corpus statistics the paper reports (Tables I-III).

Generates a corpus and prints: sample recipes per continent (Table I), the
per-cuisine recipe counts against the paper's Table II, the cumulative
feature-frequency distribution (Table III), the sparsity ratio, and the
feature-frequency histograms behind the paper's dataset figures.

Run with:  python examples/dataset_statistics.py [--scale 0.05]
"""

from __future__ import annotations

import argparse

from repro.data import compute_corpus_statistics, generate_recipedb
from repro.data.schema import TokenKind
from repro.evaluation.figures import feature_frequency_histogram
from repro.evaluation.reports import format_table, render_ascii_chart
from repro.evaluation.tables import table_i, table_ii, table_iii


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    corpus = generate_recipedb(scale=args.scale, seed=args.seed)
    statistics = compute_corpus_statistics(corpus)

    print(format_table(table_i(corpus), title="TABLE I - SAMPLE DATASET"))
    print()
    print(format_table(table_ii(corpus), title="TABLE II - DATASET INFORMATION"))
    print()
    print(format_table(table_iii(corpus), title="TABLE III - FREQUENCY DISTRIBUTION OF FEATURES"))

    print()
    print("Corpus summary:")
    print(f"  recipes                : {statistics.n_recipes}")
    print(f"  cuisines               : {statistics.n_cuisines}")
    print(f"  unique features        : {statistics.n_unique_features}")
    print(f"    ingredients          : {statistics.n_unique_ingredients}")
    print(f"    processes            : {statistics.n_unique_processes}")
    print(f"    utensils             : {statistics.n_unique_utensils}")
    print(f"  sparsity ratio         : {statistics.sparsity:.4f}  (paper: 0.9950)")
    print(f"  most frequent feature  : {statistics.most_frequent_feature!r} "
          f"x{statistics.most_frequent_count}  (paper: 'add' x188,004)")
    print(f"  hapax features         : {statistics.hapax_count}")
    print(f"  mean sequence length   : {statistics.mean_sequence_length:.1f}")

    print()
    for kind, label in ((None, "all features"), (TokenKind.PROCESS, "processes"),
                        (TokenKind.INGREDIENT, "ingredients")):
        figure = feature_frequency_histogram(corpus, kind=kind, top_k=8)
        top = {entry["feature"]: entry["count"] for entry in figure["top_features"]}
        print(render_ascii_chart(top, title=f"Most frequent {label}"))
        print()


if __name__ == "__main__":
    main()
