"""Ablation: does the order of recipe steps actually matter?

The paper's central claim is that the *order* of cooking processes carries
cuisine signal that bag-of-words models cannot see.  This example tests that
claim directly: it trains the same transformer classifier twice — once on the
original sequential recipes and once on recipes whose items have been randomly
shuffled (destroying order while keeping the exact same bag of items) — and a
TF-IDF Logistic Regression as the order-blind reference.

Expected outcome: the transformer loses accuracy when sequences are shuffled,
while Logistic Regression is (by construction) unaffected up to noise.

Run with:  python examples/sequence_order_ablation.py [--scale 0.02]
"""

from __future__ import annotations

import argparse

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.evaluation.reports import format_table
from repro.models.transformer_classifier import TransformerClassifierConfig


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--epochs", type=int, default=5)
    return parser.parse_args()


def run(shuffled: bool, args: argparse.Namespace) -> dict[str, float]:
    config = ExperimentConfig(
        models=("logreg", "roberta"),
        scale=args.scale,
        seed=args.seed,
        shuffle_sequences=shuffled,
        transformer_config=TransformerClassifierConfig(
            epochs=args.epochs, pretrain_epochs=2, seed=args.seed
        ),
    )
    result = ExperimentRunner(config).run()
    return {
        name: model_result.metrics.accuracy
        for name, model_result in result.model_results.items()
    }


def main() -> None:
    args = parse_args()
    print("Training on ORDERED recipes...")
    ordered = run(shuffled=False, args=args)
    print("Training on SHUFFLED recipes (same items, random order)...")
    shuffled = run(shuffled=True, args=args)

    rows = []
    for name in ("logreg", "roberta"):
        rows.append(
            {
                "Model": name,
                "Ordered accuracy": round(ordered[name] * 100, 2),
                "Shuffled accuracy": round(shuffled[name] * 100, 2),
                "Drop (points)": round((ordered[name] - shuffled[name]) * 100, 2),
            }
        )
    print()
    print(format_table(rows, title="Sequence-order ablation"))
    print()
    transformer_drop = ordered["roberta"] - shuffled["roberta"]
    logreg_drop = ordered["logreg"] - shuffled["logreg"]
    if transformer_drop > logreg_drop:
        print(
            "The transformer loses more accuracy than Logistic Regression when order is "
            "destroyed - the sequential structure carries real cuisine signal, as the paper argues."
        )
    else:
        print(
            "No clear order effect at this scale; increase --scale or --epochs for a "
            "sharper comparison."
        )


if __name__ == "__main__":
    main()
