"""Reproduce Table IV: compare all seven models on one corpus.

Runs the full experiment harness — TF-IDF statistical baselines (Logistic
Regression, Naive Bayes, linear SVM, Random Forest+AdaBoost) and the
sequential models (2-layer LSTM, BERT- and RoBERTa-style transformers with
in-domain MLM pretraining) — on a synthetic RecipeDB corpus and prints the
regenerated Table IV next to the paper's reported values, plus the normalized
accuracy figure.

The corpus scale and the neural model sizes are configurable from the command
line; the defaults finish in a few minutes on a laptop.

Run with:  python examples/compare_models.py [--scale 0.02] [--models logreg,bert,...]
"""

from __future__ import annotations

import argparse

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.evaluation.figures import loss_curves, normalized_accuracy
from repro.evaluation.reports import format_table, render_ascii_chart
from repro.evaluation.tables import table_iv
from repro.models.lstm_classifier import LSTMClassifierConfig
from repro.models.registry import MODEL_NAMES
from repro.models.transformer_classifier import TransformerClassifierConfig


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02,
                        help="fraction of the Table II corpus to generate")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--models", type=str, default=",".join(MODEL_NAMES),
        help="comma-separated registry names (default: all seven Table IV models)",
    )
    parser.add_argument("--epochs", type=int, default=5, help="neural fine-tuning epochs")
    parser.add_argument("--pretrain-epochs", type=int, default=2,
                        help="transformer MLM pretraining epochs (BERT uses half)")
    parser.add_argument("--n-jobs", type=int, default=1,
                        help="models trained concurrently (they share one feature store)")
    parser.add_argument("--n-workers", type=int, default=1,
                        help="corpus-engine worker processes for the sharded preprocessing pass")
    parser.add_argument("--shard-size", type=int, default=512,
                        help="recipes per corpus shard (the unit of parallel/incremental work)")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="persist preprocessing artifacts here and reuse them across runs")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    models = tuple(name.strip() for name in args.models.split(",") if name.strip())

    lstm_config = LSTMClassifierConfig(epochs=args.epochs, seed=args.seed)
    transformer_config = TransformerClassifierConfig(
        epochs=args.epochs, pretrain_epochs=args.pretrain_epochs, seed=args.seed
    )

    print(f"Running the Table IV experiment on scale={args.scale} with models: {models}")
    config = ExperimentConfig(
        models=models,
        scale=args.scale,
        seed=args.seed,
        lstm_config=lstm_config,
        transformer_config=transformer_config,
        n_jobs=args.n_jobs,
        n_workers=args.n_workers,
        shard_size=args.shard_size,
        cache_dir=args.cache_dir,
    )
    runner = ExperimentRunner(config)
    result = runner.run()

    print()
    print(format_table(table_iv(result), title="TABLE IV - PERFORMANCE METRICS (measured vs paper)"))

    print()
    series = normalized_accuracy(result)
    print(render_ascii_chart(series["measured"], title="Normalized model accuracy (measured)"))

    curves = loss_curves(result, split="val")
    if curves:
        print()
        print(render_ascii_chart(curves, title="Validation loss per epoch (neural models)"))

    print()
    ranking = result.accuracy_ranking()
    best, best_accuracy = ranking[0]
    print(f"Best model: {best} with test accuracy {best_accuracy:.2%}")
    for name, model_result in result.model_results.items():
        print(f"  {name:<14} trained in {model_result.train_seconds:6.1f}s")

    stats = runner.store.stats()
    print(
        "Feature store: "
        f"{sum(stats['hits'].values())} hits, "
        f"{sum(stats['disk_hits'].values())} disk hits, "
        f"{sum(stats['misses'].values())} computations "
        f"({stats['entries']} artifacts resident)"
    )


if __name__ == "__main__":
    main()
