"""Train -> deploy -> shadow -> evaluate -> promote / rollback: the eval gate.

Walks the `repro.eval` quality gate end to end through a live server's
admin plane:

1. build a versioned, content-fingerprinted golden set from the held-out
   test split (with rare-cuisine generalization slices);
2. train a baseline (``v1``), an equal-quality retrained candidate
   (``v2``, same architecture, different seed) and a *degraded* candidate
   (``v3``, trained on label-permuted recipes), exporting each as a bundle;
3. serve ``v1`` with ``v2`` dark, shadow-mirror live traffic onto ``v2``
   so the canary analyzer has agreement evidence;
4. ``POST /admin/routes/cuisine/evaluate`` with ``apply`` — the layered
   harness (compatibility -> accuracy -> calibration -> slices) plus the
   seeded bootstrap promote ``v2`` and the server swaps it active;
5. simulate a bad deploy: swap ``v3`` active, evaluate it against ``v2`` —
   the gate returns **rollback** and the server restores ``v2``;
6. read the stored verdict back over GET, `/healthz` and `/metrics`.

Run with:  python examples/eval_gate_demo.py
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import tempfile
from pathlib import Path

import numpy as np

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.data import generate_recipedb
from repro.data.recipedb import RecipeDB
from repro.data.splits import train_val_test_split
from repro.eval import build_golden_set, save_golden_set
from repro.gateway import ModelGateway, Shadow
from repro.server import ModelServer

ADMIN_TOKEN = "demo-admin-token"


def call(port: int, method: str, path: str, payload=None, admin=False):
    headers = {"x-admin-token": ADMIN_TOKEN} if admin else {}
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        body = json.dumps(payload) if payload is not None else None
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        data = response.read()
        try:
            return response.status, json.loads(data)
        except ValueError:
            return response.status, data.decode()
    finally:
        connection.close()


def train_logreg(corpus, export_dir: Path, seed: int) -> Path:
    config = ExperimentConfig(
        models=("logreg",),
        seed=seed,
        statistical_kwargs={"logreg": {"max_iter": 60}},
        export_dir=str(export_dir),
    )
    result = ExperimentRunner(config, corpus=corpus).run()
    accuracy = result.model_results["logreg"].metrics.accuracy
    print(f"    trained logreg (seed={seed}) accuracy={accuracy:.3f}")
    return export_dir / "logreg"


def main() -> None:
    print("Generating a synthetic RecipeDB corpus (scale=0.02)...")
    corpus = generate_recipedb(scale=0.02, seed=7)
    splits = train_val_test_split(corpus, seed=7)

    with tempfile.TemporaryDirectory() as workdir:
        root = Path(workdir)

        print("\n[1] Building a golden set from the held-out test split...")
        golden = build_golden_set(splits.test, "cuisine", version="1", seed=7)
        golden_path = save_golden_set(golden, root / "golden_cuisine.jsonl")
        slices = golden.slices()
        print(
            f"    {len(golden)} examples, fingerprint {golden.fingerprint()}, "
            f"slices: "
            + ", ".join(f"{name} ({len(rows)})" for name, rows in sorted(slices.items()))
        )

        print("\n[2] Training baseline v1, retrained candidate v2, degraded v3...")
        v1 = train_logreg(corpus, root / "v1", seed=7)
        v2 = train_logreg(corpus, root / "v2", seed=8)
        # v3 trains on label-permuted recipes: schema-valid, confidently wrong.
        rng = np.random.default_rng(5)
        cuisines = corpus.cuisines
        corrupted = RecipeDB(
            [
                dataclasses.replace(recipe, cuisine=cuisines[index])
                for recipe, index in zip(corpus.recipes, rng.permutation(len(cuisines)))
            ]
        )
        v3 = train_logreg(corrupted, root / "v3", seed=7)

        gateway = ModelGateway()
        gateway.deploy("cuisine", "v1", v1)
        gateway.deploy("cuisine", "v2", v2, activate=False)
        gateway.deploy("cuisine", "v3", v3, activate=False)
        server = ModelServer(gateway, admin_token=ADMIN_TOKEN)
        handle = server.start_in_thread()
        print(f"\n[3] Serving cuisine@v1 on http://127.0.0.1:{handle.port} (v2, v3 dark)")

        print("    shadow-mirroring live traffic onto v2...")
        gateway.set_policy("cuisine", Shadow(candidate="v2"))
        for recipe in splits.test.recipes[:120]:
            status, _ = call(
                handle.port, "POST", "/routes/cuisine/predict",
                {"sequence": list(recipe.sequence)},
            )
            assert status == 200, status
        gateway.flush_shadows()
        shadow = gateway.registry.metrics("cuisine").snapshot()["shadow"]
        pair = shadow["pairs"]["v1->v2"]
        print(
            f"    shadow pair v1->v2: {pair['requests']} requests, "
            f"agreement rate {pair['agreement_rate']:.2f}"
        )

        print("\n[4] Evaluating v2 through the admin plane (apply=true)...")
        status, payload = call(
            handle.port, "POST", "/admin/routes/cuisine/evaluate",
            {"candidate": "v2", "golden": str(golden_path), "seed": 7, "apply": True},
            admin=True,
        )
        assert status == 200, payload
        verdict = payload["verdict"]
        print(f"    decision: {verdict['decision']}  (code {verdict['code']:+.0f})")
        for reason in verdict["reasons"]:
            print(f"      - {reason}")
        bootstrap = verdict["statistics"]["bootstrap"]
        print(
            f"    accuracy delta {bootstrap['delta']:+.4f} "
            f"CI [{bootstrap['lower']:+.4f}, {bootstrap['upper']:+.4f}] "
            f"(non-inferiority margin {bootstrap['margin']:+.4f})"
        )
        print(f"    applied: {payload['applied']}  active={payload['active']}")
        assert verdict["decision"] == "promote", verdict
        assert payload["active"] == "v2", payload

        print("\n[5] A bad deploy slips through: swapping degraded v3 active...")
        gateway.clear_policy("cuisine")
        status, _ = call(
            handle.port, "POST", "/admin/routes/cuisine/swap",
            {"version": "v3"}, admin=True,
        )
        assert status == 200
        print("    evaluating v3 against baseline v2 (apply=true)...")
        status, payload = call(
            handle.port, "POST", "/admin/routes/cuisine/evaluate",
            {
                "candidate": "v3",
                "baseline": "v2",
                "golden": str(golden_path),
                "seed": 7,
                "apply": True,
            },
            admin=True,
        )
        assert status == 200, payload
        verdict = payload["verdict"]
        print(f"    decision: {verdict['decision']}  (code {verdict['code']:+.0f})")
        for reason in verdict["reasons"]:
            print(f"      - {reason}")
        print(f"    applied: {payload['applied']}  active={payload['active']}")
        assert verdict["decision"] == "rollback", verdict
        assert payload["active"] == "v2", payload

        print("\n[6] The stored verdict is readable everywhere:")
        status, stored = call(
            handle.port, "GET", "/admin/routes/cuisine/evaluate", admin=True
        )
        print(f"    GET .../evaluate  -> {status} decision={stored['verdict']['decision']}")
        _, health = call(handle.port, "GET", "/healthz")
        summary = health["routes"]["cuisine"]["eval"]
        print(f"    GET /healthz      -> routes.cuisine.eval = {summary}")
        _, metrics_text = call(handle.port, "GET", "/metrics")
        line = next(
            line for line in metrics_text.splitlines()
            if line.startswith("repro_routes_cuisine_eval_code")
        )
        print(f"    GET /metrics      -> {line}")

        print("\n[7] Draining gracefully...")
        handle.stop()
        print("    drained.  The gate promoted the equal-quality candidate and")
        print("    rolled back the degraded one — no human judgement involved.")


if __name__ == "__main__":
    main()
