"""Tests for JSONL/CSV persistence."""

import json

import pytest

from repro.data.storage import (
    load_recipes_csv,
    load_recipes_jsonl,
    save_recipes_csv,
    save_recipes_jsonl,
)


class TestJsonl:
    def test_roundtrip_preserves_everything(self, handmade_corpus, tmp_path):
        path = tmp_path / "recipes.jsonl"
        written = save_recipes_jsonl(handmade_corpus, path)
        assert written == len(handmade_corpus)
        loaded = load_recipes_jsonl(path)
        assert len(loaded) == len(handmade_corpus)
        for original, restored in zip(handmade_corpus, loaded):
            assert restored == original

    def test_creates_parent_directories(self, handmade_corpus, tmp_path):
        path = tmp_path / "nested" / "dir" / "recipes.jsonl"
        save_recipes_jsonl(handmade_corpus, path)
        assert path.exists()

    def test_blank_lines_ignored(self, handmade_corpus, tmp_path):
        path = tmp_path / "recipes.jsonl"
        save_recipes_jsonl(handmade_corpus, path)
        content = path.read_text() + "\n\n"
        path.write_text(content)
        loaded = load_recipes_jsonl(path)
        assert len(loaded) == len(handmade_corpus)

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"recipe_id": 1, "cuisine": "Italian"\nnot json\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            load_recipes_jsonl(path)

    def test_generated_corpus_roundtrip(self, tiny_corpus, tmp_path):
        path = tmp_path / "tiny.jsonl"
        save_recipes_jsonl(tiny_corpus, path)
        loaded = load_recipes_jsonl(path)
        assert loaded.cuisine_counts() == tiny_corpus.cuisine_counts()


class TestCsv:
    def test_roundtrip_sequences(self, handmade_corpus, tmp_path):
        path = tmp_path / "recipes.csv"
        written = save_recipes_csv(handmade_corpus, path)
        assert written == len(handmade_corpus)
        loaded = load_recipes_csv(path)
        assert [r.sequence for r in loaded] == [r.sequence for r in handmade_corpus]
        assert loaded.cuisines == handmade_corpus.cuisines

    def test_csv_header_matches_table_i(self, handmade_corpus, tmp_path):
        path = tmp_path / "recipes.csv"
        save_recipes_csv(handmade_corpus, path)
        header = path.read_text().splitlines()[0]
        assert header == "Recipe ID,Continent,Cuisine,Recipe"

    def test_csv_sequences_are_json_lists(self, handmade_corpus, tmp_path):
        path = tmp_path / "recipes.csv"
        save_recipes_csv(handmade_corpus, path)
        line = path.read_text().splitlines()[1]
        payload = line.split(",", 3)[3]
        assert json.loads(payload.strip('"').replace('""', '"'))

    def test_csv_kinds_not_preserved(self, handmade_corpus, tmp_path):
        path = tmp_path / "recipes.csv"
        save_recipes_csv(handmade_corpus, path)
        loaded = load_recipes_csv(path)
        assert all(recipe.kinds == () for recipe in loaded)
