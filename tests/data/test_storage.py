"""Tests for JSONL/CSV persistence."""

import json

import pytest

from repro.data.storage import (
    iter_shards_jsonl,
    load_recipes_csv,
    load_recipes_jsonl,
    load_shards_jsonl,
    save_recipes_csv,
    save_recipes_jsonl,
    save_shards_jsonl,
)


class TestJsonl:
    def test_roundtrip_preserves_everything(self, handmade_corpus, tmp_path):
        path = tmp_path / "recipes.jsonl"
        written = save_recipes_jsonl(handmade_corpus, path)
        assert written == len(handmade_corpus)
        loaded = load_recipes_jsonl(path)
        assert len(loaded) == len(handmade_corpus)
        for original, restored in zip(handmade_corpus, loaded):
            assert restored == original

    def test_creates_parent_directories(self, handmade_corpus, tmp_path):
        path = tmp_path / "nested" / "dir" / "recipes.jsonl"
        save_recipes_jsonl(handmade_corpus, path)
        assert path.exists()

    def test_blank_lines_ignored(self, handmade_corpus, tmp_path):
        path = tmp_path / "recipes.jsonl"
        save_recipes_jsonl(handmade_corpus, path)
        content = path.read_text() + "\n\n"
        path.write_text(content)
        loaded = load_recipes_jsonl(path)
        assert len(loaded) == len(handmade_corpus)

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"recipe_id": 1, "cuisine": "Italian"\nnot json\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            load_recipes_jsonl(path)

    def test_generated_corpus_roundtrip(self, tiny_corpus, tmp_path):
        path = tmp_path / "tiny.jsonl"
        save_recipes_jsonl(tiny_corpus, path)
        loaded = load_recipes_jsonl(path)
        assert loaded.cuisine_counts() == tiny_corpus.cuisine_counts()


class TestCsv:
    def test_roundtrip_sequences(self, handmade_corpus, tmp_path):
        path = tmp_path / "recipes.csv"
        written = save_recipes_csv(handmade_corpus, path)
        assert written == len(handmade_corpus)
        loaded = load_recipes_csv(path)
        assert [r.sequence for r in loaded] == [r.sequence for r in handmade_corpus]
        assert loaded.cuisines == handmade_corpus.cuisines

    def test_csv_header_matches_table_i(self, handmade_corpus, tmp_path):
        path = tmp_path / "recipes.csv"
        save_recipes_csv(handmade_corpus, path)
        header = path.read_text().splitlines()[0]
        assert header == "Recipe ID,Continent,Cuisine,Recipe"

    def test_csv_sequences_are_json_lists(self, handmade_corpus, tmp_path):
        path = tmp_path / "recipes.csv"
        save_recipes_csv(handmade_corpus, path)
        line = path.read_text().splitlines()[1]
        payload = line.split(",", 3)[3]
        assert json.loads(payload.strip('"').replace('""', '"'))

    def test_csv_kinds_not_preserved(self, handmade_corpus, tmp_path):
        path = tmp_path / "recipes.csv"
        save_recipes_csv(handmade_corpus, path)
        loaded = load_recipes_csv(path)
        assert all(recipe.kinds == () for recipe in loaded)


class TestShardedJsonl:
    def test_roundtrip_preserves_everything(self, tiny_corpus, tmp_path):
        paths = save_shards_jsonl(tiny_corpus, tmp_path / "corpus", shard_size=16)
        assert len(paths) == len(tiny_corpus.shards(16))
        loaded = load_shards_jsonl(tmp_path / "corpus")
        assert loaded.recipes == tiny_corpus.recipes

    def test_manifest_records_shard_fingerprints(self, tiny_corpus, tmp_path):
        save_shards_jsonl(tiny_corpus, tmp_path / "corpus", shard_size=16)
        manifest = json.loads((tmp_path / "corpus" / "shards.json").read_text())
        assert manifest["shard_size"] == 16
        assert [entry["fingerprint"] for entry in manifest["shards"]] == [
            shard.fingerprint() for shard in tiny_corpus.shards(16)
        ]

    def test_iter_streams_shards_in_corpus_order(self, tiny_corpus, tmp_path):
        save_shards_jsonl(tiny_corpus, tmp_path / "corpus", shard_size=16)
        shards = list(iter_shards_jsonl(tmp_path / "corpus"))
        assert [s.index for s in shards] == list(range(len(shards)))
        assert [s.start for s in shards] == [s.index * 16 for s in shards]
        flattened = [r for shard in shards for r in shard]
        assert flattened == list(tiny_corpus)

    def test_streamed_shards_feed_the_corpus_engine(self, tiny_corpus, tmp_path):
        from repro.pipeline.engine import CorpusEngine
        from repro.pipeline.store import FeatureStore
        from repro.text.pipeline import PipelineConfig

        save_shards_jsonl(tiny_corpus, tmp_path / "corpus", shard_size=16)
        config = PipelineConfig(split_items=True)
        engine = CorpusEngine(FeatureStore(), shard_size=16)
        streamed = []
        for shard in iter_shards_jsonl(tmp_path / "corpus"):
            streamed.extend(engine.shard_tokens(shard, config))
        assert streamed == FeatureStore().tokens(tiny_corpus, config)

    def test_corrupted_shard_is_detected(self, tiny_corpus, tmp_path):
        paths = save_shards_jsonl(tiny_corpus, tmp_path / "corpus", shard_size=16)
        lines = paths[0].read_text().splitlines()
        payload = json.loads(lines[0])
        payload["cuisine"] = "Italian" if payload["cuisine"] != "Italian" else "Mexican"
        payload["continent"] = "European" if payload["cuisine"] == "Italian" else "Latin American"
        lines[0] = json.dumps(payload)
        paths[0].write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="fingerprint"):
            list(iter_shards_jsonl(tmp_path / "corpus"))

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(iter_shards_jsonl(tmp_path / "nowhere"))
