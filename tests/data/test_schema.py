"""Tests for the Recipe schema."""

import pytest

from repro.data.schema import Recipe, TokenKind, validate_recipes


def _recipe(recipe_id=1, sequence=("onion", "stir", "pan"), kinds=None):
    if kinds is None:
        kinds = (TokenKind.INGREDIENT, TokenKind.PROCESS, TokenKind.UTENSIL)
    return Recipe(
        recipe_id=recipe_id,
        cuisine="Italian",
        continent="European",
        sequence=sequence,
        kinds=kinds,
    )


class TestRecipe:
    def test_length_and_iteration(self):
        recipe = _recipe()
        assert len(recipe) == 3
        assert list(recipe) == ["onion", "stir", "pan"]

    def test_kind_accessors(self):
        recipe = _recipe()
        assert recipe.ingredients == ("onion",)
        assert recipe.processes == ("stir",)
        assert recipe.utensils == ("pan",)

    def test_kind_accessors_empty_without_kinds(self):
        recipe = _recipe(kinds=())
        assert recipe.ingredients == ()
        assert recipe.processes == ()
        assert recipe.utensils == ()

    def test_mismatched_kinds_length_raises(self):
        with pytest.raises(ValueError):
            _recipe(kinds=(TokenKind.INGREDIENT,))

    def test_as_text_joins_items(self):
        recipe = _recipe(sequence=("red lentil", "stir", "pan"))
        assert recipe.as_text() == "red lentil stir pan"

    def test_roundtrip_dict(self):
        recipe = _recipe()
        restored = Recipe.from_dict(recipe.to_dict())
        assert restored == recipe

    def test_roundtrip_dict_without_kinds(self):
        recipe = _recipe(kinds=())
        restored = Recipe.from_dict(recipe.to_dict())
        assert restored.sequence == recipe.sequence
        assert restored.kinds == ()

    def test_frozen(self):
        recipe = _recipe()
        with pytest.raises(AttributeError):
            recipe.cuisine = "French"

    def test_token_kind_values(self):
        assert TokenKind("ingredient") is TokenKind.INGREDIENT
        assert TokenKind("process") is TokenKind.PROCESS
        assert TokenKind("utensil") is TokenKind.UTENSIL


class TestValidateRecipes:
    def test_accepts_valid_collection(self):
        validate_recipes([_recipe(1), _recipe(2)])

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_recipes([_recipe(1), _recipe(1)])

    def test_rejects_empty_sequence(self):
        with pytest.raises(ValueError, match="empty"):
            validate_recipes([_recipe(1, sequence=(), kinds=())])
