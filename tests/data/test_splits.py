"""Tests for the 7:1:2 train/validation/test splitting."""

import numpy as np
import pytest

from repro.data.splits import PAPER_SPLIT_RATIOS, DatasetSplits, train_val_test_split


class TestPaperRatios:
    def test_ratios_are_7_1_2(self):
        assert PAPER_SPLIT_RATIOS == (0.7, 0.1, 0.2)

    def test_paper_split_sizes_reproduced_at_full_scale(self):
        # 118,071 * (0.7, 0.1, 0.2) ~= the sizes quoted in Section VI.
        total = 118_071
        assert round(total * 0.7) == pytest.approx(82_650, abs=1000)
        assert round(total * 0.1) == pytest.approx(12_021, abs=1000)
        assert round(total * 0.2) == pytest.approx(23_380, abs=1000)


class TestSplitProperties:
    def test_sizes_cover_corpus(self, small_corpus):
        splits = train_val_test_split(small_corpus, seed=0)
        assert sum(splits.sizes) == len(small_corpus)

    def test_splits_are_disjoint(self, small_corpus):
        splits = train_val_test_split(small_corpus, seed=0)
        train_ids = {r.recipe_id for r in splits.train}
        val_ids = {r.recipe_id for r in splits.validation}
        test_ids = {r.recipe_id for r in splits.test}
        assert not (train_ids & val_ids)
        assert not (train_ids & test_ids)
        assert not (val_ids & test_ids)

    def test_ratios_approximately_7_1_2(self, small_corpus):
        splits = train_val_test_split(small_corpus, seed=0)
        n = len(small_corpus)
        assert splits.sizes[0] / n == pytest.approx(0.7, abs=0.05)
        assert splits.sizes[1] / n == pytest.approx(0.1, abs=0.05)
        assert splits.sizes[2] / n == pytest.approx(0.2, abs=0.05)

    def test_stratification_keeps_every_cuisine_in_every_split(self, small_corpus):
        splits = train_val_test_split(small_corpus, seed=0)
        cuisines = set(small_corpus.cuisines)
        assert set(splits.train.cuisines) == cuisines
        assert set(splits.validation.cuisines) == cuisines
        assert set(splits.test.cuisines) == cuisines

    def test_stratification_preserves_proportions(self, small_corpus):
        splits = train_val_test_split(small_corpus, seed=0)
        full = small_corpus.cuisine_counts()
        train = splits.train.cuisine_counts()
        for cuisine, total in full.items():
            if total >= 20:
                assert train[cuisine] / total == pytest.approx(0.7, abs=0.15)

    def test_deterministic_given_seed(self, small_corpus):
        a = train_val_test_split(small_corpus, seed=3)
        b = train_val_test_split(small_corpus, seed=3)
        assert [r.recipe_id for r in a.train] == [r.recipe_id for r in b.train]

    def test_different_seed_changes_assignment(self, small_corpus):
        a = train_val_test_split(small_corpus, seed=3)
        b = train_val_test_split(small_corpus, seed=4)
        assert [r.recipe_id for r in a.train] != [r.recipe_id for r in b.train]

    def test_unstratified_split_also_covers_corpus(self, small_corpus):
        splits = train_val_test_split(small_corpus, stratify=False, seed=0)
        assert sum(splits.sizes) == len(small_corpus)

    def test_custom_ratios_normalised(self, small_corpus):
        splits = train_val_test_split(small_corpus, ratios=(7, 1, 2), seed=0)
        assert sum(splits.sizes) == len(small_corpus)

    def test_summary(self, small_splits):
        summary = small_splits.summary()
        assert set(summary) == {"train", "validation", "test"}
        assert summary["train"] == len(small_splits.train)


class TestSplitValidation:
    def test_wrong_number_of_ratios(self, small_corpus):
        with pytest.raises(ValueError):
            train_val_test_split(small_corpus, ratios=(0.5, 0.5))

    def test_non_positive_ratios(self, small_corpus):
        with pytest.raises(ValueError):
            train_val_test_split(small_corpus, ratios=(0.7, 0.0, 0.3))

    def test_too_small_corpus(self, handmade_corpus):
        tiny = handmade_corpus.subset([0, 1])
        with pytest.raises(ValueError):
            train_val_test_split(tiny)

    def test_overlapping_splits_rejected(self, handmade_corpus):
        with pytest.raises(ValueError):
            DatasetSplits(
                train=handmade_corpus.subset([0, 1]),
                validation=handmade_corpus.subset([1]),
                test=handmade_corpus.subset([2]),
            )
