"""Tests for corpus statistics (paper Table III / sparsity)."""

import pytest

from repro.data.statistics import (
    PAPER_SPARSITY_RATIO,
    PAPER_TABLE_III_HIGH,
    PAPER_TABLE_III_LOW,
    compute_corpus_statistics,
    cumulative_frequency_table,
    feature_document_counts,
    feature_occurrence_counts,
    sparsity_ratio,
)


class TestPaperConstants:
    def test_table_iii_paper_values(self):
        assert PAPER_TABLE_III_HIGH[1000] == 304
        assert PAPER_TABLE_III_LOW[2] == 11738
        assert PAPER_TABLE_III_LOW[20] == 17519
        assert PAPER_SPARSITY_RATIO == pytest.approx(0.995)


class TestCounts:
    def test_occurrence_counts(self, handmade_corpus):
        counts = feature_occurrence_counts(handmade_corpus)
        assert counts["add"] == 3
        assert counts["pasta"] == 2

    def test_document_counts_distinct_per_recipe(self, handmade_corpus):
        counts = feature_document_counts(handmade_corpus)
        # "add" occurs in three recipes, once per recipe.
        assert counts["add"] == 3
        assert counts["serve"] == 3


class TestSparsity:
    def test_sparsity_in_unit_interval(self, handmade_corpus):
        value = sparsity_ratio(handmade_corpus)
        assert 0.0 <= value < 1.0

    def test_sparsity_grows_with_vocabulary(self, handmade_corpus, small_corpus):
        # A larger, more diverse corpus has a sparser recipe x feature matrix.
        assert sparsity_ratio(small_corpus) > sparsity_ratio(handmade_corpus)

    def test_generated_corpus_is_highly_sparse(self, small_corpus):
        # The paper reports 99.5 % on the full corpus; the small synthetic
        # corpus has a smaller vocabulary so the threshold is looser.
        assert sparsity_ratio(small_corpus) > 0.9


class TestCumulativeFrequencyTable:
    def test_monotonicity(self, small_corpus):
        high, low = cumulative_frequency_table(small_corpus)
        high_values = [high[t] for t in sorted(high)]
        low_values = [low[t] for t in sorted(low)]
        assert high_values == sorted(high_values, reverse=True)
        assert low_values == sorted(low_values)

    def test_thresholds_match_paper_layout(self, small_corpus):
        high, low = cumulative_frequency_table(small_corpus)
        assert set(high) == set(PAPER_TABLE_III_HIGH)
        assert set(low) == set(PAPER_TABLE_III_LOW)

    def test_counts_bounded_by_vocabulary(self, small_corpus):
        stats = compute_corpus_statistics(small_corpus)
        for value in stats.high_frequency_table.values():
            assert 0 <= value <= stats.n_unique_features
        for value in stats.low_frequency_table.values():
            assert 0 <= value <= stats.n_unique_features


class TestCorpusStatistics:
    def test_summary_fields(self, small_corpus):
        stats = compute_corpus_statistics(small_corpus)
        assert stats.n_recipes == len(small_corpus)
        assert stats.n_cuisines == 26
        assert stats.n_unique_processes <= 256
        assert stats.n_unique_utensils <= 69
        assert stats.mean_sequence_length > 0
        assert stats.most_frequent_count >= 1

    def test_add_is_most_frequent_feature(self, small_corpus):
        # Mirrors the paper: "add" appeared 188,004 times, the most of any item.
        stats = compute_corpus_statistics(small_corpus)
        assert stats.most_frequent_feature == "add"

    def test_hapax_tail_exists(self, small_corpus):
        stats = compute_corpus_statistics(small_corpus)
        assert stats.hapax_count > 0
        assert stats.hapax_count < stats.n_unique_features

    def test_handmade_corpus_exact_values(self, handmade_corpus):
        stats = compute_corpus_statistics(handmade_corpus)
        assert stats.n_recipes == 5
        assert stats.n_cuisines == 3
        assert stats.n_unique_ingredients == 13
        assert stats.n_unique_utensils == 4
        assert stats.cuisine_counts["Italian"] == 2
