"""Tests for the RecipeDB corpus container."""

import pytest

from repro.data.cuisines import CUISINES
from repro.data.recipedb import RecipeDB
from repro.data.schema import Recipe, TokenKind


class TestContainerBasics:
    def test_len_and_getitem(self, handmade_corpus):
        assert len(handmade_corpus) == 5
        assert handmade_corpus[0].recipe_id == 1

    def test_iteration_order_preserved(self, handmade_corpus):
        assert [r.recipe_id for r in handmade_corpus] == [1, 2, 3, 4, 5]

    def test_duplicate_ids_rejected(self, handmade_corpus):
        recipes = list(handmade_corpus.recipes) + [handmade_corpus[0]]
        with pytest.raises(ValueError):
            RecipeDB(recipes=recipes)


class TestColumnViews:
    def test_cuisines_and_continents(self, handmade_corpus):
        assert handmade_corpus.cuisines == ["Italian", "Italian", "Mexican", "Mexican", "Japanese"]
        assert handmade_corpus.continents[0] == "European"

    def test_texts(self, handmade_corpus):
        assert handmade_corpus.texts()[0].startswith("pasta tomato basil")

    def test_labels_use_canonical_space(self, handmade_corpus):
        labels = handmade_corpus.labels()
        assert labels[0] == CUISINES.index("Italian")
        assert labels[4] == CUISINES.index("Japanese")

    def test_labels_custom_space(self, handmade_corpus):
        labels = handmade_corpus.labels(("Italian", "Japanese", "Mexican"))
        assert labels == [0, 0, 2, 2, 1]

    def test_labels_unknown_cuisine_raises(self, handmade_corpus):
        with pytest.raises(KeyError):
            handmade_corpus.labels(("Italian",))


class TestAggregates:
    def test_cuisine_counts(self, handmade_corpus):
        assert handmade_corpus.cuisine_counts() == {"Italian": 2, "Japanese": 1, "Mexican": 2}

    def test_present_cuisines_in_canonical_order(self, handmade_corpus):
        assert handmade_corpus.present_cuisines() == ("Italian", "Japanese", "Mexican")

    def test_token_counts_all(self, handmade_corpus):
        counts = handmade_corpus.token_counts()
        assert counts["pasta"] == 2
        assert counts["tortilla"] == 2
        assert counts["add"] == 3

    def test_token_counts_by_kind(self, handmade_corpus):
        assert handmade_corpus.token_counts(TokenKind.UTENSIL)["pan"] == 2
        assert "pasta" not in handmade_corpus.token_counts(TokenKind.PROCESS)

    def test_vocabulary_sorted(self, handmade_corpus):
        vocab = handmade_corpus.vocabulary(TokenKind.UTENSIL)
        assert vocab == tuple(sorted(vocab))
        assert "pan" in vocab and "bowl" in vocab


class TestTransformations:
    def test_filter(self, handmade_corpus):
        italian = handmade_corpus.filter(lambda r: r.cuisine == "Italian")
        assert len(italian) == 2
        assert set(italian.cuisines) == {"Italian"}

    def test_restrict_to_cuisines(self, handmade_corpus):
        subset = handmade_corpus.restrict_to_cuisines(["Mexican", "Japanese"])
        assert set(subset.cuisines) == {"Mexican", "Japanese"}

    def test_drop_rare_cuisines(self, handmade_corpus):
        kept = handmade_corpus.drop_rare_cuisines(min_recipes=2)
        assert set(kept.cuisines) == {"Italian", "Mexican"}

    def test_subset_by_indices(self, handmade_corpus):
        subset = handmade_corpus.subset([0, 4])
        assert [r.recipe_id for r in subset] == [1, 5]

    def test_sample_size_and_determinism(self, small_corpus):
        sampled_a = small_corpus.sample(50, seed=1)
        sampled_b = small_corpus.sample(50, seed=1)
        assert len(sampled_a) == 50
        assert [r.recipe_id for r in sampled_a] == [r.recipe_id for r in sampled_b]

    def test_sample_too_large_raises(self, handmade_corpus):
        with pytest.raises(ValueError):
            handmade_corpus.sample(100)

    def test_filter_preserves_generator_config(self, tiny_corpus):
        filtered = tiny_corpus.filter(lambda r: True)
        assert filtered.generator_config is tiny_corpus.generator_config


class TestColumnViewCaching:
    def test_column_views_are_cached_objects(self, handmade_corpus):
        assert handmade_corpus.cuisines is handmade_corpus.cuisines
        assert handmade_corpus.continents is handmade_corpus.continents
        assert handmade_corpus.sequences is handmade_corpus.sequences
        assert handmade_corpus.texts() is handmade_corpus.texts()

    def test_cached_views_have_correct_content(self, handmade_corpus):
        assert handmade_corpus.cuisines == [r.cuisine for r in handmade_corpus]
        assert handmade_corpus.texts() == [r.as_text() for r in handmade_corpus]

    def test_extend_returns_new_corpus_with_untouched_caches(self, handmade_corpus):
        before = handmade_corpus.cuisines
        extra = Recipe(
            recipe_id=99,
            cuisine="Thai",
            continent="Asian",
            sequence=("rice", "steam"),
        )
        grown = handmade_corpus.extend([extra])
        assert len(grown) == len(handmade_corpus) + 1
        assert handmade_corpus.cuisines is before  # original cache intact
        assert grown.cuisines[-1] == "Thai"
        assert grown.fingerprint() != handmade_corpus.fingerprint()

    def test_extend_rejects_duplicate_ids(self, handmade_corpus):
        with pytest.raises(ValueError):
            handmade_corpus.extend([handmade_corpus[0]])


class TestShards:
    def test_shards_partition_the_corpus(self, handmade_corpus):
        shards = handmade_corpus.shards(2)
        assert [len(s) for s in shards] == [2, 2, 1]
        assert [s.start for s in shards] == [0, 2, 4]
        assert [s.index for s in shards] == [0, 1, 2]
        flattened = [r for shard in shards for r in shard]
        assert flattened == list(handmade_corpus)

    def test_invalid_shard_size_rejected(self, handmade_corpus):
        with pytest.raises(ValueError):
            handmade_corpus.shards(0)

    def test_shard_fingerprints_are_content_stable(self, handmade_corpus):
        first = handmade_corpus.shards(2)
        second = handmade_corpus.shards(2)
        assert [s.fingerprint() for s in first] == [s.fingerprint() for s in second]

    def test_prefix_shards_survive_extend(self, handmade_corpus):
        extra = Recipe(
            recipe_id=100,
            cuisine="Thai",
            continent="Asian",
            sequence=("noodles", "wok"),
        )
        grown = handmade_corpus.extend([extra])
        before = handmade_corpus.shards(2)
        after = grown.shards(2)
        # Full prefix shards keep their fingerprints; the partial tail changes.
        assert [s.fingerprint() for s in after[:2]] == [s.fingerprint() for s in before[:2]]
        assert after[2].fingerprint() != before[2].fingerprint()

    def test_shard_fingerprint_ignores_provenance(self, tiny_corpus):
        content_twin = RecipeDB(recipes=list(tiny_corpus.recipes))
        assert content_twin.generator_config is None
        assert [s.fingerprint() for s in content_twin.shards(16)] == [
            s.fingerprint() for s in tiny_corpus.shards(16)
        ]
