"""Tests for the cuisine taxonomy constants (paper Table II)."""

import pytest

from repro.data.cuisines import (
    CONTINENT_OF_CUISINE,
    CUISINE_RECIPE_COUNTS,
    CUISINES,
    PAPER_TOTAL_RECIPES,
    continent_of,
    cuisine_index,
    scaled_cuisine_counts,
)


class TestTableIIConstants:
    def test_has_26_cuisines(self):
        assert len(CUISINE_RECIPE_COUNTS) == 26
        assert len(CUISINES) == 26

    def test_counts_sum_close_to_paper_total(self):
        # The paper states 118,071 total recipes while its own Table II sums
        # to 118,171 — an internal inconsistency of 100 recipes (<0.1 %).  We
        # keep the per-cuisine counts verbatim and assert the near-agreement.
        assert PAPER_TOTAL_RECIPES == 118_071
        table_sum = sum(CUISINE_RECIPE_COUNTS.values())
        assert abs(table_sum - PAPER_TOTAL_RECIPES) <= 100

    def test_known_counts_match_paper(self):
        assert CUISINE_RECIPE_COUNTS["Italian"] == 16582
        assert CUISINE_RECIPE_COUNTS["Mexican"] == 14463
        assert CUISINE_RECIPE_COUNTS["Central American"] == 460
        assert CUISINE_RECIPE_COUNTS["Korean"] == 668

    def test_cuisines_sorted_and_unique(self):
        assert list(CUISINES) == sorted(set(CUISINES))

    def test_every_cuisine_has_a_continent(self):
        assert set(CONTINENT_OF_CUISINE) == set(CUISINE_RECIPE_COUNTS)

    def test_continent_labels_match_table_i_examples(self):
        # Table I of the paper shows these continent assignments.
        assert continent_of("Middle Eastern") == "African"
        assert continent_of("Southeast Asian") == "Asian"
        assert continent_of("Indian Subcontinent") == "Asian"
        assert continent_of("Mexican") == "Latin American"
        assert continent_of("Deutschland") == "European"
        assert continent_of("Canadian") == "North American"


class TestHelpers:
    def test_continent_of_unknown_raises(self):
        with pytest.raises(KeyError):
            continent_of("Atlantis")

    def test_cuisine_index_roundtrip(self):
        for i, cuisine in enumerate(CUISINES):
            assert cuisine_index(cuisine) == i

    def test_cuisine_index_unknown_raises(self):
        with pytest.raises(KeyError):
            cuisine_index("Atlantis")

    def test_scaled_counts_full_scale_is_identity(self):
        assert scaled_cuisine_counts(1.0) == CUISINE_RECIPE_COUNTS

    def test_scaled_counts_keeps_every_cuisine(self):
        scaled = scaled_cuisine_counts(0.001, min_per_cuisine=4)
        assert set(scaled) == set(CUISINE_RECIPE_COUNTS)
        assert all(count >= 4 for count in scaled.values())

    def test_scaled_counts_preserves_proportions(self):
        scaled = scaled_cuisine_counts(0.1)
        assert scaled["Italian"] == pytest.approx(1658, abs=1)
        assert scaled["Italian"] > scaled["Mexican"] > scaled["Korean"]

    def test_scaled_counts_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            scaled_cuisine_counts(0.0)
        with pytest.raises(ValueError):
            scaled_cuisine_counts(-1.0)
        with pytest.raises(ValueError):
            scaled_cuisine_counts(0.5, min_per_cuisine=0)
