"""Tests for the synthetic RecipeDB generator."""

import numpy as np
import pytest

from repro.data.cuisines import CUISINES, scaled_cuisine_counts
from repro.data.generator import GeneratorConfig, RecipeDBGenerator, generate_recipedb
from repro.data.schema import TokenKind


class TestGeneratorConfig:
    def test_defaults_are_valid(self):
        config = GeneratorConfig()
        assert 0 < config.scale <= 1
        assert config.n_processes == 256
        assert config.n_utensils == 69

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scale": 0.0},
            {"scale": -1.0},
            {"hapax_probability": 1.5},
            {"min_ingredients": 0},
            {"max_ingredients": 2, "min_ingredients": 5},
            {"min_processes": 0},
            {"max_utensils": 0, "min_utensils": 1},
            {"n_motifs": 0},
        ],
    )
    def test_invalid_configs_raise(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorConfig(**kwargs)

    def test_resolved_vocab_scales_with_corpus(self):
        small = GeneratorConfig(scale=0.01).resolved_n_ingredients
        large = GeneratorConfig(scale=0.25).resolved_n_ingredients
        assert small < large <= 20280

    def test_explicit_vocab_size_wins(self):
        assert GeneratorConfig(n_ingredients=500).resolved_n_ingredients == 500


class TestVocabularies:
    @pytest.fixture(scope="class")
    def generator(self):
        return RecipeDBGenerator(GeneratorConfig(scale=0.005, seed=2))

    def test_process_vocabulary_size_matches_paper(self, generator):
        assert len(generator.process_vocabulary) == 256

    def test_utensil_vocabulary_size_matches_paper(self, generator):
        assert len(generator.utensil_vocabulary) == 69

    def test_vocabularies_have_no_duplicates(self, generator):
        assert len(set(generator.ingredient_vocabulary)) == len(generator.ingredient_vocabulary)
        assert len(set(generator.process_vocabulary)) == len(generator.process_vocabulary)
        assert len(set(generator.utensil_vocabulary)) == len(generator.utensil_vocabulary)

    def test_add_is_a_process(self, generator):
        assert "add" in generator.process_vocabulary


class TestGeneratedCorpus:
    def test_cuisine_counts_match_scaled_table_ii(self, tiny_corpus):
        expected = scaled_cuisine_counts(tiny_corpus.generator_config.scale)
        assert tiny_corpus.cuisine_counts() == expected

    def test_all_26_cuisines_present(self, tiny_corpus):
        assert tiny_corpus.present_cuisines() == CUISINES

    def test_recipe_ids_unique(self, tiny_corpus):
        ids = [recipe.recipe_id for recipe in tiny_corpus]
        assert len(ids) == len(set(ids))

    def test_sequences_follow_table_i_structure(self, tiny_corpus):
        # Ingredients first, then processes, then utensils — as in Table I.
        for recipe in list(tiny_corpus)[:50]:
            kinds = list(recipe.kinds)
            assert kinds == sorted(
                kinds, key=[TokenKind.INGREDIENT, TokenKind.PROCESS, TokenKind.UTENSIL].index
            )
            assert TokenKind.INGREDIENT in kinds
            assert TokenKind.PROCESS in kinds

    def test_sequence_lengths_within_config_bounds(self, tiny_corpus):
        config = tiny_corpus.generator_config
        max_possible = (
            config.max_ingredients
            + 1  # hapax
            + config.max_processes
            + 2 * config.motifs_per_recipe
            + config.max_utensils
        )
        for recipe in tiny_corpus:
            assert config.min_ingredients <= len(recipe) <= max_possible

    def test_deterministic_given_seed(self):
        first = generate_recipedb(scale=0.004, seed=42)
        second = generate_recipedb(scale=0.004, seed=42)
        assert [r.sequence for r in first] == [r.sequence for r in second]
        assert first.cuisines == second.cuisines

    def test_different_seeds_differ(self):
        first = generate_recipedb(scale=0.004, seed=1)
        second = generate_recipedb(scale=0.004, seed=2)
        assert [r.sequence for r in first] != [r.sequence for r in second]

    def test_scale_controls_corpus_size(self):
        small = generate_recipedb(scale=0.004, seed=1)
        larger = generate_recipedb(scale=0.008, seed=1)
        assert len(larger) > len(small)

    def test_hapax_ingredients_are_unique(self):
        corpus = generate_recipedb(scale=0.01, seed=9, hapax_probability=0.5)
        doc_freq = {}
        for recipe in corpus:
            for item, kind in zip(recipe.sequence, recipe.kinds):
                if kind is TokenKind.INGREDIENT and item[-1].isdigit():
                    doc_freq[item] = doc_freq.get(item, 0) + 1
        assert doc_freq, "expected some hapax ingredients"
        assert all(count == 1 for count in doc_freq.values())

    def test_zero_hapax_probability_produces_no_hapaxes(self):
        corpus = generate_recipedb(scale=0.004, seed=9, hapax_probability=0.0)
        for recipe in corpus:
            assert not any(item[-1].isdigit() for item in recipe.sequence)


class TestOrderSignal:
    def test_cuisines_disagree_on_motif_order(self):
        """Different cuisines must order at least some motif pairs differently."""
        generator = RecipeDBGenerator(GeneratorConfig(scale=0.004, seed=2))
        profiles = generator._profiles
        orders = {name: tuple(profile.motif_orders) for name, profile in profiles.items()}
        distinct = set(orders.values())
        assert len(distinct) > 5

    def test_motif_token_sets_identical_across_cuisines(self):
        """The motif *tokens* are shared; only their order differs."""
        generator = RecipeDBGenerator(GeneratorConfig(scale=0.004, seed=2))
        token_sets = {
            name: frozenset(frozenset(pair) for pair in profile.motif_orders)
            for name, profile in generator._profiles.items()
        }
        assert len(set(token_sets.values())) == 1
