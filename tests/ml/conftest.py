"""Shared fixtures for the classical-ML tests: small separable datasets."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse


@pytest.fixture(scope="package")
def blobs_dataset():
    """Three well-separated Gaussian blobs (dense features)."""
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [5.0, 5.0], [0.0, 6.0]])
    X = np.vstack([rng.normal(center, 0.6, size=(60, 2)) for center in centers])
    y = np.repeat([0, 1, 2], 60)
    order = rng.permutation(len(y))
    return X[order], y[order]


@pytest.fixture(scope="package")
def text_like_dataset():
    """Sparse, high-dimensional dataset resembling TF-IDF features.

    Each class has 5 'signature' columns that fire with high probability, on
    top of shared noise columns.
    """
    rng = np.random.default_rng(1)
    n_classes, per_class, n_features = 4, 50, 120
    rows = []
    labels = []
    for cls in range(n_classes):
        signature = np.arange(cls * 5, cls * 5 + 5)
        for _ in range(per_class):
            row = np.zeros(n_features)
            fired = signature[rng.random(5) < 0.8]
            row[fired] = rng.random(len(fired)) + 0.5
            noise = rng.choice(np.arange(40, n_features), size=6, replace=False)
            row[noise] = rng.random(6) * 0.3
            rows.append(row)
            labels.append(cls)
    X = np.vstack(rows)
    y = np.asarray(labels)
    order = rng.permutation(len(y))
    return sparse.csr_matrix(X[order]), y[order]


def train_test(X, y, test_fraction=0.25, seed=0):
    """Split helper shared by the model tests."""
    rng = np.random.default_rng(seed)
    n = len(y)
    order = rng.permutation(n)
    n_test = int(n * test_fraction)
    test_idx, train_idx = order[:n_test], order[n_test:]
    if sparse.issparse(X):
        return X[train_idx], y[train_idx], X[test_idx], y[test_idx]
    return X[train_idx], y[train_idx], X[test_idx], y[test_idx]
