"""Tests for cross-validation and grid search."""

import numpy as np
import pytest

from repro.ml.logistic_regression import LogisticRegressionClassifier
from repro.ml.model_selection import (
    cross_val_score,
    grid_search,
    iter_param_grid,
    k_fold_indices,
)


class TestKFold:
    def test_folds_partition_the_data(self):
        pairs = k_fold_indices(20, n_folds=4, shuffle=False)
        assert len(pairs) == 4
        all_test = np.concatenate([test for _, test in pairs])
        assert sorted(all_test.tolist()) == list(range(20))

    def test_train_test_disjoint_per_fold(self):
        for train, test in k_fold_indices(17, n_folds=5, seed=2):
            assert not set(train) & set(test)
            assert len(train) + len(test) == 17

    def test_shuffle_changes_order(self):
        unshuffled = k_fold_indices(12, n_folds=3, shuffle=False)
        shuffled = k_fold_indices(12, n_folds=3, shuffle=True, seed=1)
        assert any(
            not np.array_equal(a[1], b[1]) for a, b in zip(unshuffled, shuffled)
        )

    @pytest.mark.parametrize("n_folds", [1, 0, 25])
    def test_invalid_folds(self, n_folds):
        with pytest.raises(ValueError):
            k_fold_indices(20, n_folds=n_folds)


class TestCrossValScore:
    def test_scores_high_on_separable_data(self, blobs_dataset):
        X, y = blobs_dataset
        scores = cross_val_score(
            lambda: LogisticRegressionClassifier(max_iter=150), X, y, n_folds=3
        )
        assert scores.shape == (3,)
        assert scores.mean() > 0.9

    def test_works_with_sparse_features(self, text_like_dataset):
        X, y = text_like_dataset
        scores = cross_val_score(
            lambda: LogisticRegressionClassifier(max_iter=100, C=10.0), X, y, n_folds=3
        )
        assert scores.mean() > 0.8


class TestGridSearch:
    def test_finds_better_hyperparameter(self, blobs_dataset):
        X, y = blobs_dataset
        best_params, best_score, results = grid_search(
            lambda C: LogisticRegressionClassifier(C=C, max_iter=100),
            {"C": [0.001, 10.0]},
            X,
            y,
            n_folds=3,
        )
        assert best_params["C"] == 10.0
        assert best_score >= max(score for _, score in results) - 1e-9
        assert len(results) == 2

    def test_grid_iteration_covers_product(self):
        combos = list(iter_param_grid({"a": [1, 2], "b": ["x", "y", "z"]}))
        assert len(combos) == 6
        assert {"a": 2, "b": "z"} in combos
