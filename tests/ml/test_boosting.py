"""Tests for AdaBoost (SAMME)."""

import numpy as np
import pytest

from repro.ml.boosting import AdaBoostClassifier
from repro.ml.tree import DecisionTreeClassifier
from tests.ml.conftest import train_test


class TestAdaBoost:
    def test_blobs_accuracy(self, blobs_dataset):
        X, y = blobs_dataset
        Xtr, ytr, Xte, yte = train_test(X, y)
        clf = AdaBoostClassifier(n_estimators=15, random_state=0).fit(Xtr, ytr)
        assert clf.score(Xte, yte) > 0.85

    def test_boosting_beats_single_stump_on_xor_like_data(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(300, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        boosted = AdaBoostClassifier(
            n_estimators=30,
            base_estimator_factory=lambda: DecisionTreeClassifier(max_depth=2),
            random_state=0,
        ).fit(X, y)
        assert boosted.score(X, y) > stump.score(X, y)

    def test_estimator_weights_positive(self, blobs_dataset):
        X, y = blobs_dataset
        clf = AdaBoostClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert all(weight > 0 for weight in clf.estimator_weights_)
        assert len(clf.estimators_) == len(clf.estimator_weights_)

    def test_early_stop_on_perfect_learner(self):
        X = np.array([[0.0], [0.0], [5.0], [5.0]])
        y = np.array([0, 0, 1, 1])
        clf = AdaBoostClassifier(
            n_estimators=20,
            base_estimator_factory=lambda: DecisionTreeClassifier(max_depth=2),
            random_state=0,
        ).fit(X, y)
        # A single perfect stump suffices; boosting stops immediately.
        assert len(clf.estimators_) == 1
        assert clf.score(X, y) == 1.0

    def test_probabilities_normalised(self, blobs_dataset):
        X, y = blobs_dataset
        clf = AdaBoostClassifier(n_estimators=8, random_state=0).fit(X, y)
        probabilities = clf.predict_proba(X[:10])
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_decision_function_shape(self, blobs_dataset):
        X, y = blobs_dataset
        clf = AdaBoostClassifier(n_estimators=5, random_state=0).fit(X, y)
        assert clf.decision_function(X[:12]).shape == (12, 3)

    def test_learning_rate_scales_weights(self, blobs_dataset):
        X, y = blobs_dataset
        fast = AdaBoostClassifier(n_estimators=5, learning_rate=1.0, random_state=0).fit(X, y)
        slow = AdaBoostClassifier(n_estimators=5, learning_rate=0.1, random_state=0).fit(X, y)
        if len(fast.estimator_weights_) and len(slow.estimator_weights_):
            assert slow.estimator_weights_[0] < fast.estimator_weights_[0]

    @pytest.mark.parametrize("kwargs", [{"n_estimators": 0}, {"learning_rate": 0.0}])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            AdaBoostClassifier(**kwargs)

    def test_predict_before_fit_raises(self, blobs_dataset):
        X, _ = blobs_dataset
        with pytest.raises(RuntimeError):
            AdaBoostClassifier().predict_proba(X)

    def test_string_labels(self):
        X = np.array([[0.0], [0.3], [5.0], [5.3]])
        y = np.array(["low", "low", "high", "high"])
        clf = AdaBoostClassifier(n_estimators=5, random_state=0).fit(X, y)
        assert clf.predict(np.array([[5.1]]))[0] == "high"
