"""Tests for Logistic Regression."""

import numpy as np
import pytest

from repro.ml.logistic_regression import LogisticRegressionClassifier
from tests.ml.conftest import train_test


class TestOvR:
    def test_blobs_high_accuracy(self, blobs_dataset):
        X, y = blobs_dataset
        Xtr, ytr, Xte, yte = train_test(X, y)
        clf = LogisticRegressionClassifier(multi_class="ovr", max_iter=300).fit(Xtr, ytr)
        assert clf.score(Xte, yte) > 0.95

    def test_text_like_data(self, text_like_dataset):
        X, y = text_like_dataset
        Xtr, ytr, Xte, yte = train_test(X, y)
        clf = LogisticRegressionClassifier(max_iter=300, C=10.0).fit(Xtr, ytr)
        assert clf.score(Xte, yte) > 0.85

    def test_probabilities_valid(self, blobs_dataset):
        X, y = blobs_dataset
        clf = LogisticRegressionClassifier(max_iter=100).fit(X, y)
        probabilities = clf.predict_proba(X[:20])
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert (probabilities >= 0).all() and (probabilities <= 1).all()

    def test_decision_function_shape(self, blobs_dataset):
        X, y = blobs_dataset
        clf = LogisticRegressionClassifier(max_iter=50).fit(X, y)
        assert clf.decision_function(X[:5]).shape == (5, 3)


class TestMultinomial:
    def test_blobs_high_accuracy(self, blobs_dataset):
        X, y = blobs_dataset
        Xtr, ytr, Xte, yte = train_test(X, y)
        clf = LogisticRegressionClassifier(multi_class="multinomial", max_iter=300).fit(Xtr, ytr)
        assert clf.score(Xte, yte) > 0.95

    def test_softmax_probabilities(self, blobs_dataset):
        X, y = blobs_dataset
        clf = LogisticRegressionClassifier(multi_class="multinomial", max_iter=100).fit(X, y)
        probabilities = clf.predict_proba(X[:10])
        assert np.allclose(probabilities.sum(axis=1), 1.0)


class TestRegularisationAndOptions:
    def test_stronger_regularisation_shrinks_weights(self, blobs_dataset):
        X, y = blobs_dataset
        weak = LogisticRegressionClassifier(C=100.0, max_iter=200).fit(X, y)
        strong = LogisticRegressionClassifier(C=0.01, max_iter=200).fit(X, y)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_no_intercept_option(self, blobs_dataset):
        X, y = blobs_dataset
        clf = LogisticRegressionClassifier(fit_intercept=False, max_iter=50).fit(X, y)
        assert np.allclose(clf.intercept_, 0.0)

    def test_binary_problem(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 1, (40, 3)), rng.normal(3, 1, (40, 3))])
        y = np.repeat([0, 1], 40)
        clf = LogisticRegressionClassifier(max_iter=200).fit(X, y)
        assert clf.score(X, y) > 0.9

    def test_string_labels(self):
        X = np.array([[0.0], [0.1], [5.0], [5.1]])
        y = np.array(["low", "low", "high", "high"])
        clf = LogisticRegressionClassifier(max_iter=200).fit(X, y)
        assert clf.predict(np.array([[0.05]]))[0] == "low"
        assert clf.predict(np.array([[5.05]]))[0] == "high"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"multi_class": "auto"},
            {"C": 0.0},
            {"C": -1.0},
            {"max_iter": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            LogisticRegressionClassifier(**kwargs)

    def test_predict_before_fit_raises(self, blobs_dataset):
        X, _ = blobs_dataset
        with pytest.raises(RuntimeError):
            LogisticRegressionClassifier().predict_proba(X)
