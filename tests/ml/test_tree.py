"""Tests for the CART decision tree."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier
from tests.ml.conftest import train_test


class TestDecisionTree:
    def test_fits_blobs(self, blobs_dataset):
        X, y = blobs_dataset
        Xtr, ytr, Xte, yte = train_test(X, y)
        tree = DecisionTreeClassifier(max_depth=6).fit(Xtr, ytr)
        assert tree.score(Xte, yte) > 0.9

    def test_pure_training_fit_is_perfect_without_depth_cap(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_max_depth_limits_tree(self, blobs_dataset):
        X, y = blobs_dataset
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=8).fit(X, y)
        assert shallow.depth <= 1
        assert deep.node_count >= shallow.node_count

    def test_min_samples_leaf_respected(self, blobs_dataset):
        X, y = blobs_dataset
        tree = DecisionTreeClassifier(min_samples_leaf=30).fit(X, y)
        # With 180 samples and >=30 per leaf there can be at most 6 leaves.
        leaves = sum(1 for node in tree._nodes if node.is_leaf)
        assert leaves <= 6

    def test_probabilities_valid(self, blobs_dataset):
        X, y = blobs_dataset
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        probabilities = tree.predict_proba(X[:25])
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert (probabilities >= 0).all()

    def test_sample_weights_shift_predictions(self):
        X = np.array([[0.0], [0.0], [1.0], [1.0]])
        y = np.array([0, 0, 0, 1])
        weights = np.array([0.01, 0.01, 0.01, 10.0])
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y, sample_weight=weights)
        assert tree.predict(np.array([[1.0]]))[0] == 1

    def test_feature_subsampling_with_seed_is_deterministic(self, blobs_dataset):
        X, y = blobs_dataset
        a = DecisionTreeClassifier(max_features=1, random_state=7).fit(X, y)
        b = DecisionTreeClassifier(max_features=1, random_state=7).fit(X, y)
        assert a.predict(X[:30]).tolist() == b.predict(X[:30]).tolist()

    @pytest.mark.parametrize("max_features", ["sqrt", "log2", 0.5, 1, None])
    def test_max_features_options(self, blobs_dataset, max_features):
        X, y = blobs_dataset
        tree = DecisionTreeClassifier(max_depth=3, max_features=max_features).fit(X, y)
        assert tree.score(X, y) > 0.5

    def test_unknown_max_features_string_rejected(self, blobs_dataset):
        X, y = blobs_dataset
        tree = DecisionTreeClassifier(max_features="all")
        with pytest.raises(ValueError):
            tree.fit(X, y)

    @pytest.mark.parametrize("kwargs", [{"min_samples_split": 1}, {"min_samples_leaf": 0}])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(**kwargs)

    def test_predict_before_fit_raises(self, blobs_dataset):
        X, _ = blobs_dataset
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict_proba(X)

    def test_constant_features_fall_back_to_leaf(self):
        X = np.zeros((10, 3))
        y = np.array([0] * 5 + [1] * 5)
        tree = DecisionTreeClassifier().fit(X, y)
        probabilities = tree.predict_proba(X[:1])
        assert probabilities[0, 0] == pytest.approx(0.5)

    def test_string_labels(self):
        X = np.array([[0.0], [0.1], [5.0], [5.1]])
        y = np.array(["low", "low", "high", "high"])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.predict(np.array([[5.05]]))[0] == "high"
