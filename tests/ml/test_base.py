"""Tests for the shared estimator plumbing."""

import numpy as np
import pytest
from scipy import sparse

from repro.ml.base import BaseClassifier, as_matrix, check_Xy, ensure_dense


class TestValidation:
    def test_as_matrix_accepts_lists(self):
        matrix = as_matrix([[1, 2], [3, 4]])
        assert matrix.shape == (2, 2)
        assert matrix.dtype == np.float64

    def test_as_matrix_promotes_1d(self):
        assert as_matrix([1.0, 2.0, 3.0]).shape == (1, 3)

    def test_as_matrix_keeps_sparse(self):
        X = sparse.csr_matrix(np.eye(3))
        assert sparse.issparse(as_matrix(X))

    def test_as_matrix_rejects_3d(self):
        with pytest.raises(ValueError):
            as_matrix(np.zeros((2, 2, 2)))

    def test_ensure_dense_densifies(self):
        X = sparse.csr_matrix(np.eye(3))
        dense = ensure_dense(X)
        assert isinstance(dense, np.ndarray)
        assert np.allclose(dense, np.eye(3))

    def test_check_Xy_happy_path(self):
        X, y = check_Xy([[1, 2], [3, 4]], [0, 1])
        assert X.shape == (2, 2)
        assert y.shape == (2,)

    def test_check_Xy_length_mismatch(self):
        with pytest.raises(ValueError):
            check_Xy([[1, 2]], [0, 1])

    def test_check_Xy_rejects_2d_labels(self):
        with pytest.raises(ValueError):
            check_Xy([[1, 2]], [[0]])

    def test_check_Xy_rejects_empty(self):
        with pytest.raises(ValueError):
            check_Xy(np.empty((0, 3)), np.empty(0))


class _ConstantClassifier(BaseClassifier):
    """Minimal concrete classifier for testing the base class."""

    def fit(self, X, y):
        X, y = check_Xy(X, y)
        self._encode_labels(y)
        return self

    def predict_proba(self, X):
        X = as_matrix(X)
        probabilities = np.zeros((X.shape[0], len(self.classes_)))
        probabilities[:, 0] = 1.0
        return probabilities


class TestBaseClassifier:
    def test_predict_maps_back_to_original_labels(self):
        clf = _ConstantClassifier().fit([[0.0], [1.0]], ["cat", "dog"])
        assert list(clf.predict([[0.5], [0.7]])) == ["cat", "cat"]

    def test_score_is_accuracy(self):
        clf = _ConstantClassifier().fit([[0.0], [1.0]], ["cat", "dog"])
        assert clf.score([[0.0], [1.0]], ["cat", "dog"]) == pytest.approx(0.5)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            _ConstantClassifier().fit([[0.0], [1.0]], ["cat", "cat"])

    def test_unfitted_check(self):
        clf = _ConstantClassifier()
        with pytest.raises(RuntimeError):
            clf._check_fitted()
