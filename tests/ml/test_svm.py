"""Tests for the linear SVM."""

import numpy as np
import pytest

from repro.ml.svm import LinearSVMClassifier
from tests.ml.conftest import train_test


class TestLinearSVM:
    def test_blobs_high_accuracy(self, blobs_dataset):
        X, y = blobs_dataset
        Xtr, ytr, Xte, yte = train_test(X, y)
        clf = LinearSVMClassifier(max_iter=200).fit(Xtr, ytr)
        assert clf.score(Xte, yte) > 0.95

    def test_text_like_data(self, text_like_dataset):
        X, y = text_like_dataset
        Xtr, ytr, Xte, yte = train_test(X, y)
        clf = LinearSVMClassifier(max_iter=200, C=5.0).fit(Xtr, ytr)
        assert clf.score(Xte, yte) > 0.8

    def test_decision_function_shape_and_argmax(self, blobs_dataset):
        X, y = blobs_dataset
        clf = LinearSVMClassifier(max_iter=100).fit(X, y)
        scores = clf.decision_function(X[:15])
        assert scores.shape == (15, 3)
        assert np.array_equal(clf.classes_[scores.argmax(axis=1)], clf.predict(X[:15]))

    def test_one_vs_rest_weights_per_class(self, blobs_dataset):
        X, y = blobs_dataset
        clf = LinearSVMClassifier(max_iter=50).fit(X, y)
        assert clf.coef_.shape == (3, X.shape[1])
        assert clf.intercept_.shape == (3,)

    def test_linearly_separable_binary_margin(self):
        X = np.array([[-2.0, 0.0], [-1.5, 0.2], [2.0, 0.0], [1.5, -0.2]])
        y = np.array([0, 0, 1, 1])
        clf = LinearSVMClassifier(max_iter=300, C=10.0).fit(X, y)
        assert clf.score(X, y) == 1.0
        # The separating direction must have positive weight on feature 0 for
        # the positive class of label 1.
        assert clf.coef_[1, 0] > 0

    def test_pseudo_probabilities_normalised(self, blobs_dataset):
        X, y = blobs_dataset
        clf = LinearSVMClassifier(max_iter=50).fit(X, y)
        probabilities = clf.predict_proba(X[:10])
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_string_labels(self):
        X = np.array([[0.0], [0.2], [4.0], [4.2]])
        y = np.array(["a", "a", "b", "b"])
        clf = LinearSVMClassifier(max_iter=200).fit(X, y)
        assert clf.predict(np.array([[4.1]]))[0] == "b"

    def test_regularisation_strength_affects_norm(self, blobs_dataset):
        X, y = blobs_dataset
        small_c = LinearSVMClassifier(C=0.01, max_iter=100).fit(X, y)
        large_c = LinearSVMClassifier(C=50.0, max_iter=100).fit(X, y)
        assert np.linalg.norm(small_c.coef_) < np.linalg.norm(large_c.coef_)

    @pytest.mark.parametrize("kwargs", [{"C": 0.0}, {"C": -2.0}, {"max_iter": 0}])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            LinearSVMClassifier(**kwargs)

    def test_sparse_input_supported(self, text_like_dataset):
        X, y = text_like_dataset
        clf = LinearSVMClassifier(max_iter=60).fit(X, y)
        assert clf.score(X, y) > 0.8
