"""Tests for the Naive Bayes classifiers."""

import numpy as np
import pytest
from scipy import sparse

from repro.ml.naive_bayes import BernoulliNaiveBayes, MultinomialNaiveBayes
from tests.ml.conftest import train_test


class TestMultinomialNB:
    def test_separable_text_like_data(self, text_like_dataset):
        X, y = text_like_dataset
        Xtr, ytr, Xte, yte = train_test(X, y)
        clf = MultinomialNaiveBayes().fit(Xtr, ytr)
        assert clf.score(Xte, yte) > 0.85

    def test_probabilities_sum_to_one(self, text_like_dataset):
        X, y = text_like_dataset
        clf = MultinomialNaiveBayes().fit(X, y)
        probabilities = clf.predict_proba(X[:10])
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert (probabilities >= 0).all()

    def test_works_with_dense_input(self, text_like_dataset):
        X, y = text_like_dataset
        clf = MultinomialNaiveBayes().fit(X.toarray(), y)
        assert clf.score(X.toarray(), y) > 0.85

    def test_class_priors_reflect_frequencies(self):
        X = np.array([[1.0, 0.0]] * 9 + [[0.0, 1.0]])
        y = np.array([0] * 9 + [1])
        clf = MultinomialNaiveBayes().fit(X, y)
        priors = np.exp(clf.class_log_prior_)
        assert priors[0] == pytest.approx(0.9)
        assert priors[1] == pytest.approx(0.1)

    def test_uniform_prior_option(self):
        X = np.array([[1.0, 0.0]] * 9 + [[0.0, 1.0]])
        y = np.array([0] * 9 + [1])
        clf = MultinomialNaiveBayes(fit_prior=False).fit(X, y)
        assert np.allclose(np.exp(clf.class_log_prior_), 0.5)

    def test_smoothing_prevents_zero_probability(self):
        X = np.array([[1.0, 0.0], [0.0, 1.0]])
        y = np.array([0, 1])
        clf = MultinomialNaiveBayes(alpha=1.0).fit(X, y)
        # Feature 1 never appears with class 0, but smoothing keeps log prob finite.
        assert np.isfinite(clf.feature_log_prob_).all()

    def test_alpha_zero_changes_behaviour(self):
        X = np.array([[3.0, 0.0], [0.0, 3.0]])
        y = np.array([0, 1])
        smoothed = MultinomialNaiveBayes(alpha=1.0).fit(X, y)
        harder = MultinomialNaiveBayes(alpha=0.01).fit(X, y)
        assert harder.feature_log_prob_[0, 1] < smoothed.feature_log_prob_[0, 1]

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes(alpha=-1.0)

    def test_predict_log_proba_consistent(self, text_like_dataset):
        X, y = text_like_dataset
        clf = MultinomialNaiveBayes().fit(X, y)
        log_probabilities = clf.predict_log_proba(X[:5])
        probabilities = clf.predict_proba(X[:5])
        assert np.allclose(np.exp(log_probabilities), probabilities, atol=1e-8)

    def test_string_labels_supported(self):
        X = np.array([[2.0, 0.0], [0.0, 2.0], [3.0, 0.0], [0.0, 1.0]])
        y = np.array(["savoury", "sweet", "savoury", "sweet"])
        clf = MultinomialNaiveBayes().fit(X, y)
        assert set(clf.predict(X)) <= {"savoury", "sweet"}


class TestBernoulliNB:
    def test_separable_binary_features(self, text_like_dataset):
        X, y = text_like_dataset
        Xtr, ytr, Xte, yte = train_test(X, y)
        clf = BernoulliNaiveBayes().fit(Xtr, ytr)
        assert clf.score(Xte, yte) > 0.8

    def test_binarize_threshold(self):
        X = np.array([[0.2, 0.9], [0.9, 0.2]])
        y = np.array([0, 1])
        clf = BernoulliNaiveBayes(binarize=0.5).fit(X, y)
        assert clf.predict(np.array([[0.1, 0.99]]))[0] == 0

    def test_probabilities_normalised(self, text_like_dataset):
        X, y = text_like_dataset
        clf = BernoulliNaiveBayes().fit(X, y)
        probabilities = clf.predict_proba(X[:7])
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_absence_informative(self):
        # Bernoulli NB uses absence of features; class 1 never has feature 0.
        X = np.array([[1.0, 1.0], [1.0, 0.0], [0.0, 1.0], [0.0, 1.0]])
        y = np.array([0, 0, 1, 1])
        clf = BernoulliNaiveBayes().fit(X, y)
        assert clf.predict(np.array([[0.0, 1.0]]))[0] == 1

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            BernoulliNaiveBayes(alpha=-0.5)
