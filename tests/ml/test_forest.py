"""Tests for the Random Forest."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from tests.ml.conftest import train_test


class TestRandomForest:
    def test_blobs_high_accuracy(self, blobs_dataset):
        X, y = blobs_dataset
        Xtr, ytr, Xte, yte = train_test(X, y)
        forest = RandomForestClassifier(n_estimators=15, max_depth=6, random_state=0).fit(Xtr, ytr)
        assert forest.score(Xte, yte) > 0.9

    def test_text_like_data(self, text_like_dataset):
        X, y = text_like_dataset
        Xtr, ytr, Xte, yte = train_test(X, y)
        forest = RandomForestClassifier(n_estimators=20, max_depth=8, random_state=0).fit(Xtr, ytr)
        assert forest.score(Xte, yte) > 0.75

    def test_number_of_estimators(self, blobs_dataset):
        X, y = blobs_dataset
        forest = RandomForestClassifier(n_estimators=7, max_depth=3, random_state=1).fit(X, y)
        assert len(forest.estimators_) == 7

    def test_probabilities_valid(self, blobs_dataset):
        X, y = blobs_dataset
        forest = RandomForestClassifier(n_estimators=10, max_depth=4, random_state=0).fit(X, y)
        probabilities = forest.predict_proba(X[:20])
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert (probabilities >= 0).all()

    def test_deterministic_given_seed(self, blobs_dataset):
        X, y = blobs_dataset
        a = RandomForestClassifier(n_estimators=5, max_depth=4, random_state=3).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, max_depth=4, random_state=3).fit(X, y)
        assert a.predict(X[:30]).tolist() == b.predict(X[:30]).tolist()

    def test_bootstrap_disabled_uses_all_rows(self, blobs_dataset):
        X, y = blobs_dataset
        forest = RandomForestClassifier(
            n_estimators=3, max_depth=4, bootstrap=False, random_state=0
        ).fit(X, y)
        assert forest.score(X, y) > 0.9

    def test_more_trees_do_not_hurt(self, blobs_dataset):
        X, y = blobs_dataset
        Xtr, ytr, Xte, yte = train_test(X, y)
        few = RandomForestClassifier(n_estimators=1, max_depth=2, random_state=0).fit(Xtr, ytr)
        many = RandomForestClassifier(n_estimators=25, max_depth=2, random_state=0).fit(Xtr, ytr)
        assert many.score(Xte, yte) >= few.score(Xte, yte) - 0.05

    def test_feature_importances_normalised(self, blobs_dataset):
        X, y = blobs_dataset
        forest = RandomForestClassifier(n_estimators=10, max_depth=4, random_state=0).fit(X, y)
        importances = forest.feature_importances_
        assert importances.sum() == pytest.approx(1.0)
        assert (importances >= 0).all()

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_predict_before_fit_raises(self, blobs_dataset):
        X, _ = blobs_dataset
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba(X)

    def test_single_class_rejected(self):
        X = np.zeros((5, 2))
        y = np.zeros(5)
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=2).fit(X, y)
