"""Tests for the table/figure regeneration helpers."""

import numpy as np
import pytest

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.metrics import evaluate_predictions
from repro.core.results import ExperimentResult, ModelResult
from repro.data.cuisines import CUISINE_RECIPE_COUNTS
from repro.data.schema import TokenKind
from repro.evaluation.figures import (
    accuracy_curves,
    feature_frequency_histogram,
    loss_curves,
    normalized_accuracy,
)
from repro.evaluation.reports import comparison_summary, format_table, render_ascii_chart
from repro.evaluation.tables import table_i, table_ii, table_iii, table_iv, table_iv_wide


def _fake_result(with_history: bool = True) -> ExperimentResult:
    """A hand-built experiment result with two models."""
    rng = np.random.default_rng(0)
    result = ExperimentResult(config={"models": ["logreg", "lstm"]}, split_sizes={"train": 10})
    for name, accuracy_target in (("logreg", 0.6), ("lstm", 0.5)):
        n = 50
        y_true = rng.integers(0, 3, size=n)
        probabilities = np.full((n, 3), 0.1)
        correct = rng.random(n) < accuracy_target
        for i in range(n):
            winner = y_true[i] if correct[i] else (y_true[i] + 1) % 3
            probabilities[i, winner] = 0.8
        metrics = evaluate_predictions(y_true, probabilities / probabilities.sum(1, keepdims=True))
        history = (
            {"train_loss": [1.5, 1.0, 0.7], "val_loss": [1.6, 1.2, 0.9],
             "train_accuracy": [0.3, 0.5, 0.6], "val_accuracy": [0.25, 0.45, 0.5]}
            if with_history and name == "lstm"
            else {}
        )
        result.add(ModelResult(model_name=name, metrics=metrics, history=history))
    return result


class TestTableI:
    def test_one_row_per_continent(self, small_corpus):
        rows = table_i(small_corpus)
        continents = [row["Continent"] for row in rows]
        assert len(continents) == len(set(continents))
        assert {"Asian", "European"} <= set(continents)

    def test_columns_match_paper(self, small_corpus):
        rows = table_i(small_corpus)
        assert set(rows[0]) == {"Recipe ID", "Continent", "Cuisine", "Recipe"}

    def test_truncation_marker(self, small_corpus):
        rows = table_i(small_corpus, max_items=3)
        assert all(row["Recipe"][-1] == "..." or len(row["Recipe"]) <= 3 for row in rows)


class TestTableII:
    def test_all_26_cuisines_with_paper_counts(self, tiny_corpus):
        rows = table_ii(tiny_corpus)
        assert len(rows) == 26
        by_cuisine = {row["Cuisine"]: row for row in rows}
        assert by_cuisine["Italian"]["Paper Count"] == 16582
        assert by_cuisine["Italian"]["Number of Recipes"] == tiny_corpus.cuisine_counts()["Italian"]

    def test_proportions_follow_paper(self, tiny_corpus):
        rows = table_ii(tiny_corpus)
        by_cuisine = {row["Cuisine"]: row["Number of Recipes"] for row in rows}
        assert by_cuisine["Italian"] > by_cuisine["Korean"]
        assert by_cuisine["Mexican"] > by_cuisine["Central American"]


class TestTableIII:
    def test_thresholds_and_paper_columns(self, small_corpus):
        rows = table_iii(small_corpus)
        thresholds = [row["Threshold"] for row in rows]
        assert ">1000" in thresholds and "<2" in thresholds
        assert len(rows) == 20
        for row in rows:
            assert row["Paper Value"] is not None
            assert row["Number of Features"] >= 0


class TestTableIV:
    def test_rows_have_measured_and_paper_metrics(self):
        rows = table_iv(_fake_result())
        assert len(rows) == 2
        logreg_row = next(row for row in rows if row["Model"] == "LogReg")
        assert "Accuracy" in logreg_row and "Paper Accuracy" in logreg_row
        assert logreg_row["Paper Accuracy"] == 57.70

    def test_without_paper_columns(self):
        rows = table_iv(_fake_result(), include_paper=False)
        assert all("Paper Accuracy" not in row for row in rows)

    def test_wide_layout(self):
        wide = table_iv_wide(_fake_result())
        assert set(wide) == {"Accuracy", "Loss", "Precision", "Recall", "F1 Score"}
        assert set(wide["Accuracy"]) == {"LogReg", "LSTM"}


class TestFigures:
    def test_normalized_accuracy_best_model_is_one(self):
        series = normalized_accuracy(_fake_result())
        assert max(series["measured"].values()) == pytest.approx(1.0)
        assert max(series["paper"].values()) == pytest.approx(1.0)
        assert set(series["measured"]) == {"LogReg", "LSTM"}

    def test_loss_curves_only_for_models_with_history(self):
        result = _fake_result()
        train = loss_curves(result, split="train")
        val = loss_curves(result, split="val")
        assert set(train) == {"LSTM"} and set(val) == {"LSTM"}
        assert train["LSTM"] == [1.5, 1.0, 0.7]

    def test_accuracy_curves(self):
        curves = accuracy_curves(_fake_result(), split="val")
        assert curves["LSTM"] == [0.25, 0.45, 0.5]

    def test_loss_curves_invalid_split(self):
        with pytest.raises(ValueError):
            loss_curves(_fake_result(), split="test")

    def test_feature_frequency_histogram(self, small_corpus):
        figure = feature_frequency_histogram(small_corpus)
        assert figure["total_features"] > 100
        assert figure["top_features"][0]["feature"] == "add"
        assert sum(bin_["features"] for bin_ in figure["histogram"]) == figure["total_features"]

    def test_feature_frequency_by_kind(self, small_corpus):
        processes = feature_frequency_histogram(small_corpus, kind=TokenKind.PROCESS)
        utensils = feature_frequency_histogram(small_corpus, kind=TokenKind.UTENSIL)
        assert processes["total_features"] <= 256
        assert utensils["total_features"] <= 69

    def test_feature_frequency_empty_corpus_kind(self, handmade_corpus):
        figure = feature_frequency_histogram(handmade_corpus, kind=TokenKind.UTENSIL, top_k=2)
        assert len(figure["top_features"]) == 2


class TestReports:
    def test_format_table_alignment_and_title(self):
        rows = [{"Model": "LogReg", "Accuracy": 57.7}, {"Model": "RoBERTa", "Accuracy": 73.3}]
        text = format_table(rows, title="Table IV")
        lines = text.splitlines()
        assert lines[0] == "Table IV"
        assert "Model" in lines[1] and "Accuracy" in lines[1]
        assert len(lines) == 5

    def test_format_table_handles_missing_and_none(self):
        text = format_table([{"a": 1}, {"b": None}])
        assert "-" in text

    def test_format_empty_table(self):
        assert "(empty)" in format_table([], title="Nothing")

    def test_render_ascii_bar_chart(self):
        chart = render_ascii_chart({"LogReg": 0.577, "RoBERTa": 0.733}, title="Accuracy")
        assert "LogReg" in chart and "#" in chart

    def test_render_ascii_sparkline_chart(self):
        chart = render_ascii_chart({"LSTM": [1.5, 1.0, 0.7]})
        assert "LSTM" in chart and "last=0.7" in chart

    def test_render_empty_chart(self):
        assert "(no data)" in render_ascii_chart({})

    def test_comparison_summary(self):
        text = comparison_summary({"Accuracy": 40.0}, {"Accuracy": 73.3, "Loss": 0.1})
        assert "Accuracy" in text and "Loss" in text


class TestRealExperimentTables:
    def test_table_iv_from_real_run(self, small_corpus):
        config = ExperimentConfig(models=("naive_bayes",), seed=2)
        result = ExperimentRunner(config, corpus=small_corpus).run()
        rows = table_iv(result)
        assert rows[0]["Model"] == "Naive Bayes"
        assert 0 <= rows[0]["Accuracy"] <= 100
