"""Tests for the LSTM and transformer cuisine classifiers.

These run real (small) training loops, so the corpora and model sizes are kept
tiny; the assertions are about mechanics and better-than-chance learning, not
about reaching paper-level accuracy.
"""

import numpy as np
import pytest

from repro.data.splits import train_val_test_split
from repro.models.lstm_classifier import LSTMClassifierConfig, LSTMCuisineClassifier
from repro.models.transformer_classifier import (
    BERTCuisineClassifier,
    RoBERTaCuisineClassifier,
    TransformerClassifierConfig,
    TransformerCuisineClassifier,
)


@pytest.fixture(scope="module")
def splits(tiny_corpus):
    return train_val_test_split(tiny_corpus, seed=2)


@pytest.fixture(scope="module")
def label_space(tiny_corpus):
    return tiny_corpus.present_cuisines()


SMALL_LSTM = LSTMClassifierConfig(
    embedding_dim=24, hidden_dim=32, num_layers=2, max_length=32, epochs=3, batch_size=32,
    learning_rate=5e-3, early_stopping_patience=None, seed=1,
)
SMALL_TRANSFORMER = TransformerClassifierConfig(
    dim=32, num_heads=4, num_layers=2, ffn_dim=64, max_length=32, epochs=3, batch_size=32,
    pretrain_epochs=1, learning_rate=3e-3, early_stopping_patience=None, seed=1,
)


class TestLSTMCuisineClassifier:
    @pytest.fixture(scope="class")
    def fitted(self, splits, label_space):
        model = LSTMCuisineClassifier(label_space=label_space, config=SMALL_LSTM)
        return model.fit(splits.train, splits.validation)

    def test_training_history_recorded(self, fitted):
        assert fitted.history is not None
        assert fitted.history.epochs >= 1
        assert len(fitted.history.val_loss) == fitted.history.epochs

    def test_beats_chance_on_test(self, fitted, splits, label_space):
        metrics = fitted.evaluate(splits.test)
        assert metrics.accuracy > 1.5 / len(label_space)
        assert np.isfinite(metrics.loss)

    def test_probabilities_valid(self, fitted, splits, label_space):
        probabilities = fitted.predict_proba(splits.test)
        assert probabilities.shape == (len(splits.test), len(label_space))
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_unfitted_raises(self, label_space, splits):
        with pytest.raises(RuntimeError):
            LSTMCuisineClassifier(label_space=label_space).predict_proba(splits.test)

    def test_vocabulary_built_from_training_data(self, fitted):
        assert fitted.vocabulary is not None
        assert len(fitted.vocabulary) > 10

    def test_two_layer_topology(self, fitted):
        assert len(fitted.network.lstm.cells) == 2


class TestTransformerCuisineClassifier:
    @pytest.fixture(scope="class")
    def fitted(self, splits, label_space):
        model = TransformerCuisineClassifier(label_space=label_space, config=SMALL_TRANSFORMER)
        return model.fit(splits.train, splits.validation)

    def test_pretraining_ran(self, fitted):
        assert fitted.pretraining_result is not None
        assert len(fitted.pretraining_result.losses_per_epoch) == 1
        assert np.isfinite(fitted.pretraining_result.final_loss)

    def test_finetuning_history_recorded(self, fitted):
        assert fitted.history is not None
        assert fitted.history.epochs >= 1

    def test_beats_chance_on_test(self, fitted, splits, label_space):
        metrics = fitted.evaluate(splits.test)
        assert metrics.accuracy > 1.5 / len(label_space)

    def test_probabilities_valid(self, fitted, splits, label_space):
        probabilities = fitted.predict_proba(splits.test)
        assert probabilities.shape == (len(splits.test), len(label_space))
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_unfitted_raises(self, label_space, splits):
        with pytest.raises(RuntimeError):
            TransformerCuisineClassifier(label_space=label_space).predict_proba(splits.test)


class TestBERTvsRoBERTaPresets:
    def test_bert_uses_static_masking_and_fewer_epochs(self):
        base = TransformerClassifierConfig(pretrain_epochs=4)
        bert = BERTCuisineClassifier(config=base)
        roberta = RoBERTaCuisineClassifier(config=base)
        assert bert.config.pretrain_dynamic_masking is False
        assert roberta.config.pretrain_dynamic_masking is True
        assert roberta.config.pretrain_epochs > bert.config.pretrain_epochs

    def test_presets_with_pretraining_disabled(self):
        base = TransformerClassifierConfig(pretrain_epochs=0)
        assert BERTCuisineClassifier(config=base).config.pretrain_epochs == 0
        assert RoBERTaCuisineClassifier(config=base).config.pretrain_epochs == 0

    def test_names(self):
        assert BERTCuisineClassifier().name == "bert"
        assert RoBERTaCuisineClassifier().name == "roberta"
        assert LSTMCuisineClassifier().name == "lstm"
