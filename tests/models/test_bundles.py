"""Bundle round-trip tests: every registry model must save/load exactly.

For each registry name the model is fitted on a tiny corpus, exported as a
bundle, reloaded through the registry-aware loader (a fresh context with no
feature store or training corpus) and its ``predict_proba`` must be
**bitwise identical** pre/post reload.
"""

import numpy as np
import pytest

from repro.data.splits import train_val_test_split
from repro.models.artifacts import (
    BUNDLE_FORMAT_VERSION,
    is_bundle,
    read_bundle,
    write_bundle,
)
from repro.models.base import CuisineModel
from repro.models.lstm_classifier import LSTMClassifierConfig
from repro.models.registry import MODEL_NAMES, create_model
from repro.models.transformer_classifier import TransformerClassifierConfig

TINY_LSTM = LSTMClassifierConfig(
    embedding_dim=16, hidden_dim=16, num_layers=1, max_length=24, epochs=1, seed=1
)
TINY_TRANSFORMER = TransformerClassifierConfig(
    dim=16, num_heads=2, num_layers=1, ffn_dim=32, max_length=24,
    epochs=1, pretrain_epochs=1, seed=1,
)
FAST_KWARGS = {
    "logreg": {"max_iter": 30},
    "svm_linear": {"max_iter": 30},
    "random_forest": {"n_estimators": 4, "max_depth": 6, "boosting_rounds": 2},
}


@pytest.fixture(scope="module")
def splits(tiny_corpus):
    return train_val_test_split(tiny_corpus, seed=2)


@pytest.fixture(scope="module")
def label_space(tiny_corpus):
    return tiny_corpus.present_cuisines()


def _fit(name, splits, label_space):
    model = create_model(
        name,
        label_space=label_space,
        lstm_config=TINY_LSTM,
        transformer_config=TINY_TRANSFORMER,
        **FAST_KWARGS.get(name, {}),
    )
    return model.fit(splits.train, splits.validation)


class TestBundleRoundTrip:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_predict_proba_bitwise_identical(self, name, splits, label_space, tmp_path):
        model = _fit(name, splits, label_space)
        reference = model.predict_proba(splits.test)

        path = model.save_bundle(tmp_path / name)
        assert is_bundle(path)
        loaded = CuisineModel.load_bundle(path)

        assert type(loaded) is type(model)
        assert loaded.label_space == model.label_space
        assert loaded.feature_spec() == model.feature_spec()
        # The loaded model predicts without any store or training corpus.
        assert loaded._store is None and loaded._train_corpus is None
        restored = loaded.predict_proba(splits.test)
        np.testing.assert_array_equal(reference, restored)

    def test_manifest_metadata(self, splits, label_space, tmp_path):
        model = _fit("logreg", splits, label_space)
        path = model.save_bundle(tmp_path / "logreg")
        manifest, state = read_bundle(path)
        assert manifest["model"] == "logreg"
        assert manifest["model_class"] == "LogisticRegressionModel"
        assert tuple(manifest["label_space"]) == tuple(label_space)
        assert manifest["corpus_fingerprint"] == splits.train.fingerprint()
        assert manifest["feature_spec"]["kind"] == "TfidfSpec"
        assert "classifier" in state and "vectorizer" in state

        loaded = CuisineModel.load_bundle(path)
        assert loaded.bundle_manifest["corpus_fingerprint"] == splits.train.fingerprint()

    def test_resaving_a_loaded_bundle_keeps_provenance(self, splits, label_space, tmp_path):
        model = _fit("naive_bayes", splits, label_space)
        first = model.save_bundle(tmp_path / "first")
        loaded = CuisineModel.load_bundle(first)
        second = loaded.save_bundle(tmp_path / "second")
        manifest, _ = read_bundle(second)
        assert manifest["corpus_fingerprint"] == splits.train.fingerprint()


class TestBundleErrors:
    def test_unfitted_model_cannot_be_saved(self, label_space, tmp_path):
        model = create_model("logreg", label_space=label_space)
        with pytest.raises(RuntimeError, match="not fitted"):
            model.save_bundle(tmp_path / "nope")

    def test_missing_bundle_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CuisineModel.load_bundle(tmp_path / "missing")

    def test_version_mismatch_raises(self, tmp_path):
        path = write_bundle(
            tmp_path / "bundle", {"model": "logreg", "label_space": ["a", "b"]}, {}
        )
        manifest_path = path / "manifest.json"
        text = manifest_path.read_text().replace(
            f'"format_version": {BUNDLE_FORMAT_VERSION}', '"format_version": 9999'
        )
        manifest_path.write_text(text)
        with pytest.raises(ValueError, match="format version"):
            read_bundle(path)

    def test_reserved_manifest_keys_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            write_bundle(tmp_path / "bundle", {"state": {}}, {})

    def test_unserialisable_state_rejected(self, tmp_path):
        with pytest.raises(TypeError, match="not bundle-serialisable"):
            write_bundle(tmp_path / "bundle", {}, {"bad": object()})

    def test_reserved_array_ref_key_rejected_at_save_time(self, tmp_path):
        with pytest.raises(ValueError, match="reserved key"):
            write_bundle(tmp_path / "bundle", {}, {"mapping": {"__array__": 3}})


class TestStateArrays:
    def test_arrays_round_trip_bitwise_through_npz(self, tmp_path):
        rng = np.random.default_rng(0)
        state = {
            "weights": rng.standard_normal((7, 3)),
            "nested": {"ints": np.arange(5, dtype=np.int64)},
            "trees": [{"values": rng.standard_normal(4)} for _ in range(3)],
            "scalar": 1.5,
            "flag": True,
            "none": None,
        }
        path = write_bundle(tmp_path / "bundle", {"model": "x"}, state)
        _, restored = read_bundle(path)
        np.testing.assert_array_equal(state["weights"], restored["weights"])
        assert restored["nested"]["ints"].dtype == np.int64
        for original, loaded in zip(state["trees"], restored["trees"]):
            np.testing.assert_array_equal(original["values"], loaded["values"])
        assert restored["scalar"] == 1.5
        assert restored["flag"] is True
        assert restored["none"] is None
