"""Tests for opt-in bundle dtype policies (slim arrays, exactness flag)."""

import json

import numpy as np
import pytest

from repro.models.artifacts import (
    DtypePolicy,
    read_bundle,
    write_bundle,
)
from repro.models.registry import create_model
from repro.serving.bundle import ModelBundle, validate_manifest


def _manifest(path):
    return json.loads((path / "manifest.json").read_text(encoding="utf-8"))


MANIFEST_STUB = {"model": "logreg", "label_space": ["a", "b"], "feature_spec": {}}


class TestPolicyResolution:
    def test_default_is_exact(self):
        policy = DtypePolicy.resolve(None)
        assert policy.name == "exact"
        assert policy.float_dtype is None
        assert not policy.narrow_ints

    def test_shorthands(self):
        assert DtypePolicy.resolve("exact") == DtypePolicy()
        assert DtypePolicy.resolve("float32").float_dtype == "float32"
        slim = DtypePolicy.resolve("slim")
        assert slim.float_dtype == "float32" and slim.narrow_ints

    def test_instance_passthrough(self):
        policy = DtypePolicy(name="custom", float_dtype="float32", rtol=1e-3)
        assert DtypePolicy.resolve(policy) is policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown dtype policy"):
            DtypePolicy.resolve("float16ish")


class TestApply:
    def test_exact_policy_never_converts(self):
        array = np.linspace(0.0, 1.0, 7)
        stored, record = DtypePolicy().apply(array)
        assert stored is array and record is None

    def test_float_downcast_within_tolerance(self):
        array = np.linspace(0.0, 1.0, 7)
        stored, record = DtypePolicy.resolve("float32").apply(array)
        assert stored.dtype == np.float32
        assert record["original"] == "float64"
        assert record["stored"] == "float32"
        assert record["max_abs_error"] <= 1e-7

    def test_float_downcast_refused_on_overflow(self):
        array = np.array([1e300, 1.0])  # overflows float32 to inf
        stored, record = DtypePolicy.resolve("float32").apply(array)
        assert stored is array and record is None

    def test_float_downcast_refused_beyond_custom_tolerance(self):
        policy = DtypePolicy(name="tight", float_dtype="float32", rtol=1e-12, atol=0.0)
        array = np.linspace(0.1, 1.0, 16)  # f32 round-trip is ~1e-8 relative
        stored, record = policy.apply(array)
        assert stored is array and record is None

    def test_int_narrowing_lossless(self):
        array = np.array([-5, 0, 120], dtype=np.int64)
        stored, record = DtypePolicy.resolve("slim").apply(array)
        assert stored.dtype == np.int8
        assert record["max_abs_error"] == 0.0
        np.testing.assert_array_equal(stored.astype(np.int64), array)

    def test_int_narrowing_picks_smallest_fit(self):
        array = np.array([0, 40_000], dtype=np.int64)
        stored, _ = DtypePolicy.resolve("slim").apply(array)
        assert stored.dtype == np.int32  # 40k overflows int16

    def test_float32_policy_leaves_ints_alone(self):
        array = np.array([1, 2, 3], dtype=np.int64)
        stored, record = DtypePolicy.resolve("float32").apply(array)
        assert stored is array and record is None


class TestBundleRoundTrip:
    STATE = {
        "weights": np.linspace(-1.0, 1.0, 64),
        "ids": np.arange(10, dtype=np.int64),
        "precise": np.array([1e300, 1.0]),  # float32 would overflow
        "config": {"alpha": 0.5},
    }

    def test_default_bundle_is_exact(self, tmp_path):
        write_bundle(tmp_path / "b", dict(MANIFEST_STUB), self.STATE)
        manifest = _manifest(tmp_path / "b")
        assert manifest["exact"] is True
        assert manifest["dtype_policy"] == "exact"
        assert manifest["array_dtypes"] == {}
        _, state = read_bundle(tmp_path / "b")
        np.testing.assert_array_equal(state["weights"], self.STATE["weights"])
        assert state["weights"].dtype == np.float64

    def test_slim_bundle_records_conversions(self, tmp_path):
        write_bundle(tmp_path / "b", dict(MANIFEST_STUB), self.STATE, dtype_policy="slim")
        manifest = _manifest(tmp_path / "b")
        assert manifest["exact"] is False
        assert manifest["dtype_policy"] == "slim"
        records = manifest["array_dtypes"]
        assert records["state/weights"]["stored"] == "float32"
        assert records["state/ids"]["stored"] == "int8"
        # The full-precision array failed the tolerance check: untouched,
        # and therefore absent from the conversion record.
        assert "state/precise" not in records
        _, state = read_bundle(tmp_path / "b")
        assert state["weights"].dtype == np.float32
        assert state["ids"].dtype == np.int8
        assert state["precise"].dtype == np.float64
        np.testing.assert_allclose(
            state["weights"].astype(np.float64), self.STATE["weights"], rtol=1e-6
        )

    def test_all_pass_policy_still_not_exact(self, tmp_path):
        """exact is about bit-identity of stored arrays, not policy name."""
        state = {"weights": np.linspace(0.0, 1.0, 8)}
        write_bundle(tmp_path / "b", dict(MANIFEST_STUB), state, dtype_policy="float32")
        assert _manifest(tmp_path / "b")["exact"] is False

    def test_lossy_policy_with_no_convertible_arrays_is_exact(self, tmp_path):
        state = {"precise": np.array([1e300]), "flags": np.array([True, False])}
        write_bundle(tmp_path / "b", dict(MANIFEST_STUB), state, dtype_policy="float32")
        manifest = _manifest(tmp_path / "b")
        assert manifest["exact"] is True
        assert manifest["array_dtypes"] == {}

    def test_slim_archive_is_smaller(self, tmp_path):
        rng = np.random.default_rng(5)
        state = {"weights": rng.normal(size=(128, 64)) * 1e-2}
        write_bundle(tmp_path / "exact", dict(MANIFEST_STUB), state)
        write_bundle(tmp_path / "slim", dict(MANIFEST_STUB), state, dtype_policy="slim")

        def archive_bytes(path):
            return sum(f.stat().st_size for f in path.glob("arrays-*.npz"))

        assert archive_bytes(tmp_path / "slim") < archive_bytes(tmp_path / "exact")

    def test_new_reserved_keys_rejected(self, tmp_path):
        for key in ("exact", "dtype_policy", "array_dtypes"):
            with pytest.raises(ValueError, match="reserved"):
                write_bundle(
                    tmp_path / "b", {**MANIFEST_STUB, key: "x"}, dict(self.STATE)
                )


class TestModelBundles:
    @pytest.fixture(scope="class")
    def fitted_logreg(self, tiny_corpus):
        model = create_model("logreg", max_iter=30)
        model.fit(tiny_corpus)
        return model

    def test_default_save_is_bitwise_exact(self, fitted_logreg, tiny_corpus, tmp_path):
        path = fitted_logreg.save_bundle(tmp_path / "logreg")
        assert _manifest(path)["exact"] is True
        loaded = ModelBundle.load(path).model
        sequences = [recipe.sequence for recipe in tiny_corpus.recipes[:12]]
        np.testing.assert_array_equal(
            fitted_logreg.predict_proba_sequences(sequences),
            loaded.predict_proba_sequences(sequences),
        )

    def test_slim_save_validates_and_predicts_close(
        self, fitted_logreg, tiny_corpus, tmp_path
    ):
        path = fitted_logreg.save_bundle(tmp_path / "logreg", dtype_policy="slim")
        validate_manifest(path)  # new manifest fields are known to the schema
        manifest = _manifest(path)
        assert manifest["dtype_policy"] == "slim"
        assert manifest["array_dtypes"]  # something was actually slimmed
        loaded = ModelBundle.load(path).model
        assert loaded.bundle_manifest["exact"] is False
        sequences = [recipe.sequence for recipe in tiny_corpus.recipes[:12]]
        reference = fitted_logreg.predict_proba_sequences(sequences)
        slimmed = loaded.predict_proba_sequences(sequences)
        np.testing.assert_allclose(slimmed, reference, rtol=1e-4, atol=1e-6)
        np.testing.assert_array_equal(
            slimmed.argmax(axis=1), reference.argmax(axis=1)
        )

    def test_pre_policy_bundles_still_load(self, fitted_logreg, tmp_path):
        """A manifest without the dtype trio (written before policies
        existed) must validate and load unchanged."""
        path = fitted_logreg.save_bundle(tmp_path / "logreg")
        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        for key in ("exact", "dtype_policy", "array_dtypes"):
            manifest.pop(key)
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        validate_manifest(path)
        assert ModelBundle.load(path).model.name == "logreg"
