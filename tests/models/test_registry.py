"""Tests for the model registry and paper Table IV constants."""

import pytest

from repro.data.cuisines import CUISINES
from repro.models.base import CuisineModel
from repro.models.registry import (
    DISPLAY_NAMES,
    MODEL_NAMES,
    PAPER_TABLE_IV,
    SEQUENTIAL_MODELS,
    create_model,
    describe_architecture,
    display_name,
    is_sequential,
)


class TestPaperTableIV:
    def test_all_seven_models_present(self):
        assert set(PAPER_TABLE_IV) == set(MODEL_NAMES)
        assert len(MODEL_NAMES) == 7

    def test_headline_numbers(self):
        assert PAPER_TABLE_IV["roberta"]["Accuracy"] == 73.30
        assert PAPER_TABLE_IV["bert"]["Accuracy"] == 68.71
        assert PAPER_TABLE_IV["logreg"]["Accuracy"] == 57.70
        assert PAPER_TABLE_IV["lstm"]["Accuracy"] == 53.61
        assert PAPER_TABLE_IV["roberta"]["Loss"] == 0.10

    def test_paper_ordering_roberta_best(self):
        accuracies = {name: values["Accuracy"] for name, values in PAPER_TABLE_IV.items()}
        assert max(accuracies, key=accuracies.get) == "roberta"
        assert accuracies["bert"] > accuracies["logreg"] > accuracies["lstm"]

    def test_every_row_has_all_five_metrics(self):
        for values in PAPER_TABLE_IV.values():
            assert set(values) == {"Accuracy", "Loss", "Precision", "Recall", "F1 Score"}


class TestRegistry:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_create_model_returns_cuisine_model(self, name):
        model = create_model(name)
        assert isinstance(model, CuisineModel)
        assert model.name == name
        assert model.label_space == CUISINES

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            create_model("gpt17")

    def test_custom_label_space(self):
        model = create_model("logreg", label_space=("Italian", "Mexican"))
        assert model.n_classes == 2

    def test_statistical_kwargs_forwarded(self):
        model = create_model("logreg", C=0.5)
        assert model.classifier.C == 0.5

    def test_display_names(self):
        assert display_name("svm_linear") == "SVM (linear)"
        assert display_name("unknown_thing") == "unknown_thing"
        assert set(DISPLAY_NAMES) == set(MODEL_NAMES)

    def test_sequential_flag(self):
        assert SEQUENTIAL_MODELS == {"lstm", "bert", "roberta"}
        assert is_sequential("lstm") and not is_sequential("logreg")

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_architecture_descriptions_exist(self, name):
        description = describe_architecture(name)
        assert isinstance(description, str) and len(description) > 20

    def test_architecture_description_unknown_raises(self):
        with pytest.raises(KeyError):
            describe_architecture("mystery")
