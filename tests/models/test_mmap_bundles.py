"""Memory-mapped bundle loading: every registry model predicts bitwise
identically from read-only maps over the extracted archive sidecar, the
mechanism that lets N cluster workers share one physical copy of the
bundle arrays."""

import json
import shutil

import numpy as np
import pytest

from repro.data.splits import train_val_test_split
from repro.models.artifacts import extract_archive, read_bundle
from repro.models.base import CuisineModel
from repro.models.lstm_classifier import LSTMClassifierConfig
from repro.models.registry import MODEL_NAMES, create_model
from repro.models.transformer_classifier import TransformerClassifierConfig

TINY_LSTM = LSTMClassifierConfig(
    embedding_dim=16, hidden_dim=16, num_layers=1, max_length=24, epochs=1, seed=1
)
TINY_TRANSFORMER = TransformerClassifierConfig(
    dim=16, num_heads=2, num_layers=1, ffn_dim=32, max_length=24,
    epochs=1, pretrain_epochs=1, seed=1,
)
FAST_KWARGS = {
    "logreg": {"max_iter": 30},
    "svm_linear": {"max_iter": 30},
    "random_forest": {"n_estimators": 4, "max_depth": 6, "boosting_rounds": 2},
}


@pytest.fixture(scope="module")
def splits(tiny_corpus):
    return train_val_test_split(tiny_corpus, seed=2)


@pytest.fixture(scope="module")
def exported(splits, tiny_corpus, tmp_path_factory):
    """Every registry model fitted and exported once for the whole module."""
    root = tmp_path_factory.mktemp("mmap-bundles")
    label_space = tiny_corpus.present_cuisines()
    bundles = {}
    for name in MODEL_NAMES:
        model = create_model(
            name,
            label_space=label_space,
            lstm_config=TINY_LSTM,
            transformer_config=TINY_TRANSFORMER,
            **FAST_KWARGS.get(name, {}),
        )
        model.fit(splits.train, splits.validation)
        path = model.save_bundle(root / name)
        bundles[name] = (path, model.predict_proba(splits.test))
    return bundles


def _array_leaves(node):
    if isinstance(node, np.ndarray):
        yield node
    elif isinstance(node, dict):
        for value in node.values():
            yield from _array_leaves(value)
    elif isinstance(node, (list, tuple)):
        for value in node:
            yield from _array_leaves(value)


def _archive_name(path) -> str:
    return json.loads((path / "manifest.json").read_text(encoding="utf-8"))["arrays"]


class TestMmapPredictions:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_bitwise_identical_to_in_memory_load(self, name, splits, exported):
        path, reference = exported[name]
        mapped = CuisineModel.load_bundle(path, mmap=True)
        np.testing.assert_array_equal(reference, mapped.predict_proba(splits.test))

    def test_state_arrays_equal_plain_load(self, exported):
        path, _ = exported["logreg"]
        _, plain = read_bundle(path)
        _, mapped = read_bundle(path, mmap=True)
        plain_leaves = list(_array_leaves(plain))
        mapped_leaves = list(_array_leaves(mapped))
        assert len(plain_leaves) == len(mapped_leaves) > 0
        for expected, actual in zip(plain_leaves, mapped_leaves):
            np.testing.assert_array_equal(expected, actual)


class TestMmapMechanics:
    def test_mapped_arrays_are_read_only_maps(self, exported):
        path, _ = exported["logreg"]
        _, state = read_bundle(path, mmap=True)
        leaves = list(_array_leaves(state))
        assert leaves
        for leaf in leaves:
            assert isinstance(leaf, np.memmap)
            assert not leaf.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                leaf[...] = 0

    def test_materialize_patterns_opt_out(self, exported):
        path, _ = exported["logreg"]
        _, state = read_bundle(path, mmap=True, materialize=("*",))
        leaves = list(_array_leaves(state))
        assert leaves
        for leaf in leaves:
            assert not isinstance(leaf, np.memmap)
            assert leaf.flags.writeable

    def test_plain_load_never_extracts(self, exported, tmp_path):
        # A fresh copy: other tests in this module already extracted the
        # shared fixture bundles.
        src, _ = exported["naive_bayes"]
        dst = tmp_path / "fresh"
        dst.mkdir()
        for item in src.iterdir():
            if item.is_file():
                shutil.copy2(item, dst / item.name)
        read_bundle(dst)
        assert not any(item.name.endswith(".extracted") for item in dst.iterdir())

    def test_extraction_sidecar_layout(self, exported):
        path, _ = exported["logreg"]
        read_bundle(path, mmap=True)
        archive_name = _archive_name(path)
        extract_dir = path / f"{archive_name.rsplit('.', 1)[0]}.extracted"
        assert extract_dir.is_dir()
        index = json.loads((extract_dir / "index.json").read_text(encoding="utf-8"))
        with np.load(path / archive_name) as archive:
            assert set(index) == set(archive.files)
        for file_name in index.values():
            assert (extract_dir / file_name).is_file()

    def test_extraction_is_idempotent(self, exported):
        """A finished extraction is reused, not rewritten — concurrent
        cold-starting workers must be able to share one sidecar."""
        path, _ = exported["logreg"]
        archive_name = _archive_name(path)
        first = extract_archive(path, archive_name)
        stamps = {
            item.name: item.stat().st_mtime_ns for item in first.iterdir()
        }
        second = extract_archive(path, archive_name)
        assert second == first
        assert {
            item.name: item.stat().st_mtime_ns for item in second.iterdir()
        } == stamps

    def test_manifest_metadata_survives_mmap_load(self, exported):
        path, _ = exported["logreg"]
        model = CuisineModel.load_bundle(path, mmap=True)
        assert model.bundle_manifest["model"] == "logreg"
        assert model.name == "logreg"
