"""Tests for the statistical (TF-IDF) cuisine models."""

import numpy as np
import pytest

from repro.data.splits import train_val_test_split
from repro.models.statistical import (
    LogisticRegressionModel,
    NaiveBayesModel,
    RandomForestModel,
    SVMModel,
)


@pytest.fixture(scope="module")
def splits(small_corpus):
    return train_val_test_split(small_corpus, seed=5)


@pytest.fixture(scope="module")
def label_space(small_corpus):
    return small_corpus.present_cuisines()


class TestStatisticalModelsTrainAndBeatChance:
    """Each TF-IDF baseline must clearly beat the 1/26 chance level."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda ls: LogisticRegressionModel(label_space=ls, max_iter=150),
            lambda ls: NaiveBayesModel(label_space=ls),
            lambda ls: SVMModel(label_space=ls, max_iter=100),
            lambda ls: RandomForestModel(
                label_space=ls, n_estimators=10, max_depth=10, boosting_rounds=5
            ),
        ],
        ids=["logreg", "naive_bayes", "svm", "random_forest"],
    )
    def test_beats_chance(self, splits, label_space, factory):
        model = factory(label_space)
        model.fit(splits.train, splits.validation)
        metrics = model.evaluate(splits.test)
        chance = 1.0 / len(label_space)
        assert metrics.accuracy > 3 * chance
        assert 0.0 <= metrics.precision <= 1.0
        assert 0.0 <= metrics.recall <= 1.0
        assert np.isfinite(metrics.loss)


class TestStatisticalModelMechanics:
    def test_predict_proba_shape_and_normalisation(self, splits, label_space):
        model = NaiveBayesModel(label_space=label_space).fit(splits.train)
        probabilities = model.predict_proba(splits.test)
        assert probabilities.shape == (len(splits.test), len(label_space))
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_predict_returns_cuisine_names(self, splits, label_space):
        model = NaiveBayesModel(label_space=label_space).fit(splits.train)
        predictions = model.predict(splits.test)
        assert len(predictions) == len(splits.test)
        assert set(predictions) <= set(label_space)

    def test_unfitted_predict_raises(self, splits, label_space):
        with pytest.raises(RuntimeError):
            LogisticRegressionModel(label_space=label_space).predict_proba(splits.test)

    def test_labels_of_uses_label_space(self, splits, label_space):
        model = NaiveBayesModel(label_space=label_space)
        labels = model.labels_of(splits.test)
        assert labels.max() < len(label_space)
        assert labels.min() >= 0

    def test_evaluate_returns_table_iv_metrics(self, splits, label_space):
        model = NaiveBayesModel(label_space=label_space).fit(splits.train)
        metrics = model.evaluate(splits.test)
        row = metrics.table_row()
        assert set(row) == {"Accuracy", "Loss", "Precision", "Recall", "F1 Score"}
        assert row["Accuracy"] == pytest.approx(metrics.accuracy * 100, abs=0.01)

    def test_describe(self, label_space):
        model = SVMModel(label_space=label_space)
        assert "SVMModel" in model.describe()

    def test_small_label_space_rejected(self):
        with pytest.raises(ValueError):
            NaiveBayesModel(label_space=("Italian",))

    def test_random_forest_without_boosting(self, splits, label_space):
        model = RandomForestModel(
            label_space=label_space, n_estimators=5, max_depth=8, use_boosting=False
        ).fit(splits.train)
        assert model.booster is None
        probabilities = model.predict_proba(splits.test)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
