"""Tests for the shared label-space expansion utility."""

import numpy as np
import pytest

from repro.models.label_space import expand_to_label_space


class TestExpandToLabelSpace:
    def test_identity_when_all_classes_present(self):
        probabilities = np.array([[0.2, 0.5, 0.3], [0.1, 0.1, 0.8]])
        expanded = expand_to_label_space(probabilities, [0, 1, 2], 3)
        assert np.allclose(expanded, probabilities)

    def test_missing_classes_get_zero_probability(self):
        probabilities = np.array([[0.25, 0.75]])
        expanded = expand_to_label_space(probabilities, [1, 3], 5)
        assert expanded.shape == (1, 5)
        assert np.allclose(expanded[0], [0.0, 0.25, 0.0, 0.75, 0.0])

    def test_rows_are_renormalised(self):
        probabilities = np.array([[0.2, 0.2]])  # sums to 0.4
        expanded = expand_to_label_space(probabilities, [0, 2], 3)
        assert expanded.sum() == pytest.approx(1.0)
        assert expanded[0, 0] == pytest.approx(0.5)

    def test_permuted_classes_scatter_correctly(self):
        probabilities = np.array([[0.7, 0.1, 0.2]])
        expanded = expand_to_label_space(probabilities, [2, 0, 1], 3)
        assert np.allclose(expanded[0], [0.1, 0.2, 0.7])

    def test_all_zero_rows_stay_zero(self):
        probabilities = np.zeros((2, 2))
        expanded = expand_to_label_space(probabilities, [0, 1], 4)
        assert np.allclose(expanded, 0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            expand_to_label_space(np.ones((2, 3)), [0, 1], 4)

    def test_out_of_range_classes_rejected(self):
        with pytest.raises(ValueError):
            expand_to_label_space(np.ones((1, 2)) / 2, [0, 5], 3)
