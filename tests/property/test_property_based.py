"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    accuracy_score,
    confusion_matrix,
    evaluate_predictions,
    log_loss,
    precision_recall_f1,
)
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor
from repro.text.cleaning import clean_item
from repro.text.lemmatizer import lemmatize
from repro.text.sequences import pad_sequences
from repro.text.tokenizer import tokenize
from repro.text.vocabulary import Vocabulary

# ---------------------------------------------------------------------------
# text invariants
# ---------------------------------------------------------------------------

tokens_strategy = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=10),
    min_size=0,
    max_size=30,
)


@given(st.text(max_size=80))
@settings(max_examples=80, deadline=None)
def test_clean_item_output_contains_only_letters_and_spaces(raw):
    cleaned = clean_item(raw)
    assert all(ch.isalpha() or ch == " " for ch in cleaned)
    assert cleaned == cleaned.strip()


@given(st.text(max_size=80))
@settings(max_examples=80, deadline=None)
def test_tokenize_is_idempotent_on_its_own_output(raw):
    tokens = tokenize(raw)
    rejoined = " ".join(tokens)
    assert tokenize(rejoined) == tokens


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=15))
@settings(max_examples=120, deadline=None)
def test_lemmatizer_is_idempotent(word):
    once = lemmatize(word)
    assert lemmatize(once) == once


@given(tokens_strategy)
@settings(max_examples=60, deadline=None)
def test_vocabulary_encode_decode_roundtrip_for_known_tokens(tokens):
    vocab = Vocabulary.build([tokens])
    ids = vocab.encode(tokens)
    assert vocab.decode(ids) == tokens


@given(
    st.lists(st.lists(st.integers(min_value=1, max_value=500), max_size=20), min_size=1, max_size=8),
    st.integers(min_value=1, max_value=24),
)
@settings(max_examples=60, deadline=None)
def test_pad_sequences_invariants(sequences, max_length):
    ids, mask = pad_sequences(sequences, max_length=max_length)
    assert ids.shape == mask.shape == (len(sequences), max_length)
    for row, sequence in enumerate(sequences):
        real = min(len(sequence), max_length)
        assert mask[row].sum() == real
        # Padding positions hold the pad value.
        assert (ids[row, real:] == 0).all()


# ---------------------------------------------------------------------------
# metric invariants
# ---------------------------------------------------------------------------

labels_and_predictions = st.integers(min_value=2, max_value=6).flatmap(
    lambda n_classes: st.tuples(
        st.just(n_classes),
        st.lists(st.integers(min_value=0, max_value=n_classes - 1), min_size=1, max_size=60),
        st.lists(st.integers(min_value=0, max_value=n_classes - 1), min_size=1, max_size=60),
    )
)


@given(labels_and_predictions)
@settings(max_examples=80, deadline=None)
def test_metric_ranges_and_confusion_total(bundle):
    n_classes, y_true, y_pred = bundle
    length = min(len(y_true), len(y_pred))
    y_true, y_pred = y_true[:length], y_pred[:length]
    accuracy = accuracy_score(y_true, y_pred)
    precision, recall, f1 = precision_recall_f1(y_true, y_pred, n_classes)
    matrix = confusion_matrix(y_true, y_pred, n_classes)
    assert 0.0 <= accuracy <= 1.0
    assert 0.0 <= precision <= 1.0 and 0.0 <= recall <= 1.0 and 0.0 <= f1 <= 1.0
    assert matrix.sum() == length
    assert np.trace(matrix) == sum(1 for a, b in zip(y_true, y_pred) if a == b)


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_evaluate_predictions_bounds(n_classes, n_samples, seed):
    rng = np.random.default_rng(seed)
    y_true = rng.integers(0, n_classes, size=n_samples)
    probabilities = rng.random((n_samples, n_classes)) + 1e-6
    probabilities /= probabilities.sum(axis=1, keepdims=True)
    metrics = evaluate_predictions(y_true, probabilities)
    assert 0.0 <= metrics.accuracy <= 1.0
    assert metrics.loss >= 0.0
    assert metrics.confusion.sum() == n_samples
    assert log_loss(y_true, probabilities) == metrics.loss


@given(
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_perfect_predictions_are_perfect(n_samples, n_classes, seed):
    rng = np.random.default_rng(seed)
    y_true = rng.integers(0, n_classes, size=n_samples)
    accuracy = accuracy_score(y_true, y_true)
    precision, recall, f1 = precision_recall_f1(y_true, y_true, n_classes)
    assert accuracy == 1.0 and precision == 1.0 and recall == 1.0 and f1 == 1.0


# ---------------------------------------------------------------------------
# autograd invariants
# ---------------------------------------------------------------------------

small_arrays = st.integers(min_value=0, max_value=10_000).map(
    lambda seed: np.random.default_rng(seed).normal(size=(3, 4))
)


@given(small_arrays)
@settings(max_examples=40, deadline=None)
def test_softmax_output_is_a_distribution(array):
    probabilities = Tensor(array).softmax(axis=-1).data
    assert np.allclose(probabilities.sum(axis=-1), 1.0)
    assert (probabilities >= 0).all()


@given(small_arrays, small_arrays)
@settings(max_examples=40, deadline=None)
def test_addition_gradient_is_ones(array_a, array_b):
    a = Parameter(array_a)
    b = Parameter(array_b)
    (a + b).sum().backward()
    assert np.allclose(a.grad, 1.0)
    assert np.allclose(b.grad, 1.0)


@given(small_arrays)
@settings(max_examples=40, deadline=None)
def test_sum_of_parts_equals_whole_gradient(array):
    """Linearity: d/dx sum(x*c) = c regardless of how the graph is built."""
    scale = 3.0
    direct = Parameter(array.copy())
    (direct * scale).sum().backward()
    split = Parameter(array.copy())
    left = (split * scale)[:, :2].sum()
    right = (split * scale)[:, 2:].sum()
    (left + right).backward()
    assert np.allclose(direct.grad, split.grad)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_layernorm_output_statistics(seed):
    from repro.nn.layers import LayerNorm

    rng = np.random.default_rng(seed)
    x = rng.normal(loc=rng.uniform(-5, 5), scale=rng.uniform(0.5, 3), size=(4, 16))
    out = LayerNorm(16)(Tensor(x)).data
    assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
    assert np.allclose(out.var(axis=-1), 1.0, atol=1e-2)


# ---------------------------------------------------------------------------
# sharded corpus engine invariants
# ---------------------------------------------------------------------------


def _random_corpus(rng, n_recipes: int):
    """A seeded-random corpus with messy multi-word, digit-laden items."""
    from repro.data.recipedb import RecipeDB
    from repro.data.schema import Recipe

    vocabulary = [
        "red lentil", "olive oil", "2 onions", "salt", "STIR", "don't overmix",
        "chop", "pan-fry", "tomatoes (diced)", "water", "simmering", "123",
        "garlic", "rice", "soy sauce", "whisked eggs", "heat", "serve!",
    ]
    cuisines = [("Italian", "European"), ("Mexican", "Latin American"), ("Thai", "Asian")]
    recipes = []
    for recipe_id in range(n_recipes):
        cuisine, continent = cuisines[rng.integers(len(cuisines))]
        length = int(rng.integers(1, 9))
        sequence = tuple(vocabulary[rng.integers(len(vocabulary))] for _ in range(length))
        recipes.append(
            Recipe(
                recipe_id=recipe_id,
                cuisine=cuisine,
                continent=continent,
                sequence=sequence,
            )
        )
    return RecipeDB(recipes=recipes)


def test_parallel_engine_is_equivalent_to_sequential_for_all_configs():
    """CorpusEngine(n_workers=4) output — token sequences, documents and
    artifact digests — is identical to the sequential path for seeded-random
    corpora under every ``PipelineConfig`` combination."""
    import itertools

    from repro.pipeline.engine import CorpusEngine
    from repro.pipeline.fingerprint import stable_hash
    from repro.pipeline.store import FeatureStore
    from repro.text.pipeline import PipelineConfig

    configs = [
        PipelineConfig(
            lowercase=lowercase,
            remove_digits_symbols=remove,
            lemmatize=lemmatize,
            split_items=split,
        )
        for lowercase, remove, lemmatize, split in itertools.product(
            (True, False), repeat=4
        )
    ]
    rng = np.random.default_rng(20260726)
    parallel_store = FeatureStore()
    with CorpusEngine(parallel_store, shard_size=8, n_workers=4) as engine:
        for trial, config in enumerate(configs):
            corpus = _random_corpus(rng, n_recipes=int(rng.integers(20, 50)))
            sequential_store = FeatureStore()
            expected_tokens = sequential_store.tokens(corpus, config)
            expected_documents = sequential_store.documents(corpus, config)

            tokens = engine.tokens(corpus, config)
            documents = engine.documents(corpus, config)
            assert tokens == expected_tokens, (trial, config)
            assert documents == expected_documents, (trial, config)
            assert stable_hash(tokens) == stable_hash(expected_tokens)
            assert stable_hash(documents) == stable_hash(expected_documents)
