"""Shared fixtures for the test suite.

The corpora are generated once per session at a small scale so that the whole
suite (several hundred tests, including neural-network training) stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generator import GeneratorConfig, RecipeDBGenerator
from repro.data.recipedb import RecipeDB
from repro.data.schema import Recipe, TokenKind
from repro.data.splits import train_val_test_split


@pytest.fixture(scope="session")
def tiny_corpus() -> RecipeDB:
    """A very small corpus (26 cuisines, a handful of recipes each)."""
    config = GeneratorConfig(scale=0.004, seed=11)
    return RecipeDBGenerator(config).generate()


@pytest.fixture(scope="session")
def small_corpus() -> RecipeDB:
    """A small corpus large enough for meaningful classification tests."""
    config = GeneratorConfig(scale=0.01, seed=3)
    return RecipeDBGenerator(config).generate()


@pytest.fixture(scope="session")
def small_splits(small_corpus):
    """7:1:2 splits of the small corpus."""
    return train_val_test_split(small_corpus, seed=5)


@pytest.fixture(scope="session")
def handmade_corpus() -> RecipeDB:
    """A tiny, fully hand-written corpus with known content for exact assertions."""
    recipes = [
        Recipe(
            recipe_id=1,
            cuisine="Italian",
            continent="European",
            sequence=("pasta", "tomato", "basil", "boil", "add", "stir", "pot"),
            kinds=(
                TokenKind.INGREDIENT,
                TokenKind.INGREDIENT,
                TokenKind.INGREDIENT,
                TokenKind.PROCESS,
                TokenKind.PROCESS,
                TokenKind.PROCESS,
                TokenKind.UTENSIL,
            ),
        ),
        Recipe(
            recipe_id=2,
            cuisine="Italian",
            continent="European",
            sequence=("pasta", "olive oil", "garlic", "heat", "add", "serve", "pan"),
            kinds=(
                TokenKind.INGREDIENT,
                TokenKind.INGREDIENT,
                TokenKind.INGREDIENT,
                TokenKind.PROCESS,
                TokenKind.PROCESS,
                TokenKind.PROCESS,
                TokenKind.UTENSIL,
            ),
        ),
        Recipe(
            recipe_id=3,
            cuisine="Mexican",
            continent="Latin American",
            sequence=("tortilla", "beef", "chili", "fry", "add", "serve", "skillet"),
            kinds=(
                TokenKind.INGREDIENT,
                TokenKind.INGREDIENT,
                TokenKind.INGREDIENT,
                TokenKind.PROCESS,
                TokenKind.PROCESS,
                TokenKind.PROCESS,
                TokenKind.UTENSIL,
            ),
        ),
        Recipe(
            recipe_id=4,
            cuisine="Mexican",
            continent="Latin American",
            sequence=("tortilla", "chunky salsa", "corn", "heat", "stir", "serve", "pan"),
            kinds=(
                TokenKind.INGREDIENT,
                TokenKind.INGREDIENT,
                TokenKind.INGREDIENT,
                TokenKind.PROCESS,
                TokenKind.PROCESS,
                TokenKind.PROCESS,
                TokenKind.UTENSIL,
            ),
        ),
        Recipe(
            recipe_id=5,
            cuisine="Japanese",
            continent="Asian",
            sequence=("rice", "nori", "soy sauce", "steam", "roll", "slice", "bowl"),
            kinds=(
                TokenKind.INGREDIENT,
                TokenKind.INGREDIENT,
                TokenKind.INGREDIENT,
                TokenKind.PROCESS,
                TokenKind.PROCESS,
                TokenKind.PROCESS,
                TokenKind.UTENSIL,
            ),
        ),
    ]
    return RecipeDB(recipes=recipes)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A deterministic NumPy random generator."""
    return np.random.default_rng(1234)
