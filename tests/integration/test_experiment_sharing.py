"""Integration tests for artifact sharing across a multi-model experiment.

The acceptance property of the feature-store refactor: a full
statistical-suite experiment runs the preprocessing pipeline at most once per
(corpus, pipeline configuration) pair, every model consumes the shared
artifacts, and the parallel runner produces the same metrics as the
sequential one.
"""

import numpy as np
import pytest

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.models.lstm_classifier import LSTMClassifierConfig


STATISTICAL_SUITE = ("logreg", "naive_bayes", "svm_linear", "random_forest")
FAST_LSTM = LSTMClassifierConfig(
    embedding_dim=24, hidden_dim=32, max_length=32, epochs=2, batch_size=32,
    learning_rate=5e-3, early_stopping_patience=None, seed=0,
)


class TestPreprocessingRunsOnce:
    def test_statistical_suite_preprocesses_each_corpus_once(self, small_corpus):
        config = ExperimentConfig(models=STATISTICAL_SUITE, seed=2)
        runner = ExperimentRunner(config, corpus=small_corpus)
        runner.run()

        # All four statistical models share one pipeline configuration, so
        # exactly one tokens artifact exists per split: train, val, test.
        assert runner.store.miss_count("tokens") == 3
        assert runner.store.miss_count("documents") == 3
        # Three models share the 20k-feature vectorizer; random_forest uses
        # its own 2k-feature configuration.
        assert runner.store.miss_count("tfidf_vectorizer") == 2
        # With four models over three splits, everything past the first
        # model's artifact resolution is cache hits.
        assert runner.store.hit_count() > 0

    def test_mixed_suite_adds_one_sequential_pass(self, small_corpus):
        config = ExperimentConfig(
            models=("naive_bayes", "logreg", "lstm"), seed=3, lstm_config=FAST_LSTM
        )
        runner = ExperimentRunner(config, corpus=small_corpus)
        runner.run()

        # One statistical pipeline pass + one sequential pipeline pass per split.
        assert runner.store.miss_count("tokens") == 6
        assert runner.store.miss_count("vocabulary") == 1

    def test_rerun_on_same_runner_is_all_hits(self, small_corpus):
        config = ExperimentConfig(models=("naive_bayes",), seed=2)
        runner = ExperimentRunner(config, corpus=small_corpus)
        runner.run()
        misses_after_first = runner.store.miss_count()
        runner.run()
        assert runner.store.miss_count() == misses_after_first


class TestParallelRunner:
    def test_parallel_statistical_suite_matches_sequential(self, small_corpus):
        sequential = ExperimentRunner(
            ExperimentConfig(models=STATISTICAL_SUITE, seed=2), corpus=small_corpus
        ).run()
        parallel = ExperimentRunner(
            ExperimentConfig(models=STATISTICAL_SUITE, seed=2, n_jobs=4),
            corpus=small_corpus,
        ).run()

        assert set(parallel.model_results) == set(sequential.model_results)
        for name, sequential_result in sequential.model_results.items():
            assert parallel.model_results[name].metrics.accuracy == pytest.approx(
                sequential_result.metrics.accuracy
            )
            assert parallel.model_results[name].metrics.loss == pytest.approx(
                sequential_result.metrics.loss
            )

    def test_parallel_mixed_suite_with_neural_model(self, small_corpus):
        config = ExperimentConfig(
            models=("naive_bayes", "lstm"), seed=3, n_jobs=2, lstm_config=FAST_LSTM
        )
        result = ExperimentRunner(config, corpus=small_corpus).run()
        assert set(result.model_results) == {"naive_bayes", "lstm"}
        for model_result in result.model_results.values():
            assert np.isfinite(model_result.metrics.loss)
            assert model_result.metrics.accuracy > 1.0 / 26

    def test_invalid_n_jobs_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(models=("naive_bayes",), n_jobs=0)


class TestDiskBackedRunner:
    def test_cache_dir_shares_preprocessing_across_runners(self, small_corpus, tmp_path):
        first = ExperimentRunner(
            ExperimentConfig(models=("naive_bayes",), seed=2, cache_dir=str(tmp_path)),
            corpus=small_corpus,
        )
        first.run()
        assert first.store.miss_count("tokens") == 3

        second = ExperimentRunner(
            ExperimentConfig(models=("naive_bayes",), seed=2, cache_dir=str(tmp_path)),
            corpus=small_corpus,
        )
        result = second.run()
        assert second.store.miss_count("tokens") == 0
        assert second.store.disk_hits["tokens"] == 3
        assert result.model_results["naive_bayes"].metrics.accuracy > 1.0 / 26
