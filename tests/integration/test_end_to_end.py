"""Integration tests exercising the full pipeline across modules."""

import numpy as np
import pytest

from repro.core.classifier import CuisineClassifier
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.data.generator import generate_recipedb
from repro.data.splits import train_val_test_split
from repro.data.storage import load_recipes_jsonl, save_recipes_jsonl
from repro.evaluation.figures import loss_curves, normalized_accuracy
from repro.evaluation.tables import table_i, table_ii, table_iii, table_iv
from repro.models.lstm_classifier import LSTMClassifierConfig
from repro.models.transformer_classifier import TransformerClassifierConfig


FAST_LSTM = LSTMClassifierConfig(
    embedding_dim=24, hidden_dim=32, max_length=32, epochs=2, batch_size=32,
    learning_rate=5e-3, early_stopping_patience=None, seed=0,
)
FAST_TRANSFORMER = TransformerClassifierConfig(
    dim=32, num_heads=4, num_layers=1, ffn_dim=64, max_length=32, epochs=2,
    pretrain_epochs=1, batch_size=32, learning_rate=3e-3,
    early_stopping_patience=None, seed=0,
)


class TestGenerateToEvaluate:
    def test_corpus_roundtrips_through_disk_and_trains(self, tmp_path, tiny_corpus):
        path = tmp_path / "corpus.jsonl"
        save_recipes_jsonl(tiny_corpus, path)
        corpus = load_recipes_jsonl(path)
        splits = train_val_test_split(corpus, seed=1)
        classifier = CuisineClassifier("naive_bayes", label_space=corpus.present_cuisines())
        classifier.fit(splits.train, validation=splits.validation)
        metrics = classifier.evaluate(splits.test)
        assert metrics.accuracy > 1.0 / 26

    def test_mixed_model_experiment_and_reports(self, small_corpus):
        config = ExperimentConfig(
            models=("naive_bayes", "logreg", "lstm"),
            seed=3,
            lstm_config=FAST_LSTM,
        )
        result = ExperimentRunner(config, corpus=small_corpus).run()
        assert set(result.model_results) == {"naive_bayes", "logreg", "lstm"}

        # Tables and figures can be generated from the same objects.
        rows_iv = table_iv(result)
        assert len(rows_iv) == 3
        series = normalized_accuracy(result)
        assert max(series["measured"].values()) == pytest.approx(1.0)
        curves = loss_curves(result, split="val")
        assert "LSTM" in curves and len(curves["LSTM"]) >= 1

        rows_i = table_i(small_corpus)
        rows_ii = table_ii(small_corpus)
        rows_iii = table_iii(small_corpus)
        assert rows_i and len(rows_ii) == 26 and len(rows_iii) == 20

    def test_transformer_end_to_end_classification(self, tiny_corpus):
        classifier = CuisineClassifier(
            "bert",
            label_space=tiny_corpus.present_cuisines(),
            transformer_config=FAST_TRANSFORMER,
        )
        classifier.fit(tiny_corpus, seed=2)
        metrics = classifier.evaluate_holdout()
        assert np.isfinite(metrics.loss)
        prediction = classifier.classify(["onion", "garlic", "stir", "add", "cook", "pot"])
        assert prediction in tiny_corpus.present_cuisines()
        top = classifier.top_cuisines(["pasta", "tomato", "boil", "add"], k=3)
        assert len(top) == 3

    def test_generation_is_reproducible_across_runs(self):
        a = generate_recipedb(scale=0.004, seed=99)
        b = generate_recipedb(scale=0.004, seed=99)
        assert [r.to_dict() for r in a] == [r.to_dict() for r in b]


class TestAblationPaths:
    def test_sequence_shuffling_does_not_break_pipeline(self, small_corpus):
        config = ExperimentConfig(models=("naive_bayes",), shuffle_sequences=True, seed=5)
        result = ExperimentRunner(config, corpus=small_corpus).run()
        assert result.config["shuffle_sequences"] is True
        assert result.model_results["naive_bayes"].metrics.accuracy > 1.0 / 26

    def test_dropping_rare_cuisines_reduces_classes(self, small_corpus):
        config = ExperimentConfig(models=("naive_bayes",), min_cuisine_recipes=60, seed=5)
        result = ExperimentRunner(config, corpus=small_corpus).run()
        assert result.config["n_classes"] < 26
