"""Tests for the experiment harness (config, ablations, runner)."""

import numpy as np
import pytest

from repro.core.experiment import (
    ExperimentConfig,
    ExperimentRunner,
    run_table_iv_experiment,
    shuffle_recipe_sequences,
)
from repro.core.results import ExperimentResult


class TestExperimentConfig:
    def test_defaults_cover_all_models(self):
        config = ExperimentConfig()
        assert len(config.models) == 7

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(models=("logreg", "gpt"))

    def test_empty_models_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(models=())


class TestShuffleSequences:
    def test_preserves_bag_of_items(self, handmade_corpus):
        shuffled = shuffle_recipe_sequences(handmade_corpus, seed=1)
        for original, permuted in zip(handmade_corpus, shuffled):
            assert sorted(original.sequence) == sorted(permuted.sequence)
            assert original.cuisine == permuted.cuisine

    def test_changes_order_for_long_recipes(self, small_corpus):
        shuffled = shuffle_recipe_sequences(small_corpus, seed=1)
        changed = sum(
            1
            for original, permuted in zip(small_corpus, shuffled)
            if original.sequence != permuted.sequence
        )
        assert changed > len(small_corpus) * 0.9

    def test_kinds_follow_items(self, handmade_corpus):
        shuffled = shuffle_recipe_sequences(handmade_corpus, seed=3)
        for original, permuted in zip(handmade_corpus, shuffled):
            original_pairs = set(zip(original.sequence, original.kinds))
            permuted_pairs = set(zip(permuted.sequence, permuted.kinds))
            assert original_pairs == permuted_pairs


class TestExperimentRunner:
    def test_prepare_corpus_generates_at_scale(self):
        runner = ExperimentRunner(ExperimentConfig(models=("logreg",), scale=0.004, seed=1))
        corpus = runner.prepare_corpus()
        assert len(corpus) > 100

    def test_prepare_corpus_accepts_existing_corpus(self, small_corpus):
        runner = ExperimentRunner(ExperimentConfig(models=("logreg",)), corpus=small_corpus)
        assert runner.prepare_corpus() is small_corpus

    def test_min_cuisine_recipes_ablation_drops_classes(self, small_corpus):
        config = ExperimentConfig(models=("logreg",), min_cuisine_recipes=50)
        runner = ExperimentRunner(config, corpus=small_corpus)
        corpus = runner.prepare_corpus()
        assert len(corpus.present_cuisines()) < 26
        assert min(corpus.cuisine_counts().values()) >= 50

    def test_shuffle_ablation_applied(self, small_corpus):
        config = ExperimentConfig(models=("logreg",), shuffle_sequences=True, seed=4)
        runner = ExperimentRunner(config, corpus=small_corpus)
        corpus = runner.prepare_corpus()
        assert [r.sequence for r in corpus] != [r.sequence for r in small_corpus]

    def test_run_single_statistical_model(self, small_corpus):
        config = ExperimentConfig(models=("naive_bayes",), seed=2)
        result = ExperimentRunner(config, corpus=small_corpus).run()
        assert isinstance(result, ExperimentResult)
        assert set(result.model_results) == {"naive_bayes"}
        model_result = result.model_results["naive_bayes"]
        assert model_result.metrics.accuracy > 0.1
        assert model_result.train_seconds > 0
        assert result.split_sizes["train"] > result.split_sizes["test"]

    def test_run_records_validation_metrics(self, small_corpus):
        config = ExperimentConfig(models=("naive_bayes",), seed=2)
        result = ExperimentRunner(config, corpus=small_corpus).run()
        assert result.model_results["naive_bayes"].validation_metrics is not None

    def test_convenience_wrapper(self, small_corpus):
        result = run_table_iv_experiment(models=("naive_bayes",), corpus=small_corpus, seed=1)
        assert "naive_bayes" in result.model_results

    def test_accuracy_ranking_and_best_model(self, small_corpus):
        config = ExperimentConfig(models=("naive_bayes", "logreg"), seed=2)
        result = ExperimentRunner(config, corpus=small_corpus).run()
        ranking = result.accuracy_ranking()
        assert len(ranking) == 2
        assert ranking[0][1] >= ranking[1][1]
        assert result.best_model() == ranking[0][0]

    def test_result_json_roundtrip(self, small_corpus, tmp_path):
        config = ExperimentConfig(models=("naive_bayes",), seed=2)
        result = ExperimentRunner(config, corpus=small_corpus).run()
        path = result.save_json(tmp_path / "result.json")
        loaded = ExperimentResult.load_json(path)
        assert loaded["config"]["models"] == ["naive_bayes"]
        assert "naive_bayes" in loaded["models"]
        assert loaded["models"]["naive_bayes"]["metrics"]["accuracy"] == pytest.approx(
            result.model_results["naive_bayes"].metrics.accuracy
        )

    def test_best_model_on_empty_result_raises(self):
        result = ExperimentResult(config={}, split_sizes={})
        with pytest.raises(ValueError):
            result.best_model()
