"""Tests for the high-level CuisineClassifier API."""

import numpy as np
import pytest

from repro.core.classifier import CuisineClassifier


@pytest.fixture(scope="module")
def fitted_classifier(small_corpus):
    classifier = CuisineClassifier("naive_bayes", label_space=small_corpus.present_cuisines())
    return classifier.fit(small_corpus, seed=3)


class TestConstruction:
    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            CuisineClassifier("word2vec")

    def test_default_model_is_roberta(self):
        assert CuisineClassifier().model_name == "roberta"


class TestFitAndClassify:
    def test_fit_creates_holdout_splits(self, fitted_classifier, small_corpus):
        assert fitted_classifier.splits is not None
        assert sum(fitted_classifier.splits.sizes) == len(small_corpus)

    def test_evaluate_holdout(self, fitted_classifier):
        metrics = fitted_classifier.evaluate_holdout()
        assert metrics.accuracy > 0.1
        assert np.isfinite(metrics.loss)

    def test_classify_single_sequence(self, fitted_classifier):
        cuisine = fitted_classifier.classify(
            ["basmati rice", "turmeric", "cumin", "simmer", "add", "pot"]
        )
        assert cuisine in fitted_classifier.label_space

    def test_classify_many(self, fitted_classifier):
        predictions = fitted_classifier.classify_many(
            [["pasta", "tomato", "boil", "pan"], ["tortilla", "beef", "fry", "skillet"]]
        )
        assert len(predictions) == 2
        assert all(p in fitted_classifier.label_space for p in predictions)

    def test_predict_proba_normalised(self, fitted_classifier):
        probabilities = fitted_classifier.predict_proba([["onion", "stir", "add"]])
        assert probabilities.shape == (1, len(fitted_classifier.label_space))
        assert probabilities.sum() == pytest.approx(1.0)

    def test_top_cuisines_sorted(self, fitted_classifier):
        top = fitted_classifier.top_cuisines(["onion", "garlic", "stir", "add", "wok"], k=4)
        assert len(top) == 4
        probabilities = [probability for _, probability in top]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_empty_input_rejected(self, fitted_classifier):
        with pytest.raises(ValueError):
            fitted_classifier.classify_many([])

    def test_unfitted_usage_raises(self):
        classifier = CuisineClassifier("naive_bayes")
        with pytest.raises(RuntimeError):
            classifier.classify(["onion"])
        with pytest.raises(RuntimeError):
            classifier.evaluate_holdout()

    def test_fit_without_holdout(self, small_corpus):
        classifier = CuisineClassifier("naive_bayes", label_space=small_corpus.present_cuisines())
        classifier.fit(small_corpus, holdout=False)
        assert classifier.splits is None
        with pytest.raises(RuntimeError):
            classifier.evaluate_holdout()

    def test_fit_with_explicit_validation(self, small_splits):
        classifier = CuisineClassifier(
            "naive_bayes", label_space=small_splits.train.present_cuisines()
        )
        classifier.fit(small_splits.train, validation=small_splits.validation)
        metrics = classifier.evaluate(small_splits.test)
        assert metrics.accuracy > 0.1

    def test_evaluate_on_external_corpus(self, fitted_classifier, small_splits):
        metrics = fitted_classifier.evaluate(small_splits.test)
        assert 0.0 <= metrics.accuracy <= 1.0
