"""Tests for the Table IV metric set."""

import numpy as np
import pytest

from repro.core.metrics import (
    ClassificationMetrics,
    accuracy_score,
    confusion_matrix,
    evaluate_predictions,
    log_loss,
    precision_recall_f1,
)


class TestAccuracy:
    def test_perfect_and_zero(self):
        assert accuracy_score([0, 1, 2], [0, 1, 2]) == 1.0
        assert accuracy_score([0, 1, 2], [1, 2, 0]) == 0.0

    def test_partial(self):
        assert accuracy_score([0, 0, 1, 1], [0, 1, 1, 1]) == pytest.approx(0.75)

    def test_length_mismatch_and_empty(self):
        with pytest.raises(ValueError):
            accuracy_score([0, 1], [0])
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestConfusionMatrix:
    def test_layout_true_rows_pred_columns(self):
        matrix = confusion_matrix([0, 0, 1, 2], [0, 1, 1, 2], n_classes=3)
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1
        assert matrix[1, 1] == 1 and matrix[2, 2] == 1
        assert matrix.sum() == 4

    def test_rows_sum_to_class_support(self):
        y_true = [0, 0, 0, 1, 2, 2]
        matrix = confusion_matrix(y_true, [0, 1, 2, 1, 2, 0], n_classes=3)
        assert matrix.sum(axis=1).tolist() == [3, 1, 2]

    def test_invalid_n_classes(self):
        with pytest.raises(ValueError):
            confusion_matrix([0], [0], n_classes=0)


class TestPrecisionRecallF1:
    def test_perfect_predictions(self):
        precision, recall, f1 = precision_recall_f1([0, 1, 2], [0, 1, 2], n_classes=3)
        assert precision == recall == f1 == 1.0

    def test_macro_values_hand_computed(self):
        # class 0: TP=1 FP=1 FN=0 -> P=0.5, R=1; class 1: TP=1 FP=0 FN=1 -> P=1, R=0.5
        y_true = [0, 1, 1]
        y_pred = [0, 0, 1]
        precision, recall, f1 = precision_recall_f1(y_true, y_pred, n_classes=2)
        assert precision == pytest.approx((0.5 + 1.0) / 2)
        assert recall == pytest.approx((1.0 + 0.5) / 2)
        assert f1 == pytest.approx((2 * 0.5 / 1.5 + 2 * 0.5 / 1.5) / 2)

    def test_absent_class_excluded_from_macro(self):
        precision, recall, f1 = precision_recall_f1([0, 0], [0, 0], n_classes=3)
        assert precision == recall == f1 == 1.0

    def test_weighted_average_respects_support(self):
        y_true = [0] * 9 + [1]
        y_pred = [0] * 9 + [0]
        _, recall_macro, _ = precision_recall_f1(y_true, y_pred, n_classes=2, average="macro")
        _, recall_weighted, _ = precision_recall_f1(y_true, y_pred, n_classes=2, average="weighted")
        assert recall_macro == pytest.approx(0.5)
        assert recall_weighted == pytest.approx(0.9)

    def test_invalid_average(self):
        with pytest.raises(ValueError):
            precision_recall_f1([0], [0], n_classes=2, average="micro-ish")


class TestLogLoss:
    def test_perfect_probabilities_near_zero(self):
        probabilities = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert log_loss([0, 1], probabilities) < 1e-10

    def test_uniform_probabilities_log_n(self):
        probabilities = np.full((3, 4), 0.25)
        assert log_loss([0, 1, 2], probabilities) == pytest.approx(np.log(4))

    def test_clipping_avoids_infinity(self):
        probabilities = np.array([[0.0, 1.0]])
        assert np.isfinite(log_loss([0], probabilities))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            log_loss([0], np.array([1.0, 0.0]))


class TestEvaluatePredictions:
    def test_full_metric_bundle(self):
        probabilities = np.array(
            [[0.8, 0.1, 0.1], [0.2, 0.7, 0.1], [0.1, 0.2, 0.7], [0.5, 0.3, 0.2]]
        )
        metrics = evaluate_predictions([0, 1, 2, 1], probabilities)
        assert isinstance(metrics, ClassificationMetrics)
        assert metrics.accuracy == pytest.approx(0.75)
        assert metrics.confusion.shape == (3, 3)
        assert 0 < metrics.loss < 2
        assert set(metrics.as_dict()) == {"accuracy", "loss", "precision", "recall", "f1"}

    def test_table_row_percentages(self):
        probabilities = np.array([[0.9, 0.1], [0.2, 0.8]])
        metrics = evaluate_predictions([0, 1], probabilities)
        row = metrics.table_row()
        assert row["Accuracy"] == 100.0
        assert row["Precision"] == 1.0

    def test_n_classes_override(self):
        probabilities = np.array([[0.9, 0.1], [0.2, 0.8]])
        metrics = evaluate_predictions([0, 1], probabilities, n_classes=2)
        assert metrics.confusion.shape == (2, 2)
