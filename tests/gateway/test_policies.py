"""Traffic-policy tests: determinism, distribution and decision shapes."""

import pytest

from repro.gateway.policies import (
    ABSplit,
    ActiveVersion,
    Canary,
    Ensemble,
    RouteView,
    Shadow,
    derive_request_key,
    request_bucket,
)

VIEW = RouteView(name="cuisine", active="v1", versions=("v1", "v2"))


class TestBuckets:
    def test_bucket_range_and_determinism(self):
        for i in range(200):
            bucket = request_bucket(f"user-{i}")
            assert 0.0 <= bucket < 1.0
            assert bucket == request_bucket(f"user-{i}")

    def test_cross_process_stability(self):
        """Bucket values are pure BLAKE2b — frozen here so any change to the
        hashing scheme (or an accidental use of per-process ``hash()``)
        fails loudly.  These constants must hold in every process, forever."""
        assert request_bucket("user-0") == pytest.approx(0.33807104335792254, abs=0.0)
        assert request_bucket("user-1") == pytest.approx(0.9615151379785262, abs=0.0)
        assert request_bucket("alpha", "salt-a") == pytest.approx(
            0.10698222635243683, abs=0.0
        )

    def test_salt_changes_assignment(self):
        buckets = [request_bucket("user-7", salt) for salt in ("", "a", "b")]
        assert len(set(buckets)) == 3

    def test_derived_key_is_content_stable(self):
        assert derive_request_key(("a", "b")) == derive_request_key(("a", "b"))
        assert derive_request_key(("a", "b")) != derive_request_key(("ab",))
        assert derive_request_key(("a", "b")) != derive_request_key(("b", "a"))


class TestABSplit:
    def test_same_key_same_variant(self):
        split = ABSplit(variants={"v1": 0.5, "v2": 0.5})
        for i in range(100):
            key = f"user-{i}"
            first = split.decide(key, VIEW).primary
            assert all(split.decide(key, VIEW).primary == first for _ in range(3))

    def test_frozen_assignment(self):
        """The concrete key -> variant mapping is part of the contract."""
        split = ABSplit(variants={"v1": 0.5, "v2": 0.5})
        picks = [split.decide(f"user-{i}", VIEW).primary for i in range(10)]
        assert picks == ["v1", "v2", "v2", "v2", "v2", "v1", "v1", "v2", "v1", "v1"]

    def test_weights_respected_over_10k_keys(self):
        split = ABSplit(variants={"v1": 0.8, "v2": 0.2})
        picks = [split.decide(f"synthetic-{i}", VIEW).primary for i in range(10_000)]
        fraction = picks.count("v2") / len(picks)
        assert fraction == pytest.approx(0.2, abs=0.02)

    def test_weight_validation(self):
        with pytest.raises(ValueError, match="positive"):
            ABSplit(variants={"v1": 0.0})
        with pytest.raises(ValueError, match="at least one"):
            ABSplit(variants={})


class TestCanary:
    def test_fraction_observed_over_10k_keys(self):
        canary = Canary(candidate="v2", fraction=0.1)
        picks = [canary.decide(f"synthetic-{i}", VIEW).primary for i in range(10_000)]
        assert picks.count("v2") / len(picks) == pytest.approx(0.1, abs=0.015)

    def test_stable_defaults_to_active(self):
        canary = Canary(candidate="v2", fraction=0.0)
        assert canary.decide("any", VIEW).primary == "v1"
        swapped = RouteView(name="cuisine", active="v3", versions=("v1", "v2", "v3"))
        assert canary.decide("any", swapped).primary == "v3"

    def test_full_fraction_always_candidate(self):
        canary = Canary(candidate="v2", fraction=1.0)
        assert all(
            canary.decide(f"user-{i}", VIEW).primary == "v2" for i in range(50)
        )

    def test_fraction_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            Canary(candidate="v2", fraction=1.5)


class TestShadowAndDefault:
    def test_active_version_follows_view(self):
        assert ActiveVersion().decide("k", VIEW).primary == "v1"

    def test_shadow_mirrors_off_primary(self):
        decision = Shadow(candidate="v2").decide("k", VIEW)
        assert decision.primary == "v1"
        assert decision.shadows == ("v2",)

    def test_shadow_with_explicit_primary(self):
        decision = Shadow(candidate="v2", primary="v9").decide("k", VIEW)
        assert decision.primary == "v9"


class TestEnsemblePolicy:
    def test_members_sorted_and_deduped(self):
        policy = Ensemble(members=("v2", "v1", "v2"))
        assert policy.members == ("v1", "v2")
        assert policy.decide("k", VIEW).ensemble == ("v1", "v2")

    def test_weighted_requires_complete_weights(self):
        with pytest.raises(ValueError, match="requires weights"):
            Ensemble(members=("v1", "v2"), method="weighted")
        with pytest.raises(ValueError, match="missing"):
            Ensemble(members=("v1", "v2"), method="weighted", weights={"v1": 1.0})
        policy = Ensemble(
            members=("v2", "v1"), method="weighted", weights={"v1": 1.0, "v2": 3.0}
        )
        assert policy.member_weights() == (1.0, 3.0)  # aligned with sorted members

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown ensemble method"):
            Ensemble(members=("v1", "v2"), method="median")

    def test_single_member_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            Ensemble(members=("v1",))
