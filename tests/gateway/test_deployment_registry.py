"""Tests for the deployment registry: deploy, swap, rollback, retire."""

import pytest

from repro.gateway import DeploymentRegistry, Shadow
from repro.gateway.registry import service_model_name


@pytest.fixture()
def registry(logreg_bundle, nb_bundle):
    registry = DeploymentRegistry()
    registry.deploy("cuisine", "v1", logreg_bundle)
    registry.deploy("cuisine", "v2", nb_bundle, activate=False)
    yield registry
    registry.service.close()


class TestDeploy:
    def test_first_deployment_activates(self, registry):
        assert registry.active_version("cuisine") == "v1"
        assert registry.versions("cuisine") == ("v1", "v2")
        assert registry.routes() == ("cuisine",)

    def test_models_registered_under_versioned_names(self, registry):
        assert set(registry.service.model_names()) == {"cuisine@v1", "cuisine@v2"}
        assert service_model_name("cuisine", "v1") == "cuisine@v1"

    def test_duplicate_version_rejected(self, registry, logreg_bundle):
        with pytest.raises(ValueError, match="already deployed"):
            registry.deploy("cuisine", "v1", logreg_bundle)
        registry.deploy("cuisine", "v1", logreg_bundle, replace=True)  # explicit ok

    def test_deploy_from_path(self, gateway_export_dir):
        registry = DeploymentRegistry()
        deployment = registry.deploy("r", "v1", gateway_export_dir / "logreg")
        assert deployment.source == gateway_export_dir / "logreg"
        assert deployment.model.name == "logreg"
        registry.service.close()

    def test_deploy_export_dir_one_route_per_bundle(self, gateway_export_dir):
        registry = DeploymentRegistry()
        deployments = registry.deploy_export_dir(gateway_export_dir, "v1")
        assert set(deployments) == {"logreg", "naive_bayes"}
        assert registry.active_version("logreg") == "v1"
        registry.service.close()

    def test_invalid_names_rejected(self, registry, logreg_bundle):
        with pytest.raises(ValueError, match="route"):
            registry.deploy("bad@route", "v1", logreg_bundle)
        with pytest.raises(ValueError, match="version"):
            registry.deploy("ok", "", logreg_bundle)

    def test_unknown_route_is_keyerror(self, registry):
        with pytest.raises(KeyError, match="no route"):
            registry.resolve("nowhere")

    def test_dark_first_deployment_has_clear_error(self, logreg_bundle):
        registry = DeploymentRegistry()
        registry.deploy("dark", "v1", logreg_bundle, activate=False)
        with pytest.raises(RuntimeError, match="no active version"):
            registry.resolve("dark")
        # Swapping a version in activates the route without polluting the
        # rollback history with the empty placeholder.
        registry.swap("dark", "v1")
        assert registry.resolve("dark").version == "v1"
        with pytest.raises(RuntimeError, match="no swap history"):
            registry.rollback("dark")
        registry.service.close()


class TestSwapRollback:
    def test_swap_moves_active(self, registry):
        registry.swap("cuisine", "v2")
        assert registry.active_version("cuisine") == "v2"
        assert registry.resolve("cuisine").version == "v2"

    def test_swap_to_unknown_version_rejected(self, registry):
        with pytest.raises(KeyError, match="unknown version"):
            registry.swap("cuisine", "v9")

    def test_rollback_walks_history(self, registry, logreg_bundle):
        registry.deploy("cuisine", "v3", logreg_bundle, activate=False)
        registry.swap("cuisine", "v2")
        registry.swap("cuisine", "v3")
        assert registry.rollback("cuisine").version == "v2"
        assert registry.rollback("cuisine").version == "v1"
        with pytest.raises(RuntimeError, match="no swap history"):
            registry.rollback("cuisine")

    def test_resolution_pins_despite_swap(self, registry):
        pinned = registry.resolve("cuisine")
        registry.swap("cuisine", "v2")
        assert pinned.version == "v1"
        assert pinned.model is registry.resolve("cuisine", "v1").model

    def test_snapshot_pins_across_swap_and_retire(self, registry):
        """A request's RouteSnapshot keeps resolving the versions it was
        taken with, even after the old active is swapped away and retired —
        the decide-then-resolve window can never strand a request."""
        snapshot = registry.route_snapshot("cuisine")
        registry.swap("cuisine", "v2")
        registry.retire("cuisine", "v1")
        pinned = snapshot.deployment()  # v1 was active when the snapshot was taken
        assert pinned.version == "v1"
        assert snapshot.view.active == "v1"
        # The registry itself has moved on.
        assert registry.active_version("cuisine") == "v2"
        assert registry.versions("cuisine") == ("v2",)


class TestRetire:
    def test_retire_removes_version_and_service_model(self, registry):
        registry.retire("cuisine", "v2")
        assert registry.versions("cuisine") == ("v1",)
        assert registry.service.model_names() == ("cuisine@v1",)
        with pytest.raises(KeyError, match="no version"):
            registry.resolve("cuisine", "v2")

    def test_active_version_cannot_be_retired(self, registry):
        with pytest.raises(ValueError, match="active"):
            registry.retire("cuisine", "v1")

    def test_policy_referenced_version_cannot_be_retired(self, registry):
        registry.set_policy("cuisine", Shadow(candidate="v2"))
        with pytest.raises(ValueError, match="referenced"):
            registry.retire("cuisine", "v2")
        registry.clear_policy("cuisine")
        registry.retire("cuisine", "v2")

    def test_retired_version_drops_out_of_rollback_history(self, registry):
        registry.swap("cuisine", "v2")
        registry.swap("cuisine", "v1")  # history: [v1, v2]
        registry.retire("cuisine", "v2")
        # v2 was pruned from the history; the remaining entry equals the
        # active version, so there is nothing to return to.
        with pytest.raises(RuntimeError, match="no swap history"):
            registry.rollback("cuisine")


class TestPolicyManagement:
    def test_policy_must_reference_deployed_versions(self, registry):
        with pytest.raises(KeyError, match="undeployed"):
            registry.set_policy("cuisine", Shadow(candidate="v9"))

    def test_describe_shape(self, registry):
        registry.set_policy("cuisine", Shadow(candidate="v2"))
        description = registry.describe()["cuisine"]
        assert description["active"] == "v1"
        assert description["versions"] == ["v1", "v2"]
        assert description["policy"]["kind"] == "shadow"

    def test_label_space_mismatch_rejected(self, registry, logreg_bundle):
        class Fake:
            label_space = ("NotACuisine",)

        with pytest.raises(ValueError, match="not in the route label space"):
            registry.deploy("cuisine", "v9", Fake())
