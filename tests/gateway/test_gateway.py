"""End-to-end gateway tests: routing, shadows, ensembles, observability."""

import numpy as np
import pytest

from repro.gateway import (
    ABSplit,
    Canary,
    DeploymentRegistry,
    Ensemble,
    ModelGateway,
    Shadow,
    align_to_label_space,
    combine_probabilities,
    derive_request_key,
)


@pytest.fixture()
def gateway(logreg_bundle, nb_bundle):
    """A gateway with one route and two deployed versions (v1 active)."""
    gateway = ModelGateway()
    gateway.deploy("cuisine", "v1", logreg_bundle)
    gateway.deploy("cuisine", "v2", nb_bundle, activate=False)
    with gateway:
        yield gateway


class TestBasicRouting:
    def test_predict_matches_direct_service(self, gateway, gateway_sequences):
        direct = gateway.service.predict_proba("cuisine@v1", gateway_sequences[0])
        routed = gateway.predict_proba("cuisine", gateway_sequences[0])
        np.testing.assert_array_equal(direct, routed)

    def test_predict_label_in_route_space(self, gateway, gateway_sequences):
        label = gateway.predict("cuisine", gateway_sequences[0])
        assert label in gateway.registry.label_space("cuisine")

    def test_batch_matches_singles(self, gateway, gateway_sequences):
        batch = gateway.predict_proba_batch("cuisine", gateway_sequences[:8])
        singles = np.vstack(
            [gateway.predict_proba("cuisine", s) for s in gateway_sequences[:8]]
        )
        np.testing.assert_array_equal(batch, singles)

    def test_version_override_bypasses_policy(self, gateway, gateway_sequences):
        v2 = gateway.predict_proba("cuisine", gateway_sequences[0], version="v2")
        direct = gateway.service.predict_proba("cuisine@v2", gateway_sequences[0])
        np.testing.assert_array_equal(direct, v2)

    def test_empty_batch(self, gateway):
        result = gateway.predict_proba_batch("cuisine", [])
        assert result.shape == (0, len(gateway.registry.label_space("cuisine")))

    def test_empty_sequence_rejected(self, gateway):
        with pytest.raises(ValueError, match="empty"):
            gateway.predict("cuisine", [])

    def test_mismatched_keys_rejected(self, gateway, gateway_sequences):
        with pytest.raises(ValueError, match="keys"):
            gateway.predict_proba_batch("cuisine", gateway_sequences[:3], keys=["a"])


class TestDeterministicSplit:
    def test_identical_keys_identical_variant(self, gateway, gateway_sequences):
        gateway.set_policy("cuisine", ABSplit(variants={"v1": 0.5, "v2": 0.5}))
        for key in ("user-0", "user-1", "user-2"):
            rows = [
                gateway.predict_proba("cuisine", gateway_sequences[0], key=key)
                for _ in range(3)
            ]
            np.testing.assert_array_equal(rows[0], rows[1])
            np.testing.assert_array_equal(rows[1], rows[2])

    def test_content_keyed_requests_are_stable(self, gateway, gateway_sequences):
        """With no explicit key, identical sequences always hit the same
        variant (the key derives from content, not from arrival order)."""
        gateway.set_policy("cuisine", ABSplit(variants={"v1": 0.5, "v2": 0.5}))
        sequence = gateway_sequences[0]
        rows = [gateway.predict_proba("cuisine", sequence) for _ in range(5)]
        for row in rows[1:]:
            np.testing.assert_array_equal(rows[0], row)

    def test_split_traffic_reaches_both_variants(self, gateway, gateway_sequences):
        gateway.set_policy(
            "cuisine", ABSplit(variants={"v1": 0.5, "v2": 0.5}, salt="t")
        )
        for i in range(40):
            gateway.predict_proba(
                "cuisine", gateway_sequences[i % len(gateway_sequences)], key=f"u{i}"
            )
        by_variant = gateway.registry.metrics("cuisine").snapshot()["by_variant"]
        assert by_variant["v1"] > 0 and by_variant["v2"] > 0
        assert by_variant["v1"] + by_variant["v2"] == 40

    def test_canary_fraction_over_10k_requests(self, gateway, gateway_sequences):
        """Acceptance: canary fraction observed within tolerance over 10k
        synthetic requests through the full gateway path."""
        gateway.set_policy("cuisine", Canary(candidate="v2", fraction=0.1))
        sequence = gateway_sequences[0]
        for i in range(10_000):
            gateway.predict_proba("cuisine", sequence, key=f"synthetic-{i}")
        by_variant = gateway.registry.metrics("cuisine").snapshot()["by_variant"]
        assert by_variant["v2"] / 10_000 == pytest.approx(0.1, abs=0.015)

    def test_batch_splits_per_request_key(self, gateway, gateway_sequences):
        gateway.set_policy("cuisine", ABSplit(variants={"v1": 0.5, "v2": 0.5}))
        keys = [f"user-{i}" for i in range(12)]
        batch = gateway.predict_proba_batch(
            "cuisine", [gateway_sequences[0]] * 12, keys=keys
        )
        singles = np.vstack(
            [
                gateway.predict_proba("cuisine", gateway_sequences[0], key=key)
                for key in keys
            ]
        )
        np.testing.assert_array_equal(batch, singles)


class TestShadowRouting:
    def test_shadow_does_not_change_primary_response(self, gateway, gateway_sequences):
        baseline = [
            gateway.predict_proba("cuisine", s).copy() for s in gateway_sequences[:6]
        ]
        gateway.set_policy("cuisine", Shadow(candidate="v2"))
        shadowed = [gateway.predict_proba("cuisine", s) for s in gateway_sequences[:6]]
        np.testing.assert_array_equal(np.vstack(baseline), np.vstack(shadowed))

    def test_shadow_agreement_recorded(self, gateway, gateway_sequences):
        gateway.set_policy("cuisine", Shadow(candidate="v2"))
        for sequence in gateway_sequences[:10]:
            gateway.predict_proba("cuisine", sequence)
        gateway.flush_shadows()
        shadow = gateway.registry.metrics("cuisine").snapshot()["shadow"]
        assert shadow["requests"] == 10
        assert shadow["agreements"] + shadow["disagreements"] == 10
        assert shadow["errors"] == 0

        # Agreement must match an offline comparison of the two models.
        primary = gateway.service.predict_proba_batch(
            "cuisine@v1", gateway_sequences[:10]
        )
        candidate = gateway.service.predict_proba_batch(
            "cuisine@v2", gateway_sequences[:10]
        )
        expected = int(
            np.sum(primary.argmax(axis=1) == candidate.argmax(axis=1))
        )
        assert shadow["agreements"] == expected

    def test_batch_shadowing(self, gateway, gateway_sequences):
        gateway.set_policy("cuisine", Shadow(candidate="v2"))
        gateway.predict_proba_batch("cuisine", gateway_sequences[:8])
        gateway.flush_shadows()
        shadow = gateway.registry.metrics("cuisine").snapshot()["shadow"]
        assert shadow["requests"] == 8


class TestEnsembleRouting:
    @pytest.mark.parametrize(
        "method,weights",
        [("mean", None), ("weighted", {"v1": 3.0, "v2": 1.0}), ("majority", None)],
    )
    def test_combined_output_matches_offline_reference_bitwise(
        self, gateway, gateway_sequences, method, weights
    ):
        """Acceptance: the ensemble route's combined probabilities equal an
        offline NumPy reference combination bit for bit."""
        gateway.set_policy(
            "cuisine", Ensemble(members=("v1", "v2"), method=method, weights=weights)
        )
        sequences = gateway_sequences[:6]
        combined = gateway.predict_proba_batch("cuisine", sequences)

        # Offline reference: the members' own outputs, combined with plain
        # NumPy in sorted-member order — no gateway code in the hot path.
        member_outputs = [
            gateway.service.predict_proba_batch("cuisine@v1", sequences),
            gateway.service.predict_proba_batch("cuisine@v2", sequences),
        ]
        stacked = np.stack(member_outputs)
        if method == "mean":
            reference = np.mean(stacked, axis=0)
        elif method == "weighted":
            vector = np.asarray([weights["v1"], weights["v2"]])
            reference = np.tensordot(vector, stacked, axes=1) / vector.sum()
        else:
            votes = np.zeros(stacked.shape[1:])
            winners = stacked.argmax(axis=2)
            rows = np.arange(stacked.shape[1])
            for member in range(stacked.shape[0]):
                votes[rows, winners[member]] += 1.0
            reference = votes / stacked.shape[0]

        np.testing.assert_array_equal(combined, reference)  # bitwise

    def test_single_predict_matches_batch_row(self, gateway, gateway_sequences):
        gateway.set_policy("cuisine", Ensemble(members=("v1", "v2")))
        single = gateway.predict_proba("cuisine", gateway_sequences[0])
        batch = gateway.predict_proba_batch("cuisine", [gateway_sequences[0]])
        np.testing.assert_array_equal(single, batch[0])

    def test_ensemble_variant_counter(self, gateway, gateway_sequences):
        gateway.set_policy("cuisine", Ensemble(members=("v1", "v2")))
        gateway.predict_proba("cuisine", gateway_sequences[0])
        by_variant = gateway.registry.metrics("cuisine").snapshot()["by_variant"]
        assert by_variant == {"v1+v2": 1}


class TestLabelSpaceAlignment:
    def test_subset_label_space_scatters(self):
        route_space = ("A", "B", "C")
        probabilities = np.array([[0.25, 0.75]])
        aligned = align_to_label_space(probabilities, ("A", "C"), route_space)
        np.testing.assert_allclose(aligned, [[0.25, 0.0, 0.75]])

    def test_identical_space_is_bitwise_passthrough(self):
        probabilities = np.array([[0.1, 0.2, 0.7]])
        aligned = align_to_label_space(probabilities, ("A", "B", "C"), ("A", "B", "C"))
        np.testing.assert_array_equal(aligned, probabilities)

    def test_foreign_label_rejected(self):
        with pytest.raises(ValueError, match="not in the route label space"):
            align_to_label_space(np.ones((1, 2)), ("A", "Z"), ("A", "B"))

    def test_combine_validation(self):
        with pytest.raises(ValueError, match="empty ensemble"):
            combine_probabilities([])
        with pytest.raises(ValueError, match="unknown ensemble method"):
            combine_probabilities([np.ones((1, 2))], method="vote")
        with pytest.raises(ValueError, match="weights"):
            combine_probabilities([np.ones((1, 2))], method="weighted")


class TestObservabilityAndLifecycle:
    def test_health_snapshot_shape(self, gateway, gateway_sequences):
        gateway.predict_proba("cuisine", gateway_sequences[0])
        snapshot = gateway.health_snapshot()
        assert snapshot["status"] == "ok"
        route = snapshot["routes"]["cuisine"]
        assert route["active"] == "v1"
        assert route["versions"] == ["v1", "v2"]
        assert route["requests"] == 1
        assert set(route["latency"]) >= {"count", "p50_ms", "p95_ms", "p99_ms"}
        assert snapshot["service"]["requests"] >= 1

    def test_errors_degrade_status(self, gateway):
        with pytest.raises(KeyError):
            gateway.predict_proba("cuisine", ["onion"], version="v99")
        snapshot = gateway.health_snapshot()
        assert snapshot["status"] == "degraded"
        assert snapshot["routes"]["cuisine"]["errors"] == 1

    def test_service_latency_includes_quantiles(self, gateway, gateway_sequences):
        gateway.predict_proba("cuisine", gateway_sequences[0])
        latency = gateway.service.stats()["latency"]
        assert {"p50_ms", "p95_ms", "p99_ms", "window"} <= set(latency)

    def test_close_shuts_owned_service_down(self, logreg_bundle):
        gateway = ModelGateway()
        gateway.deploy("r", "v1", logreg_bundle)
        gateway.close()
        with pytest.raises(RuntimeError, match="closed"):
            gateway.predict_proba("r", ["onion", "stir"])

    def test_close_leaves_injected_registry_service_running(
        self, logreg_bundle, gateway_sequences
    ):
        registry = DeploymentRegistry()
        registry.deploy("r", "v1", logreg_bundle)
        with ModelGateway(registry):
            pass
        # The shared service keeps serving other users of the registry.
        row = registry.service.predict_proba("r@v1", gateway_sequences[0])
        assert row is not None
        registry.service.close()

    def test_registry_and_kwargs_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            ModelGateway(DeploymentRegistry(), cache_size=0)
