"""Shared fixtures for the gateway test suite.

Two statistical models are trained once per session on the tiny corpus and
exported as bundles; most gateway tests deploy fresh gateways over that
export directory (loading a bundle is cheap, training is not).
"""

from __future__ import annotations

import pytest

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.serving import ModelBundle

GATEWAY_MODELS = ("logreg", "naive_bayes")
FAST_KWARGS = {"logreg": {"max_iter": 30}}


@pytest.fixture(scope="session")
def gateway_export_dir(tiny_corpus, tmp_path_factory):
    """Bundles of two trained models, the raw material for deployments."""
    path = tmp_path_factory.mktemp("gateway-bundles")
    config = ExperimentConfig(
        models=GATEWAY_MODELS,
        seed=3,
        statistical_kwargs=FAST_KWARGS,
        export_dir=str(path),
    )
    ExperimentRunner(config, corpus=tiny_corpus).run()
    return path


@pytest.fixture(scope="session")
def logreg_bundle(gateway_export_dir):
    return ModelBundle.load(gateway_export_dir / "logreg")


@pytest.fixture(scope="session")
def nb_bundle(gateway_export_dir):
    return ModelBundle.load(gateway_export_dir / "naive_bayes")


@pytest.fixture(scope="session")
def gateway_sequences(tiny_corpus):
    return [recipe.sequence for recipe in tiny_corpus.recipes[:30]]
