"""Tests for the shared observability primitives."""

import json
import threading

import numpy as np
import pytest

from repro.gateway.observability import (
    CounterSet,
    RollingLatency,
    RouteMetrics,
    StageTimer,
    render_metrics_text,
)


class TestCounterSet:
    def test_increment_and_snapshot(self):
        counters = CounterSet()
        counters.increment("requests")
        counters.increment("requests", 4)
        counters.increment("errors", 0)
        assert counters.value("requests") == 5
        assert counters.snapshot() == {"requests": 5}  # zero counters omitted

    def test_thread_safety(self):
        counters = CounterSet()

        def bump():
            for _ in range(1000):
                counters.increment("n")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counters.value("n") == 8000


class TestRollingLatency:
    def test_lifetime_totals(self):
        latency = RollingLatency(window=8)
        for seconds in (0.010, 0.020, 0.030):
            latency.record(seconds)
        snapshot = latency.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["total_seconds"] == pytest.approx(0.060)
        assert snapshot["mean_ms"] == pytest.approx(20.0)
        assert snapshot["max_ms"] == pytest.approx(30.0)

    def test_quantiles_over_ring(self):
        latency = RollingLatency(window=100)
        for millis in range(1, 101):  # 1ms .. 100ms
            latency.record(millis / 1000.0)
        assert latency.quantile(0.50) == pytest.approx(0.0505, rel=0.02)
        snapshot = latency.snapshot()
        assert snapshot["p50_ms"] == pytest.approx(50.5, rel=0.02)
        assert snapshot["p95_ms"] == pytest.approx(95.05, rel=0.02)
        assert snapshot["p99_ms"] == pytest.approx(99.01, rel=0.02)

    def test_window_evicts_history(self):
        latency = RollingLatency(window=4)
        latency.record(10.0)  # ancient outlier
        for _ in range(4):
            latency.record(0.001)
        # The outlier left the ring: quantiles reflect recent samples only,
        # while lifetime max still remembers it.
        assert latency.quantile(0.99) == pytest.approx(0.001)
        assert latency.snapshot()["max_ms"] == pytest.approx(10_000.0)

    def test_batched_count_attribution(self):
        latency = RollingLatency()
        latency.record(0.008, count=16)
        snapshot = latency.snapshot()
        assert snapshot["count"] == 16
        assert snapshot["total_seconds"] == pytest.approx(0.008)

    def test_empty_snapshot(self):
        snapshot = RollingLatency().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50_ms"] == 0.0
        assert snapshot["mean_ms"] == 0.0

    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            RollingLatency(window=0)


class TestStageTimer:
    def test_stages_created_lazily(self):
        timer = StageTimer()
        assert timer.snapshot() == {}
        timer.record("featurize", 0.010)
        assert list(timer.snapshot()) == ["featurize"]

    def test_per_stage_latency_accounting(self):
        timer = StageTimer()
        timer.record("featurize", 0.010, count=4)
        timer.record("predict", 0.020)
        snapshot = timer.snapshot()
        assert snapshot["featurize"]["count"] == 4
        assert snapshot["featurize"]["total_seconds"] == pytest.approx(0.010)
        assert snapshot["predict"]["mean_ms"] == pytest.approx(20.0)

    def test_snapshot_sorted_by_stage(self):
        timer = StageTimer()
        for name in ("predict", "featurize", "queue_wait"):
            timer.record(name, 0.001)
        assert list(timer.snapshot()) == ["featurize", "predict", "queue_wait"]

    def test_quantile_of_unknown_stage_is_zero(self):
        assert StageTimer().quantile("nothing", 0.99) == 0.0

    def test_renders_as_flat_metrics(self):
        timer = StageTimer()
        timer.record("featurize", 0.010)
        text = render_metrics_text({"stages": timer.snapshot()}, prefix="svc")
        assert "svc_stages_featurize_count 1" in text

    def test_thread_safety(self):
        timer = StageTimer()

        def bump():
            for _ in range(500):
                timer.record("stage", 0.001)

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert timer.snapshot()["stage"]["count"] == 4000


class TestRouteMetrics:
    def test_request_and_variant_accounting(self):
        metrics = RouteMetrics()
        metrics.record_request("v1", 0.010)
        metrics.record_request("v2", 0.020, count=3)
        metrics.record_error()
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 5
        assert snapshot["errors"] == 1
        assert snapshot["by_variant"] == {"v1": 1, "v2": 3}
        assert snapshot["latency"]["count"] == 4

    def test_batch_accounting(self):
        metrics = RouteMetrics()
        metrics.record_batch({"v1": 7, "v2": 3}, 0.050)
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 10
        assert snapshot["by_variant"] == {"v1": 7, "v2": 3}
        assert snapshot["latency"]["count"] == 10

    def test_shadow_accounting(self):
        metrics = RouteMetrics()
        metrics.record_shadow("v2", agreements=8, disagreements=2)
        metrics.record_shadow_error()
        shadow = metrics.snapshot()["shadow"]
        assert shadow["requests"] == 10
        assert shadow["agreements"] == 8
        assert shadow["disagreements"] == 2
        assert shadow["errors"] == 1
        assert shadow["agreement_rate"] == pytest.approx(0.8)

    def test_no_shadow_traffic_rate_is_none(self):
        assert RouteMetrics().snapshot()["shadow"]["agreement_rate"] is None


class TestJSONSafeSnapshots:
    """``as_dict``/``snapshot`` payloads are plain-JSON with stable key order."""

    def test_counter_as_dict_sorted_plain_ints(self):
        counters = CounterSet()
        for name in ("zeta", "alpha", "mid"):
            counters.increment(name, 2)
        counters.increment("never", 0)  # zero-valued names are omitted
        payload = counters.as_dict()
        assert list(payload) == ["alpha", "mid", "zeta"]
        assert all(type(value) is int for value in payload.values())
        assert counters.snapshot() == payload  # historical alias
        json.dumps(payload)  # JSON-safe by construction

    def test_latency_snapshot_json_safe_stable_order(self):
        latency = RollingLatency(window=8)
        latency.record(0.010)
        latency.record(0.020, count=3)
        payload = latency.snapshot()
        assert list(payload) == [
            "count", "total_seconds", "mean_ms", "max_ms", "window",
            "p50_ms", "p95_ms", "p99_ms",
        ]
        assert type(payload["count"]) is int and type(payload["window"]) is int
        assert all(
            type(payload[key]) is float
            for key in ("total_seconds", "mean_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms")
        )
        json.dumps(payload)

    def test_route_metrics_snapshot_is_json_safe(self):
        metrics = RouteMetrics()
        metrics.record_request("v1", 0.005)
        metrics.record_shadow("v2", agreements=1, disagreements=0)
        json.dumps(metrics.snapshot())


class TestRenderMetricsText:
    def test_flatten_sort_and_sanitize(self):
        text = render_metrics_text(
            {
                "routes": {"cuisine": {"requests": 3, "by_variant": {"v1@x": 3}}},
                "healthy": True,
                "status": "ok",          # non-numeric leaves are skipped
                "latency": {"p50_ms": 1.5},
                "names": ["a", "b"],     # sequences are skipped too
            }
        )
        lines = text.splitlines()
        assert lines == sorted(lines)
        parsed = dict(line.rsplit(" ", 1) for line in lines)
        assert parsed["repro_healthy"] == "1"
        assert parsed["repro_routes_cuisine_by_variant_v1_x"] == "3"
        assert parsed["repro_latency_p50_ms"] == "1.500000"
        assert not any("status" in line for line in lines)
        assert text.endswith("\n")

    def test_empty_snapshot_renders_empty(self):
        assert render_metrics_text({}) == ""
