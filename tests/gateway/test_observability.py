"""Tests for the shared observability primitives."""

import json
import os
import threading

import numpy as np
import pytest

from repro.gateway.observability import (
    CounterSet,
    RollingLatency,
    RouteMetrics,
    StageTimer,
    render_metrics_text,
)
from repro.observability import (
    merge_counter_dicts,
    merge_distribution_snapshots,
    merge_latency_snapshots,
    process_stats,
    sanitize_metric_name,
)


class TestCounterSet:
    def test_increment_and_snapshot(self):
        counters = CounterSet()
        counters.increment("requests")
        counters.increment("requests", 4)
        counters.increment("errors", 0)
        assert counters.value("requests") == 5
        assert counters.snapshot() == {"requests": 5}  # zero counters omitted

    def test_thread_safety(self):
        counters = CounterSet()

        def bump():
            for _ in range(1000):
                counters.increment("n")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counters.value("n") == 8000


class TestRollingLatency:
    def test_lifetime_totals(self):
        latency = RollingLatency(window=8)
        for seconds in (0.010, 0.020, 0.030):
            latency.record(seconds)
        snapshot = latency.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["total_seconds"] == pytest.approx(0.060)
        assert snapshot["mean_ms"] == pytest.approx(20.0)
        assert snapshot["max_ms"] == pytest.approx(30.0)

    def test_quantiles_over_ring(self):
        latency = RollingLatency(window=100)
        for millis in range(1, 101):  # 1ms .. 100ms
            latency.record(millis / 1000.0)
        assert latency.quantile(0.50) == pytest.approx(0.0505, rel=0.02)
        snapshot = latency.snapshot()
        assert snapshot["p50_ms"] == pytest.approx(50.5, rel=0.02)
        assert snapshot["p95_ms"] == pytest.approx(95.05, rel=0.02)
        assert snapshot["p99_ms"] == pytest.approx(99.01, rel=0.02)

    def test_window_evicts_history(self):
        latency = RollingLatency(window=4)
        latency.record(10.0)  # ancient outlier
        for _ in range(4):
            latency.record(0.001)
        # The outlier left the ring: quantiles reflect recent samples only,
        # while lifetime max still remembers it.
        assert latency.quantile(0.99) == pytest.approx(0.001)
        assert latency.snapshot()["max_ms"] == pytest.approx(10_000.0)

    def test_batched_count_attribution(self):
        latency = RollingLatency()
        latency.record(0.008, count=16)
        snapshot = latency.snapshot()
        assert snapshot["count"] == 16
        assert snapshot["total_seconds"] == pytest.approx(0.008)

    def test_empty_snapshot(self):
        snapshot = RollingLatency().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50_ms"] == 0.0
        assert snapshot["mean_ms"] == 0.0

    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            RollingLatency(window=0)


class TestStageTimer:
    def test_stages_created_lazily(self):
        timer = StageTimer()
        assert timer.snapshot() == {}
        timer.record("featurize", 0.010)
        assert list(timer.snapshot()) == ["featurize"]

    def test_per_stage_latency_accounting(self):
        timer = StageTimer()
        timer.record("featurize", 0.010, count=4)
        timer.record("predict", 0.020)
        snapshot = timer.snapshot()
        assert snapshot["featurize"]["count"] == 4
        assert snapshot["featurize"]["total_seconds"] == pytest.approx(0.010)
        assert snapshot["predict"]["mean_ms"] == pytest.approx(20.0)

    def test_snapshot_sorted_by_stage(self):
        timer = StageTimer()
        for name in ("predict", "featurize", "queue_wait"):
            timer.record(name, 0.001)
        assert list(timer.snapshot()) == ["featurize", "predict", "queue_wait"]

    def test_quantile_of_unknown_stage_is_zero(self):
        assert StageTimer().quantile("nothing", 0.99) == 0.0

    def test_renders_as_flat_metrics(self):
        timer = StageTimer()
        timer.record("featurize", 0.010)
        text = render_metrics_text({"stages": timer.snapshot()}, prefix="svc")
        assert "svc_stages_featurize_count 1" in text

    def test_thread_safety(self):
        timer = StageTimer()

        def bump():
            for _ in range(500):
                timer.record("stage", 0.001)

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert timer.snapshot()["stage"]["count"] == 4000


class TestRouteMetrics:
    def test_request_and_variant_accounting(self):
        metrics = RouteMetrics()
        metrics.record_request("v1", 0.010)
        metrics.record_request("v2", 0.020, count=3)
        metrics.record_error()
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 5
        assert snapshot["errors"] == 1
        assert snapshot["by_variant"] == {"v1": 1, "v2": 3}
        assert snapshot["latency"]["count"] == 4

    def test_batch_accounting(self):
        metrics = RouteMetrics()
        metrics.record_batch({"v1": 7, "v2": 3}, 0.050)
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 10
        assert snapshot["by_variant"] == {"v1": 7, "v2": 3}
        assert snapshot["latency"]["count"] == 10

    def test_shadow_accounting(self):
        metrics = RouteMetrics()
        metrics.record_shadow("v2", agreements=8, disagreements=2)
        metrics.record_shadow_error()
        shadow = metrics.snapshot()["shadow"]
        assert shadow["requests"] == 10
        assert shadow["agreements"] == 8
        assert shadow["disagreements"] == 2
        assert shadow["errors"] == 1
        assert shadow["agreement_rate"] == pytest.approx(0.8)

    def test_no_shadow_traffic_rate_is_none(self):
        assert RouteMetrics().snapshot()["shadow"]["agreement_rate"] is None


class TestJSONSafeSnapshots:
    """``as_dict``/``snapshot`` payloads are plain-JSON with stable key order."""

    def test_counter_as_dict_sorted_plain_ints(self):
        counters = CounterSet()
        for name in ("zeta", "alpha", "mid"):
            counters.increment(name, 2)
        counters.increment("never", 0)  # zero-valued names are omitted
        payload = counters.as_dict()
        assert list(payload) == ["alpha", "mid", "zeta"]
        assert all(type(value) is int for value in payload.values())
        assert counters.snapshot() == payload  # historical alias
        json.dumps(payload)  # JSON-safe by construction

    def test_latency_snapshot_json_safe_stable_order(self):
        latency = RollingLatency(window=8)
        latency.record(0.010)
        latency.record(0.020, count=3)
        payload = latency.snapshot()
        assert list(payload) == [
            "count", "total_seconds", "mean_ms", "max_ms", "window",
            "p50_ms", "p95_ms", "p99_ms",
        ]
        assert type(payload["count"]) is int and type(payload["window"]) is int
        assert all(
            type(payload[key]) is float
            for key in ("total_seconds", "mean_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms")
        )
        json.dumps(payload)

    def test_route_metrics_snapshot_is_json_safe(self):
        metrics = RouteMetrics()
        metrics.record_request("v1", 0.005)
        metrics.record_shadow("v2", agreements=1, disagreements=0)
        json.dumps(metrics.snapshot())


class TestRenderMetricsText:
    def test_flatten_sort_and_sanitize(self):
        text = render_metrics_text(
            {
                "routes": {"cuisine": {"requests": 3, "by_variant": {"v1@x": 3}}},
                "healthy": True,
                "status": "ok",          # non-numeric leaves are skipped
                "latency": {"p50_ms": 1.5},
                "names": ["a", "b"],     # sequences are skipped too
            }
        )
        lines = text.splitlines()
        assert lines == sorted(lines)
        parsed = dict(line.rsplit(" ", 1) for line in lines)
        assert parsed["repro_healthy"] == "1"
        # ``v1@x`` needs sanitizing, so its name carries a hash suffix that
        # keeps it distinct from a literal ``v1_x`` variant.
        assert parsed["repro_routes_cuisine_by_variant_v1_x_b4fe7c"] == "3"
        assert parsed["repro_latency_p50_ms"] == "1.500000"
        assert not any("status" in line for line in lines)
        assert text.endswith("\n")

    def test_empty_snapshot_renders_empty(self):
        assert render_metrics_text({}) == ""

    def test_exemplars_attached_to_matching_lines_only(self):
        text = render_metrics_text(
            {"latency": {"p50_ms": 1.5, "p99_ms": 9.0}, "requests": 4},
            exemplars={"repro_latency_p50_ms": "ab" * 16},
        )
        lines = dict(
            (line.split(" # ", 1)[0].rsplit(" ", 1)[0], line)
            for line in text.splitlines()
        )
        assert lines["repro_latency_p50_ms"].endswith(
            f"# exemplar trace_id={'ab' * 16}"
        )
        assert "exemplar" not in lines["repro_latency_p99_ms"]
        assert "exemplar" not in lines["repro_requests"]


class TestSanitizeMetricName:
    def test_clean_keys_pass_through_unchanged(self):
        for key in ("requests", "p50_ms", "by_variant", "v1", "A9_z"):
            assert sanitize_metric_name(key) == key

    def test_illegal_characters_replaced_and_suffixed(self):
        name = sanitize_metric_name("v1@x")
        assert name.startswith("v1_x_")
        assert len(name) == len("v1_x_") + 6
        assert all(c.isalnum() or c == "_" for c in name)

    def test_colliding_keys_stay_distinct(self):
        # All three flatten to ``v1_x`` under plain substitution; the hash
        # suffix keeps each key's metric line distinct.
        names = {sanitize_metric_name(k) for k in ("v1@x", "v1-x", "v1.x", "v1 x")}
        assert len(names) == 4
        assert "v1_x" not in names  # none shadows a literal clean key

    def test_deterministic(self):
        assert sanitize_metric_name("v1@x") == sanitize_metric_name("v1@x")

    def test_flatten_uses_sanitized_names(self):
        text = render_metrics_text({"by_variant": {"v1@x": 1, "v1-x": 2}})
        parsed = dict(line.rsplit(" ", 1) for line in text.splitlines())
        assert len(parsed) == 2
        assert all(name.startswith("repro_by_variant_v1_x_") for name in parsed)


class TestProcessStats:
    def test_shape_and_types(self):
        stats = process_stats()
        assert set(stats) == {
            "pid", "uptime_seconds", "peak_rss_bytes", "python_version",
        }
        assert stats["pid"] == os.getpid()
        assert stats["uptime_seconds"] > 0.0
        assert stats["peak_rss_bytes"] > 1024 * 1024  # a real interpreter RSS
        assert stats["python_version"].count(".") == 2
        json.dumps(stats)

    def test_uptime_is_monotonic(self):
        first = process_stats()["uptime_seconds"]
        second = process_stats()["uptime_seconds"]
        assert second >= first


class TestMergeEdgeCases:
    def test_empty_inputs(self):
        assert merge_counter_dicts([]) == {}
        merged = merge_latency_snapshots([])
        assert merged["count"] == 0 and merged["mean_ms"] == 0.0
        merged = merge_distribution_snapshots([])
        assert merged["count"] == 0 and merged["mean"] == 0.0

    def test_single_snapshot_passes_through(self):
        latency = RollingLatency()
        latency.record(0.010)
        latency.record(0.030)
        snapshot = latency.snapshot()
        assert merge_latency_snapshots([snapshot]) == pytest.approx(snapshot)
        counters = {"requests": 3, "errors": 1}
        assert merge_counter_dicts([counters]) == counters

    def test_disjoint_counter_keys_union(self):
        merged = merge_counter_dicts([{"a": 1}, {"b": 2}, {"a": 4}])
        assert merged == {"a": 5, "b": 2}

    def test_zero_sums_omitted_and_keys_sorted(self):
        merged = merge_counter_dicts([{"z": 1, "gone": 0}, {"a": 2}])
        assert list(merged) == ["a", "z"]
        assert "gone" not in merged

    def test_malformed_counter_values_contribute_nothing(self):
        merged = merge_counter_dicts([{"a": 2, "bad": "oops"}, {"bad": None}])
        assert merged == {"a": 2}

    def test_malformed_latency_fields_degrade_to_defaults(self):
        good = {
            "count": 2, "total_seconds": 0.02, "mean_ms": 10.0, "max_ms": 15.0,
            "p50_ms": 10.0, "p95_ms": 15.0, "p99_ms": 15.0, "window": 256,
        }
        bad = {
            "count": "not-a-number", "total_seconds": float("nan"),
            "mean_ms": None, "max_ms": "x", "p50_ms": object(),
            "p95_ms": None, "p99_ms": None, "window": None,
        }
        merged = merge_latency_snapshots([good, bad])
        assert merged["count"] == 2
        assert merged["total_seconds"] == pytest.approx(0.02)
        assert merged["max_ms"] == 15.0
        assert merged["p50_ms"] == pytest.approx(10.0)

    def test_malformed_distribution_fields_degrade_to_defaults(self):
        good = {
            "count": 4, "total": 8.0, "mean": 2.0, "max": 3.0,
            "p50": 2.0, "p95": 3.0, "p99": 3.0, "window": 128,
        }
        merged = merge_distribution_snapshots([good, {"count": [], "total": "x"}])
        assert merged["count"] == 4
        assert merged["total"] == pytest.approx(8.0)
        assert merged["mean"] == pytest.approx(2.0)

    def test_count_weighted_quantiles(self):
        heavy = {
            "count": 30, "total_seconds": 0.3, "mean_ms": 10.0, "max_ms": 12.0,
            "p50_ms": 10.0, "p95_ms": 12.0, "p99_ms": 12.0, "window": 256,
        }
        light = {
            "count": 10, "total_seconds": 0.4, "mean_ms": 40.0, "max_ms": 50.0,
            "p50_ms": 40.0, "p95_ms": 50.0, "p99_ms": 50.0, "window": 256,
        }
        merged = merge_latency_snapshots([heavy, light])
        assert merged["count"] == 40
        assert merged["p50_ms"] == pytest.approx((30 * 10.0 + 10 * 40.0) / 40)
        assert merged["max_ms"] == 50.0
        assert merged["mean_ms"] == pytest.approx(1000.0 * 0.7 / 40)
