"""Per-class and per-pair shadow agreement attribution, across hot-swaps.

PR 4 tracked only aggregate shadow agreement per shadow version; the canary
analyzer needs (a) counts attributed to the exact ``(primary, shadow)``
version pair — so a hot-swap mid-traffic starts a fresh pair instead of
polluting the old one — and (b) per-class agreement keyed by the primary's
predicted label, so class-skewed disagreement is visible under aggregate
agreement.
"""

from __future__ import annotations

import pytest

from repro.gateway import ModelGateway
from repro.gateway.policies import Shadow
from repro.observability import RouteMetrics


@pytest.fixture()
def shadow_gateway(gateway_export_dir):
    """logreg active as v1, naive_bayes dark as v2, logreg again as v3."""
    gateway = ModelGateway()
    gateway.deploy("cuisine", "v1", gateway_export_dir / "logreg")
    gateway.deploy("cuisine", "v2", gateway_export_dir / "naive_bayes", activate=False)
    gateway.deploy("cuisine", "v3", gateway_export_dir / "logreg", activate=False)
    gateway.set_policy("cuisine", Shadow(candidate="v2"))
    yield gateway
    gateway.close()


def shadow_snapshot(gateway):
    gateway.flush_shadows()
    return gateway.registry.metrics("cuisine").snapshot()["shadow"]


class TestRouteMetricsRecordShadow:
    def test_pair_and_class_counters_round_trip(self):
        metrics = RouteMetrics()
        metrics.record_shadow(
            "v2", 8, 2, primary="v1", by_class={"Italian": (5, 1), "Thai": (3, 1)}
        )
        shadow = metrics.snapshot()["shadow"]
        assert shadow["pairs"]["v1->v2"] == {
            "requests": 10,
            "agreements": 8,
            "disagreements": 2,
            "agreement_rate": 0.8,
        }
        assert shadow["by_class"]["v2"]["Italian"]["agreements"] == 5
        assert shadow["by_class"]["v2"]["Thai"]["disagreements"] == 1

    def test_legacy_call_without_primary_still_works(self):
        metrics = RouteMetrics()
        metrics.record_shadow("v2", 3, 1)
        shadow = metrics.snapshot()["shadow"]
        assert shadow["agreements"] == 3
        assert shadow["by_version"]["v2"]["requests"] == 4
        assert "pairs" not in shadow or shadow["pairs"] == {}

    def test_distinct_pairs_accumulate_independently(self):
        metrics = RouteMetrics()
        metrics.record_shadow("v2", 5, 0, primary="v1")
        metrics.record_shadow("v2", 1, 4, primary="v3")
        shadow = metrics.snapshot()["shadow"]
        assert shadow["pairs"]["v1->v2"]["agreements"] == 5
        assert shadow["pairs"]["v3->v2"]["disagreements"] == 4
        # The per-version aggregate still covers both pairs.
        assert shadow["by_version"]["v2"]["requests"] == 10


class TestGatewayAttribution:
    def test_single_predicts_attribute_pair_and_class(
        self, shadow_gateway, gateway_sequences
    ):
        for sequence in gateway_sequences[:10]:
            shadow_gateway.predict_proba("cuisine", sequence)
        shadow = shadow_snapshot(shadow_gateway)
        pair = shadow["pairs"]["v1->v2"]
        assert pair["requests"] == 10
        assert pair["agreements"] + pair["disagreements"] == 10
        by_class = shadow["by_class"]["v2"]
        total = sum(
            rated["agreements"] + rated["disagreements"] for rated in by_class.values()
        )
        assert total == 10
        label_space = set(shadow_gateway.registry.label_space("cuisine"))
        assert set(by_class) <= label_space

    def test_batch_predicts_attribute_pair_and_class(
        self, shadow_gateway, gateway_sequences
    ):
        shadow_gateway.predict_proba_batch("cuisine", gateway_sequences[:16])
        shadow = shadow_snapshot(shadow_gateway)
        assert shadow["pairs"]["v1->v2"]["requests"] == 16
        by_class = shadow["by_class"]["v2"]
        total = sum(
            rated["agreements"] + rated["disagreements"] for rated in by_class.values()
        )
        assert total == 16

    def test_hot_swap_starts_a_fresh_pair(self, shadow_gateway, gateway_sequences):
        """Counters attribute to the (primary, shadow) pair live at request time."""
        for sequence in gateway_sequences[:6]:
            shadow_gateway.predict_proba("cuisine", sequence)
        before = shadow_snapshot(shadow_gateway)["pairs"]
        assert before["v1->v2"]["requests"] == 6
        assert "v3->v2" not in before

        shadow_gateway.swap("cuisine", "v3")  # hot-swap the primary mid-traffic
        for sequence in gateway_sequences[6:14]:
            shadow_gateway.predict_proba("cuisine", sequence)

        after = shadow_snapshot(shadow_gateway)["pairs"]
        # The old pair is frozen where it stood; the new pair starts at zero.
        assert after["v1->v2"] == before["v1->v2"]
        assert after["v3->v2"]["requests"] == 8
        # v3 is the same model as v1's bundle, so the shadow totals by
        # version keep accumulating across the swap.
        assert shadow_snapshot(shadow_gateway)["by_version"]["v2"]["requests"] == 14

    def test_swapping_shadow_candidate_changes_pair_too(
        self, shadow_gateway, gateway_sequences
    ):
        for sequence in gateway_sequences[:4]:
            shadow_gateway.predict_proba("cuisine", sequence)
        shadow_gateway.set_policy("cuisine", Shadow(candidate="v3"))
        for sequence in gateway_sequences[4:9]:
            shadow_gateway.predict_proba("cuisine", sequence)
        pairs = shadow_snapshot(shadow_gateway)["pairs"]
        assert pairs["v1->v2"]["requests"] == 4
        assert pairs["v1->v3"]["requests"] == 5
