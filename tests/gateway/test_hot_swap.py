"""Concurrent hot-swap: swapping a live route under load is safe.

Satellite + acceptance criterion of the gateway issue: N threads predict
through a route while its active version is swapped (and rolled back).  The
bar is:

* no request raises — zero dropped requests;
* after ``swap()`` returns, every *newly started* request is served by the
  new version — no stale-version responses;
* the service's result cache never serves the retired version's
  probabilities under the new version's identity.
"""

import threading
import time

import numpy as np
import pytest

from repro.gateway import ModelGateway

N_THREADS = 8
REQUESTS_PER_THREAD = 40


@pytest.fixture()
def swap_gateway(logreg_bundle, nb_bundle):
    gateway = ModelGateway()
    gateway.deploy("cuisine", "v1", logreg_bundle)
    gateway.deploy("cuisine", "v2", nb_bundle, activate=False)
    with gateway:
        yield gateway


class TestConcurrentHotSwap:
    def test_swap_under_load(self, swap_gateway, gateway_sequences):
        gateway = swap_gateway
        sequence = gateway_sequences[0]
        # The two versions are different model families, so their probability
        # vectors for this sequence are distinguishable fingerprints.
        v1_row = gateway.service.predict_proba("cuisine@v1", sequence)
        v2_row = gateway.service.predict_proba("cuisine@v2", sequence)
        assert not np.array_equal(v1_row, v2_row)

        swapped = threading.Event()
        stop = threading.Event()
        errors: list = []
        post_swap_stale = []
        served = {"v1": 0, "v2": 0, "post_swap": 0, "total": 0}
        count_lock = threading.Lock()

        def client() -> None:
            while not stop.is_set():
                request_started_after_swap = swapped.is_set()
                try:
                    row = gateway.predict_proba("cuisine", sequence)
                except BaseException as exc:  # any exception fails the bar
                    errors.append(exc)
                    return
                is_v1 = np.array_equal(row, v1_row)
                is_v2 = np.array_equal(row, v2_row)
                assert is_v1 or is_v2, "response matches neither version"
                if request_started_after_swap and is_v1:
                    post_swap_stale.append(row)
                with count_lock:
                    served["v1" if is_v1 else "v2"] += 1
                    served["total"] += 1
                    if request_started_after_swap:
                        served["post_swap"] += 1

        def wait_for(condition) -> None:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and not errors:
                with count_lock:
                    if condition(served):
                        return
                time.sleep(0.001)

        threads = [threading.Thread(target=client) for _ in range(N_THREADS)]
        for thread in threads:
            thread.start()
        # Let some traffic land on v1, swap mid-flight, then keep the load
        # up long enough to observe plenty of post-swap requests.
        wait_for(lambda counts: counts["v1"] >= N_THREADS * REQUESTS_PER_THREAD)
        gateway.swap("cuisine", "v2")
        swapped.set()
        wait_for(lambda counts: counts["post_swap"] >= N_THREADS * REQUESTS_PER_THREAD)
        stop.set()
        for thread in threads:
            thread.join(timeout=60.0)
            assert not thread.is_alive()

        assert errors == []  # zero dropped requests
        assert post_swap_stale == []  # zero stale responses after the swap
        with count_lock:
            assert served["v1"] + served["v2"] == served["total"]
            assert served["post_swap"] >= N_THREADS * REQUESTS_PER_THREAD
            assert served["v2"] >= served["post_swap"]

    def test_cache_isolated_across_swap(self, swap_gateway, gateway_sequences):
        """The result cache is keyed by versioned identity: after a swap the
        new version can never be served the retired version's cached rows."""
        gateway = swap_gateway
        sequence = gateway_sequences[0]
        before = gateway.predict_proba("cuisine", sequence)  # caches under v1
        gateway.swap("cuisine", "v2")
        after = gateway.predict_proba("cuisine", sequence)
        direct_v2 = gateway.service.predict_proba("cuisine@v2", sequence)
        np.testing.assert_array_equal(after, direct_v2)
        assert not np.array_equal(before, after)

    def test_rollback_under_load(self, swap_gateway, gateway_sequences):
        gateway = swap_gateway
        sequence = gateway_sequences[1]
        v1_row = gateway.service.predict_proba("cuisine@v1", sequence)

        stop = threading.Event()
        errors: list = []

        def client() -> None:
            while not stop.is_set():
                try:
                    gateway.predict_proba("cuisine", sequence)
                except BaseException as exc:
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(10):
            gateway.swap("cuisine", "v2")
            gateway.rollback("cuisine")
        stop.set()
        for thread in threads:
            thread.join(timeout=60.0)
            assert not thread.is_alive()

        assert errors == []
        assert gateway.registry.active_version("cuisine") == "v1"
        row = gateway.predict_proba("cuisine", sequence)
        np.testing.assert_array_equal(row, v1_row)

    def test_retire_does_not_break_pinned_requests(
        self, swap_gateway, gateway_sequences
    ):
        """A request that resolved the old version finishes even if the
        version is retired before its prediction runs (model pinning)."""
        gateway = swap_gateway
        deployment = gateway.registry.resolve("cuisine")  # pins v1
        gateway.swap("cuisine", "v2")
        gateway.retire("cuisine", "v1")
        # The pinned deployment still predicts through its captured model.
        row = deployment.model.predict_proba_sequences([gateway_sequences[0]])[0]
        assert row.shape == (len(deployment.label_space),)
