"""Tests for the batched PredictionService and the train->export->serve flow."""

import threading

import numpy as np
import pytest

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.data.splits import train_val_test_split
from repro.models.base import CuisineModel
from repro.models.lstm_classifier import LSTMClassifierConfig, LSTMCuisineClassifier
from repro.pipeline.store import FeatureStore
from repro.serving import ModelBundle, PredictionService, discover_bundles, load_bundles
from repro.text.pipeline import PipelineConfig

MODELS = ("logreg", "naive_bayes")
FAST_KWARGS = {"logreg": {"max_iter": 30}}


@pytest.fixture(scope="module")
def export_dir(tiny_corpus, tmp_path_factory):
    """Train two statistical models and export their bundles once."""
    path = tmp_path_factory.mktemp("bundles")
    config = ExperimentConfig(
        models=MODELS, seed=3, statistical_kwargs=FAST_KWARGS, export_dir=str(path)
    )
    result = ExperimentRunner(config, corpus=tiny_corpus).run()
    for name in MODELS:
        assert result.model_results[name].extra["bundle_path"] == str(path / name)
    return path


@pytest.fixture(scope="module")
def request_sequences(tiny_corpus):
    return [recipe.sequence for recipe in tiny_corpus.recipes[:30]]


@pytest.fixture()
def service(export_dir):
    with PredictionService.from_export_dir(export_dir) as service:
        yield service


class TestExportFlow:
    def test_runner_exports_one_bundle_per_model(self, export_dir):
        assert set(discover_bundles(export_dir)) == set(MODELS)

    def test_bundles_load_by_name(self, export_dir):
        bundles = load_bundles(export_dir, names=["logreg"])
        assert set(bundles) == {"logreg"}
        assert isinstance(bundles["logreg"], ModelBundle)
        assert bundles["logreg"].corpus_fingerprint is not None

    def test_unknown_bundle_name_raises(self, export_dir):
        with pytest.raises(KeyError, match="no bundles"):
            load_bundles(export_dir, names=["lstm"])

    def test_missing_export_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            discover_bundles(tmp_path / "nowhere")


class TestPredictionPaths:
    def test_registered_models(self, service):
        assert service.model_names() == tuple(sorted(MODELS))

    def test_single_predict_returns_known_label(self, service, request_sequences):
        label = service.predict("logreg", request_sequences[0])
        assert label in service._models["logreg"].label_space

    def test_predict_proba_matches_direct_model(self, service, request_sequences):
        direct = service._models["logreg"].predict_proba_sequences(request_sequences)
        served = np.vstack(
            [service.predict_proba("logreg", s) for s in request_sequences]
        )
        np.testing.assert_allclose(direct, served, rtol=0, atol=1e-12)
        assert np.array_equal(direct.argmax(axis=1), served.argmax(axis=1))

    def test_batch_predictions_match_singles(self, service, request_sequences):
        batch = service.predict_batch("logreg", request_sequences)
        singles = [service.predict("logreg", s) for s in request_sequences]
        assert batch == singles

    def test_batch_matrix_shape_and_normalisation(self, service, request_sequences):
        probabilities = service.predict_proba_batch("naive_bayes", request_sequences)
        model = service._models["naive_bayes"]
        assert probabilities.shape == (len(request_sequences), model.n_classes)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_empty_batch(self, service):
        probabilities = service.predict_proba_batch("logreg", [])
        assert probabilities.shape == (0, service._models["logreg"].n_classes)

    def test_unknown_model_raises(self, service, request_sequences):
        with pytest.raises(KeyError, match="no model"):
            service.predict("lstm", request_sequences[0])

    def test_empty_sequence_rejected(self, service):
        with pytest.raises(ValueError, match="empty"):
            service.predict("logreg", [])


class TestCaching:
    def test_repeated_input_hits_cache(self, export_dir, request_sequences):
        with PredictionService.from_export_dir(export_dir) as service:
            first = service.predict_proba("logreg", request_sequences[0])
            second = service.predict_proba("logreg", request_sequences[0])
            np.testing.assert_array_equal(first, second)
            stats = service.stats()
            assert stats["cache_hits"] == 1
            assert stats["cache_misses"] == 1

    def test_cached_result_is_copy(self, export_dir, request_sequences):
        with PredictionService.from_export_dir(export_dir) as service:
            first = service.predict_proba("logreg", request_sequences[0])
            first[:] = -1.0  # a caller mutating its result must not poison the cache
            second = service.predict_proba("logreg", request_sequences[0])
            assert second.min() >= 0.0

    def test_cache_disabled(self, export_dir, request_sequences):
        with PredictionService.from_export_dir(export_dir, cache_size=0) as service:
            service.predict_proba("logreg", request_sequences[0])
            service.predict_proba("logreg", request_sequences[0])
            assert service.stats()["cache_hits"] == 0

    def test_cache_bounded(self, export_dir, request_sequences):
        with PredictionService.from_export_dir(export_dir, cache_size=4) as service:
            service.predict_proba_batch("logreg", request_sequences)
            assert service.stats()["cached_entries"] <= 4

    def test_hot_swapped_model_does_not_serve_stale_results(
        self, export_dir, request_sequences
    ):
        with PredictionService.from_export_dir(export_dir) as service:
            service.predict_proba("logreg", request_sequences[0])
            service.predict_proba("naive_bayes", request_sequences[0])
            # Replace logreg with a different model object under the same name.
            service.add_model(service._models["naive_bayes"], name="logreg")
            stats_before = service.stats()["cache_hits"]
            swapped = service.predict_proba("logreg", request_sequences[0])
            expected = service._models["naive_bayes"].predict_proba_sequences(
                [request_sequences[0]]
            )[0]
            np.testing.assert_allclose(expected, swapped, rtol=0, atol=1e-12)
            assert service.stats()["cache_hits"] == stats_before  # no stale hit

    def test_in_flight_result_of_swapped_model_is_not_cached(
        self, export_dir, request_sequences
    ):
        """A result computed before a hot-swap must not be cached after it
        (the epoch guard), even though it is still returned to its caller."""
        with PredictionService.from_export_dir(export_dir) as service:
            stale_epoch = service._model_epoch("logreg")
            row = service._models["logreg"].predict_proba_sequences(
                [request_sequences[0]]
            )[0]
            service.add_model(service._models["naive_bayes"], name="logreg")
            service._cache_put(
                "logreg", tuple(request_sequences[0]), row, epoch=stale_epoch
            )
            assert service.stats()["cached_entries"] == 0

    def test_batch_uses_cache(self, export_dir, request_sequences):
        with PredictionService.from_export_dir(export_dir) as service:
            service.predict_proba_batch("logreg", request_sequences)
            service.predict_proba_batch("logreg", request_sequences)
            stats = service.stats()
            assert stats["cache_hits"] == len(request_sequences)
            assert stats["cache_misses"] == len(request_sequences)


class TestMicroBatching:
    def test_concurrent_requests_are_batched(self, export_dir, request_sequences):
        with PredictionService.from_export_dir(export_dir, cache_size=0) as service:
            direct = service._models["logreg"].predict_proba_sequences(request_sequences)
            results: list = [None] * len(request_sequences)

            def call(index: int) -> None:
                results[index] = service.predict_proba("logreg", request_sequences[index])

            threads = [
                threading.Thread(target=call, args=(index,))
                for index in range(len(request_sequences))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            served = np.vstack(results)
            # Micro-batch composition may perturb sparse sums by ~1 ulp;
            # labels must be unchanged.
            np.testing.assert_allclose(direct, served, rtol=0, atol=1e-12)
            assert np.array_equal(direct.argmax(axis=1), served.argmax(axis=1))
            stats = service.stats()
            assert stats["batched_requests"] == len(request_sequences)
            assert 1 <= stats["batches_flushed"] <= len(request_sequences)

    def test_mixed_model_batches(self, export_dir, request_sequences):
        with PredictionService.from_export_dir(export_dir, cache_size=0) as service:
            results: dict = {}

            def call(name: str, index: int) -> None:
                results[(name, index)] = service.predict_proba(
                    name, request_sequences[index]
                )

            threads = [
                threading.Thread(target=call, args=(name, index))
                for name in MODELS
                for index in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            for name in MODELS:
                direct = service._models[name].predict_proba_sequences(
                    request_sequences[:8]
                )
                for index in range(8):
                    np.testing.assert_allclose(
                        direct[index], results[(name, index)], rtol=0, atol=1e-12
                    )

    def test_worker_surfaces_model_errors(self, export_dir, request_sequences):
        with PredictionService.from_export_dir(export_dir, cache_size=0) as service:
            def boom(token_lists):
                raise RuntimeError("synthetic model failure")

            service._models["logreg"].encode_tokens = boom
            with pytest.raises(RuntimeError, match="synthetic model failure"):
                service.predict_proba("logreg", request_sequences[0])

    def test_close_is_idempotent_and_terminal(self, export_dir):
        service = PredictionService.from_export_dir(export_dir)
        service.predict("logreg", ["onion", "stir"])
        service.close()
        service.close()
        # After close() the service rejects new submissions with a clear
        # error instead of silently restarting or dropping them.
        with pytest.raises(RuntimeError, match="closed"):
            service.predict("logreg", ["onion", "stir"])
        with pytest.raises(RuntimeError, match="closed"):
            service.predict_proba_batch("logreg", [["onion", "stir"]])


class TestShutdownUnderLoad:
    def test_close_drains_queued_requests(self, export_dir, request_sequences):
        """Requests accepted into the queue before close() are processed to
        completion — shutdown drains, it does not drop."""
        from repro.serving.service import _Request

        service = PredictionService.from_export_dir(
            export_dir, cache_size=0, flush_interval=0.05
        )
        service._ensure_worker()
        model = service._models["logreg"]
        queued = [
            _Request(
                model_name="logreg",
                sequence=tuple(sequence),
                model=model,
                epoch=service._model_epoch("logreg"),
            )
            for sequence in request_sequences[:12]
        ]
        for request in queued:
            service._queue.put(request)
        service.close()
        for request in queued:
            assert request.done.is_set()
            assert request.error is None
            assert request.result is not None

    def test_concurrent_close_never_drops_or_times_out(
        self, export_dir, request_sequences
    ):
        """Under concurrent load, every request racing a close() either gets
        a real result or the explicit closed error — never a timeout."""
        service = PredictionService.from_export_dir(
            export_dir, cache_size=0, flush_interval=0.002, request_timeout=30.0
        )
        outcomes: list = []
        outcome_lock = threading.Lock()
        start_gate = threading.Event()

        def client(index: int) -> None:
            start_gate.wait()
            for step in range(4):
                sequence = request_sequences[(index + step) % len(request_sequences)]
                try:
                    result = service.predict_proba("logreg", sequence)
                    outcome = ("ok", result)
                except RuntimeError as exc:
                    outcome = ("closed", exc)
                with outcome_lock:
                    outcomes.append(outcome)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(12)]
        for thread in threads:
            thread.start()
        start_gate.set()
        service.close()  # races the in-flight clients
        for thread in threads:
            thread.join(timeout=60.0)
            assert not thread.is_alive()

        assert len(outcomes) == 12 * 4
        for kind, payload in outcomes:
            if kind == "ok":
                assert isinstance(payload, np.ndarray)
            else:
                assert "closed" in str(payload)


class TestModelRemoval:
    def test_remove_model_unregisters_and_drops_cache(
        self, export_dir, request_sequences
    ):
        with PredictionService.from_export_dir(export_dir) as service:
            service.predict_proba("logreg", request_sequences[0])
            assert service.stats()["cached_entries"] == 1
            removed = service.remove_model("logreg")
            assert removed is not None
            assert "logreg" not in service.model_names()
            assert service.stats()["cached_entries"] == 0
            with pytest.raises(KeyError, match="no model"):
                service.predict_proba("logreg", request_sequences[0])


class TestSequentialModelServing:
    def test_lstm_bundle_serves_from_export(self, tiny_corpus, request_sequences, tmp_path):
        """A sequential model round-trips through bundle -> service with
        predictions identical to the fitted model's serving path."""
        splits = train_val_test_split(tiny_corpus, seed=2)
        config = LSTMClassifierConfig(
            embedding_dim=16, hidden_dim=16, num_layers=1, max_length=24, epochs=1, seed=1
        )
        model = LSTMCuisineClassifier(
            label_space=tiny_corpus.present_cuisines(), config=config
        )
        model.fit(splits.train, splits.validation)
        model.save_bundle(tmp_path / "lstm")

        direct = model.predict_proba_sequences(request_sequences[:6])
        with PredictionService.from_export_dir(tmp_path) as service:
            assert service.model_names() == ("lstm",)
            served = service.predict_proba_batch("lstm", request_sequences[:6])
            np.testing.assert_array_equal(direct, served)
            single = service.predict_proba("lstm", request_sequences[0])
            np.testing.assert_allclose(direct[0], single, rtol=0, atol=1e-12)
            assert isinstance(CuisineModel.load_bundle(tmp_path / "lstm"), LSTMCuisineClassifier)


class TestObservability:
    def test_stats_counters(self, export_dir, request_sequences):
        with PredictionService.from_export_dir(export_dir) as service:
            service.predict_proba_batch("logreg", request_sequences[:10])
            service.predict_proba("logreg", request_sequences[0])
            stats = service.stats()
            assert stats["requests"] == 11
            assert stats["requests_by_model"] == {"logreg": 11}
            assert stats["latency"]["count"] == 11
            assert stats["latency"]["total_seconds"] > 0.0
            assert stats["store"]["misses"]  # featurization went through the store

    def test_warm_precomputes_tokens(self, export_dir, request_sequences):
        with PredictionService.from_export_dir(export_dir) as service:
            service.warm(request_sequences)
            store_misses = service.store.miss_count("sequence_tokens")
            service.predict_proba_batch("logreg", request_sequences)
            # The batch featurization hits the warmed per-sequence artifacts.
            assert service.store.miss_count("sequence_tokens") == store_misses
            assert service.store.hit_count("sequence_tokens") >= len(request_sequences)

    def test_featurization_reused_across_batch_compositions(
        self, export_dir, request_sequences
    ):
        with PredictionService.from_export_dir(export_dir, cache_size=0) as service:
            service.predict_proba_batch("logreg", request_sequences[:4])
            misses = service.store.miss_count("sequence_tokens")
            # A different batch containing already-seen sequences reuses
            # their token artifacts; only the new sequence is preprocessed.
            service.predict_proba_batch("logreg", request_sequences[2:5])
            assert service.store.miss_count("sequence_tokens") == misses + 1

    def test_featurization_shared_across_models(self, export_dir, request_sequences):
        with PredictionService.from_export_dir(export_dir, cache_size=0) as service:
            service.predict_proba_batch("logreg", request_sequences[:4])
            misses = service.store.miss_count("sequence_tokens")
            # Both models declare the same pipeline config, so the second
            # model's featurization is a pure cache hit.
            service.predict_proba_batch("naive_bayes", request_sequences[:4])
            assert service.store.miss_count("sequence_tokens") == misses

    def test_stage_timers_split_batch_wall_clock(self, export_dir, request_sequences):
        with PredictionService.from_export_dir(export_dir) as service:
            service.predict_proba_batch("logreg", request_sequences[:8])
            stages = service.stats()["stages"]
            assert set(stages) >= {"featurize", "predict"}
            assert stages["featurize"]["count"] == 8
            assert stages["predict"]["count"] == 8
            assert stages["featurize"]["total_seconds"] >= 0.0
            # The batch path never queues, so no queue_wait is recorded.
            assert "queue_wait" not in stages
            service.predict_proba("logreg", request_sequences[10])
            stages = service.stats()["stages"]
            # The micro-batched single request records its queue wait.
            assert stages["queue_wait"]["count"] == 1

    def test_stage_timers_render_in_metrics_text(self, export_dir, request_sequences):
        from repro.observability import render_metrics_text

        with PredictionService.from_export_dir(export_dir) as service:
            service.predict_proba_batch("logreg", request_sequences[:4])
            text = render_metrics_text({"service": service.stats()}, prefix="repro")
            assert "repro_service_stages_featurize_count 4" in text
            assert "repro_service_stages_predict_count 4" in text

    def test_cache_stats_exposed(self, export_dir, request_sequences):
        with PredictionService.from_export_dir(
            export_dir, cache_size=64, cache_stripes=8
        ) as service:
            service.predict_proba_batch("logreg", request_sequences[:4])
            cache = service.stats()["cache"]
            assert cache["capacity"] == 64
            assert cache["stripes"] == 8
            assert cache["entries"] == 4


class TestCorpusWarm:
    def test_warm_corpus_seeds_per_sequence_artifacts(self, export_dir, tiny_corpus):
        # The store must be sized for the corpus: seeded artifacts live in
        # the bounded LRU layer (no cache_dir here) and evict oldest-first.
        store = FeatureStore(max_entries=4 * len(tiny_corpus))
        with PredictionService.from_export_dir(export_dir, store=store) as service:
            seeded = service.warm_corpus(tiny_corpus)
            # Both bundled models share one pipeline config.
            assert seeded == len(tiny_corpus)
            assert service.store.miss_count("sequence_tokens") == 0

            sequences = [r.sequence for r in tiny_corpus.recipes[:20]]
            service.predict_proba_batch("logreg", sequences)
            # Featurization of warmed recipes is pure cache hits.
            assert service.store.miss_count("sequence_tokens") == 0
            assert service.store.hit_count("sequence_tokens") >= len(sequences)

    def test_warm_corpus_shares_shard_cache_with_training_engine(
        self, export_dir, tiny_corpus, tmp_path
    ):
        from repro.pipeline.engine import SHARD_KIND, CorpusEngine

        cache_dir = tmp_path / "shared-cache"
        # Training side featurizes the corpus shard-wise into a shared cache.
        training = CorpusEngine(FeatureStore(cache_dir=cache_dir), shard_size=16)
        training.tokens(tiny_corpus, PipelineConfig(split_items=True))
        training_misses = training.store.miss_count(SHARD_KIND)
        assert training_misses > 0

        # The serving side, given an engine over the same cache dir, reuses
        # the training shards instead of re-running preprocessing.
        store = FeatureStore(cache_dir=cache_dir)
        engine = CorpusEngine(store, shard_size=16)
        with PredictionService.from_export_dir(export_dir, engine=engine) as service:
            assert service.store is store
            service.warm_corpus(tiny_corpus, names=["logreg"])
            assert store.miss_count(SHARD_KIND) == 0
            assert store.miss_count("tokens") == 0
            assert store.disk_hits["tokens"] == 1

    def test_engine_over_foreign_store_rejected(self, export_dir):
        from repro.pipeline.engine import CorpusEngine
        from repro.pipeline.store import FeatureStore

        with pytest.raises(ValueError, match="feature store"):
            PredictionService(store=FeatureStore(), engine=CorpusEngine(FeatureStore()))

    def test_warm_corpus_matches_request_path_output(self, export_dir, tiny_corpus):
        with PredictionService.from_export_dir(export_dir) as warmed, \
             PredictionService.from_export_dir(export_dir) as cold:
            warmed.warm_corpus(tiny_corpus)
            sequences = [r.sequence for r in tiny_corpus.recipes[:10]]
            np.testing.assert_array_equal(
                warmed.predict_proba_batch("logreg", sequences),
                cold.predict_proba_batch("logreg", sequences),
            )
