"""Tests for the sharded, epoch-guarded result cache — unit semantics plus
a 16-thread hammer across hot-swaps (no stale-epoch entry may survive)."""

import threading
import time

import numpy as np
import pytest

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.models.registry import create_model
from repro.serving import PredictionService
from repro.serving.cache import ShardedResultCache


def _row(value):
    return np.asarray([float(value)])


class TestBasicSemantics:
    def test_put_get_roundtrip(self):
        cache = ShardedResultCache(capacity=64)
        assert cache.put("m", ("a",), _row(1))
        np.testing.assert_array_equal(cache.get("m", ("a",)), _row(1))

    def test_miss_returns_none(self):
        assert ShardedResultCache(capacity=64).get("m", ("a",)) is None

    def test_get_returns_copy(self):
        cache = ShardedResultCache(capacity=64)
        cache.put("m", ("a",), _row(1))
        first = cache.get("m", ("a",))
        first[0] = 99.0
        np.testing.assert_array_equal(cache.get("m", ("a",)), _row(1))

    def test_put_stores_copy(self):
        cache = ShardedResultCache(capacity=64)
        value = _row(1)
        cache.put("m", ("a",), value)
        value[0] = 99.0
        np.testing.assert_array_equal(cache.get("m", ("a",)), _row(1))

    def test_zero_capacity_disables(self):
        cache = ShardedResultCache(capacity=0)
        assert not cache.put("m", ("a",), _row(1))
        assert cache.get("m", ("a",)) is None
        assert len(cache) == 0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            ShardedResultCache(capacity=-1)
        with pytest.raises(ValueError, match="n_stripes"):
            ShardedResultCache(capacity=8, n_stripes=0)


class TestBounds:
    def test_total_entries_never_exceed_capacity(self):
        cache = ShardedResultCache(capacity=32, n_stripes=8)
        for index in range(500):
            cache.put("m", (f"seq-{index}",), _row(index))
        assert len(cache) <= 32

    def test_stripes_clamped_to_capacity(self):
        cache = ShardedResultCache(capacity=4, n_stripes=16)
        assert cache.n_stripes == 4
        assert cache.stripe_capacity == 1
        for index in range(100):
            cache.put("m", (f"seq-{index}",), _row(index))
        assert len(cache) <= 4

    def test_lru_eviction_within_stripe(self):
        cache = ShardedResultCache(capacity=2, n_stripes=1)
        cache.put("m", ("a",), _row(1))
        cache.put("m", ("b",), _row(2))
        cache.get("m", ("a",))  # refresh a
        cache.put("m", ("c",), _row(3))  # evicts b
        assert cache.get("m", ("a",)) is not None
        assert cache.get("m", ("b",)) is None
        assert cache.get("m", ("c",)) is not None

    def test_stripe_sizes_sum_to_len(self):
        cache = ShardedResultCache(capacity=64, n_stripes=8)
        for index in range(40):
            cache.put("m", (f"seq-{index}",), _row(index))
        assert sum(cache.stripe_sizes()) == len(cache)

    def test_stats_payload(self):
        cache = ShardedResultCache(capacity=64, n_stripes=8)
        cache.put("m", ("a",), _row(1))
        stats = cache.stats()
        assert stats == {
            "entries": 1,
            "capacity": 64,
            "stripes": 8,
            "stripe_capacity": 8,
            "in_flight": 0,
        }


class TestEpochsAndInvalidation:
    def test_invalidate_drops_only_named_model(self):
        # stripe_capacity must cover every entry landing in one stripe even
        # under an adversarial PYTHONHASHSEED, or LRU eviction (not
        # invalidation) drops entries and the counts below flake.
        cache = ShardedResultCache(capacity=640)
        for index in range(10):
            cache.put("old", (f"seq-{index}",), _row(index))
            cache.put("other", (f"seq-{index}",), _row(index))
        dropped = cache.invalidate("old")
        assert dropped == 10
        assert len(cache) == 10
        assert cache.get("other", ("seq-3",)) is not None
        assert cache.get("old", ("seq-3",)) is None

    def test_invalidate_bumps_epoch(self):
        cache = ShardedResultCache(capacity=64)
        before = cache.epoch("m")
        cache.invalidate("m")
        assert cache.epoch("m") == before + 1

    def test_stale_epoch_put_dropped(self):
        cache = ShardedResultCache(capacity=64)
        stale = cache.epoch("m")
        cache.invalidate("m")
        assert not cache.put("m", ("a",), _row(1), epoch=stale)
        assert cache.get("m", ("a",)) is None

    def test_current_epoch_put_stored(self):
        cache = ShardedResultCache(capacity=64)
        cache.invalidate("m")
        assert cache.put("m", ("a",), _row(1), epoch=cache.epoch("m"))
        assert cache.get("m", ("a",)) is not None

    def test_clear_keeps_epochs(self):
        cache = ShardedResultCache(capacity=64)
        cache.invalidate("m")
        cache.put("m", ("a",), _row(1))
        cache.clear()
        assert len(cache) == 0
        assert cache.epoch("m") == 1


class TestConcurrentHotSwap:
    def test_sixteen_threads_no_stale_epoch_entries(self):
        """16 writer threads race repeated invalidations; afterwards every
        surviving entry must carry the final epoch — an entry tagged with an
        older epoch would be a stale-epoch hit."""
        cache = ShardedResultCache(capacity=4096, n_stripes=16)
        keys = [(f"seq-{index}",) for index in range(64)]
        stop = threading.Event()
        failures: list[str] = []

        def writer(worker: int) -> None:
            rng = np.random.default_rng(worker)
            while not stop.is_set():
                key = keys[int(rng.integers(len(keys)))]
                epoch = cache.epoch("m")
                # The "compute" whose result is only valid for this epoch.
                value = _row(epoch)
                cache.put("m", key, value, epoch=epoch)
                seen = cache.get("m", key)
                if seen is not None and seen[0] > cache.epoch("m"):
                    failures.append(f"entry from future epoch {seen[0]}")

        threads = [
            threading.Thread(target=writer, args=(worker,)) for worker in range(16)
        ]
        for thread in threads:
            thread.start()
        for _ in range(20):  # hot-swap storm while writers hammer
            time.sleep(0.005)
            cache.invalidate("m")
        stop.set()
        for thread in threads:
            thread.join()
        final_epoch = cache.epoch("m")
        for stripe in cache._stripes:
            for value in list(stripe.values()):
                assert value[0] == final_epoch, (
                    f"stale-epoch entry survived: epoch {value[0]} != {final_epoch}"
                )
        assert not failures

    def test_service_hot_swap_under_concurrent_load(self, tiny_corpus, tmp_path):
        """Hammer PredictionService.predict_proba from 16 threads across a
        live hot-swap; afterwards every cached answer must be the new
        model's."""
        config = ExperimentConfig(
            models=("logreg",),
            seed=3,
            statistical_kwargs={"logreg": {"max_iter": 30}},
            export_dir=str(tmp_path),
        )
        ExperimentRunner(config, corpus=tiny_corpus).run()
        replacement = create_model("logreg", max_iter=10)
        replacement.fit(tiny_corpus)
        sequences = [recipe.sequence for recipe in tiny_corpus.recipes[:16]]
        errors: list[BaseException] = []

        with PredictionService.from_export_dir(
            tmp_path, flush_interval=0.0
        ) as service:

            def hammer(worker: int) -> None:
                rng = np.random.default_rng(worker)
                try:
                    for _ in range(30):
                        sequence = sequences[int(rng.integers(len(sequences)))]
                        service.predict_proba("logreg", sequence)
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(worker,)) for worker in range(16)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.01)
            service.add_model(replacement, name="logreg")  # live hot-swap
            for thread in threads:
                thread.join()
            assert not errors
            # Every answer served from the cache now must be the new model's
            # (batch composition can shift the last ulp — the service's
            # documented contract — so compare at 1e-12, not bitwise).
            expected = replacement.predict_proba_sequences(sequences)
            for sequence, row in zip(sequences, expected):
                served = service.predict_proba("logreg", sequence)
                np.testing.assert_allclose(served, row, rtol=0, atol=1e-12)
                assert int(np.argmax(served)) == int(np.argmax(row))


class TestSingleFlight:
    def test_leader_then_followers(self):
        cache = ShardedResultCache(capacity=64, n_stripes=8)
        flight, is_leader = cache.join_flight("m", ("a",), epoch=0)
        assert is_leader
        joined, joined_leader = cache.join_flight("m", ("a",), epoch=0)
        assert joined is flight and not joined_leader
        assert cache.inflight_count() == 1
        cache.finish_flight("m", ("a",), flight, value=_row(7))
        assert flight.event.is_set()
        assert flight.value[0] == 7.0
        assert cache.inflight_count() == 0

    def test_flight_value_stored_as_copy(self):
        cache = ShardedResultCache(capacity=64, n_stripes=8)
        flight, _ = cache.join_flight("m", ("a",), epoch=0)
        value = _row(7)
        cache.finish_flight("m", ("a",), flight, value=value)
        value[0] = -1.0
        assert flight.value[0] == 7.0

    def test_error_published_to_flight(self):
        cache = ShardedResultCache(capacity=64, n_stripes=8)
        flight, _ = cache.join_flight("m", ("a",), epoch=0)
        boom = RuntimeError("boom")
        cache.finish_flight("m", ("a",), flight, error=boom)
        assert flight.event.is_set()
        assert flight.error is boom and flight.value is None

    def test_epoch_mismatch_opens_fresh_flight(self):
        """A caller holding a newer epoch must not join a pre-swap flight:
        it displaces the stale record and leads a fresh one."""
        cache = ShardedResultCache(capacity=64, n_stripes=8)
        stale, _ = cache.join_flight("m", ("a",), epoch=0)
        cache.invalidate("m")  # hot-swap: epoch 0 -> 1
        fresh, is_leader = cache.join_flight("m", ("a",), epoch=cache.epoch("m"))
        assert is_leader and fresh is not stale
        # The displaced leader finishing must not deregister the new flight.
        cache.finish_flight("m", ("a",), stale, value=_row(0))
        assert cache.inflight_count() == 1
        again, again_leader = cache.join_flight("m", ("a",), epoch=cache.epoch("m"))
        assert again is fresh and not again_leader
        cache.finish_flight("m", ("a",), fresh, value=_row(1))

    def test_flights_work_with_caching_disabled(self):
        cache = ShardedResultCache(capacity=0)
        flight, is_leader = cache.join_flight("m", ("a",), epoch=0)
        assert is_leader
        cache.finish_flight("m", ("a",), flight, value=_row(3))
        assert flight.value[0] == 3.0


class TestCoalescingAcrossHotSwap:
    def test_v1_flight_never_satisfies_waiters_after_swap(self, tiny_corpus):
        """Satellite: a single-flight computation started on v1 must not
        satisfy waiters once a swap to v2 bumps the epoch — the follower
        retries and returns v2's prediction (the leader keeps its pinned v1
        result, the historical contract)."""
        v1 = create_model("logreg", max_iter=30)
        v1.fit(tiny_corpus)
        v2 = create_model("logreg", max_iter=5)
        v2.fit(tiny_corpus)
        sequence = tiny_corpus.recipes[0].sequence

        entered = threading.Event()
        release = threading.Event()
        original = v1.predict_proba_features

        def gated(features, *, _original=original):
            entered.set()
            assert release.wait(timeout=10.0)
            return _original(features)

        v1.predict_proba_features = gated
        try:
            with PredictionService({"cuisine": v1}) as service:
                outcome = {}

                def leader():
                    outcome["leader"] = service.predict_proba("cuisine", sequence)

                def follower():
                    outcome["follower"] = service.predict_proba("cuisine", sequence)

                leader_thread = threading.Thread(target=leader)
                leader_thread.start()
                assert entered.wait(timeout=10.0)  # v1 is mid-computation
                follower_thread = threading.Thread(target=follower)
                follower_thread.start()
                time.sleep(0.05)  # let the follower join the flight
                service.add_model(v2, name="cuisine")  # hot-swap bumps epoch
                release.set()  # v1's computation completes *after* the swap
                leader_thread.join(timeout=10.0)
                follower_thread.join(timeout=10.0)
                assert not leader_thread.is_alive()
                assert not follower_thread.is_alive()
                stats = service.stats()
        finally:
            v1.predict_proba_features = original

        expected_v1 = v1.predict_proba_sequences([sequence])[0]
        expected_v2 = v2.predict_proba_sequences([sequence])[0]
        # Model versions differ enough that v1 != v2 for this input.
        assert not np.allclose(expected_v1, expected_v2, atol=1e-12)
        # Leader: pinned to the model it started on.
        np.testing.assert_allclose(outcome["leader"], expected_v1, rtol=0, atol=1e-12)
        # Follower: never served v1's stale result.
        np.testing.assert_allclose(outcome["follower"], expected_v2, rtol=0, atol=1e-12)
        assert stats["coalesced_stale"] >= 1
        # The v1 result was epoch-guarded out of the cache: a fresh request
        # now gets v2's answer (from cache or a fresh pass), never v1's.
        with PredictionService({"cuisine": v2}) as check:
            served = check.predict_proba("cuisine", sequence)
        np.testing.assert_allclose(served, expected_v2, rtol=0, atol=1e-12)
