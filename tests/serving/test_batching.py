"""Tests for batch policies, the policy-driven worker, and coalescing."""

import threading
import time

import numpy as np
import pytest

from repro.data.generator import GeneratorConfig, RecipeDBGenerator
from repro.models.registry import create_model
from repro.serving import PredictionService
from repro.serving.batching import (
    AdaptiveBatchPolicy,
    BatchPlan,
    BatchPolicy,
    FixedBatchPolicy,
    resolve_batch_policy,
)
from repro.serving.featurizer import BatchFeaturizer

MODELS = ("logreg", "naive_bayes")
MODEL_KWARGS = {"logreg": {"max_iter": 30}, "naive_bayes": {}}


@pytest.fixture(scope="module")
def fitted_models(tiny_corpus):
    models = {}
    for name in MODELS:
        model = create_model(name, **MODEL_KWARGS[name])
        model.fit(tiny_corpus)
        models[name] = model
    return models


@pytest.fixture(scope="module")
def sequences(tiny_corpus):
    return [recipe.sequence for recipe in tiny_corpus.recipes[:12]]


def _slow(model, seconds):
    """Wrap the model's classifier pass with a sleep (benchmark-style hook)."""
    original = model.predict_proba_features

    def slowed(features, *, _original=original):
        time.sleep(seconds)
        return _original(features)

    model.predict_proba_features = slowed
    return original


class TestFixedBatchPolicy:
    def test_constant_plan(self):
        policy = FixedBatchPolicy(max_batch_size=8, flush_interval=0.01)
        for depth in (0, 1, 7, 8, 500):
            assert policy.plan(depth) == BatchPlan(limit=8, window=0.01)

    def test_describe(self):
        policy = FixedBatchPolicy(max_batch_size=8, flush_interval=0.01)
        assert policy.describe() == {"policy": "fixed", "limit": 8, "window_ms": 10.0}

    @pytest.mark.parametrize("kwargs", [{"max_batch_size": 0}, {"flush_interval": -1}])
    def test_invalid_arguments_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FixedBatchPolicy(**kwargs)


class TestAdaptiveBatchPolicy:
    def test_deep_backlog_never_waits(self):
        policy = AdaptiveBatchPolicy(max_batch_size=16, slo_ms=25.0)
        assert policy.plan(16) == BatchPlan(limit=16, window=0.0)
        assert policy.plan(1000).window == 0.0

    def test_idle_service_flushes_immediately(self):
        policy = AdaptiveBatchPolicy(max_batch_size=16, slo_ms=25.0)
        assert policy.plan(0).window == 0.0  # fresh policy: no load observed

    def test_moderate_load_waits_a_slo_fraction(self):
        policy = AdaptiveBatchPolicy(max_batch_size=16, slo_ms=25.0, window_fraction=0.2)
        plan = policy.plan(3)
        assert plan.limit == 16
        assert plan.window == pytest.approx(0.005)  # 20% of 25 ms

    def test_busy_history_keeps_window_on_empty_queue(self):
        policy = AdaptiveBatchPolicy(max_batch_size=16, slo_ms=25.0)
        for _ in range(10):
            policy.observe(batch_size=8, queue_depth=4)
        assert policy.plan(0).window > 0  # traffic is coming; gather a batch

    def test_load_signal_decays_back_to_idle(self):
        policy = AdaptiveBatchPolicy(max_batch_size=16, slo_ms=25.0)
        for _ in range(10):
            policy.observe(batch_size=8, queue_depth=4)
        for _ in range(50):
            policy.observe(batch_size=1, queue_depth=0)
        assert policy.plan(0).window == 0.0

    def test_describe_reports_live_signal(self):
        policy = AdaptiveBatchPolicy(max_batch_size=16, slo_ms=30.0)
        policy.observe(batch_size=5, queue_depth=3)
        described = policy.describe()
        assert described["policy"] == "adaptive"
        assert described["slo_ms"] == 30.0
        assert described["load_ewma"] > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"slo_ms": 0},
            {"slo_ms": -5},
            {"window_fraction": 0},
            {"window_fraction": 1.5},
            {"ewma_alpha": 0},
        ],
    )
    def test_invalid_arguments_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy(**{"max_batch_size": 16, "slo_ms": 25.0, **kwargs})


class TestResolveBatchPolicy:
    def test_none_and_fixed_build_fixed(self):
        for spec in (None, "fixed"):
            policy = resolve_batch_policy(spec, max_batch_size=4, flush_interval=0.02)
            assert isinstance(policy, FixedBatchPolicy)
            assert policy.plan(0) == BatchPlan(limit=4, window=0.02)

    def test_adaptive_uses_slo(self):
        policy = resolve_batch_policy(
            "adaptive", max_batch_size=4, flush_interval=0.02, slo_ms=50.0
        )
        assert isinstance(policy, AdaptiveBatchPolicy)
        assert policy.slo_ms == 50.0

    def test_adaptive_default_slo(self):
        policy = resolve_batch_policy("adaptive", max_batch_size=4, flush_interval=0.02)
        assert policy.slo_ms == 25.0

    def test_instance_passes_through(self):
        instance = FixedBatchPolicy(2, 0.0)
        assert (
            resolve_batch_policy(instance, max_batch_size=64, flush_interval=1.0)
            is instance
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown batch policy"):
            resolve_batch_policy("greedy", max_batch_size=4, flush_interval=0.02)


class _HostilePolicy(BatchPolicy):
    """Returns plans that would crash an unclamped worker loop."""

    def plan(self, queue_depth: int) -> BatchPlan:
        return BatchPlan(limit=0, window=-1.0)


class TestWorkerClampRegression:
    def test_negative_window_and_zero_limit_still_serve(self, fitted_models, sequences):
        """A policy window < 0 must never reach queue.get(timeout=...) — the
        stdlib raises ValueError on negative timeouts — and a limit < 1 must
        not wedge the loop; both clamp (window→0, limit→1) and requests are
        answered normally."""
        with PredictionService(
            {"m": fitted_models["logreg"]}, batch_policy=_HostilePolicy()
        ) as service:
            rows = [service.predict_proba("m", sequence) for sequence in sequences[:4]]
            assert all(row.shape == rows[0].shape for row in rows)
            stats = service.stats()
            assert stats["requests"] == 4
            assert stats["batches_flushed"] == 4  # limit clamped to 1
            assert stats["largest_batch"] == 1

    def test_negative_flush_interval_still_rejected_at_construction(self):
        with pytest.raises(ValueError, match="flush_interval"):
            PredictionService(flush_interval=-0.001)


class TestPolicyDrivenService:
    @pytest.mark.parametrize("policy", ["fixed", "adaptive"])
    def test_policies_serve_identical_results(self, fitted_models, sequences, policy):
        with PredictionService(
            {"m": fitted_models["logreg"]}, batch_policy=policy, cache_size=0
        ) as service:
            rows = [service.predict_proba("m", sequence) for sequence in sequences]
        reference = [
            fitted_models["logreg"].predict_proba_sequences([sequence])[0]
            for sequence in sequences
        ]
        np.testing.assert_allclose(np.vstack(rows), np.vstack(reference), atol=1e-12)

    def test_stats_expose_policy_and_distributions(self, fitted_models, sequences):
        with PredictionService(
            {"m": fitted_models["logreg"]}, batch_policy="adaptive", slo_ms=40.0
        ) as service:
            service.predict_proba("m", sequences[0])
            stats = service.stats()
        assert stats["batching"]["policy"] == "adaptive"
        assert stats["batching"]["slo_ms"] == 40.0
        assert stats["stages"]["queue_depth"]["count"] == 1
        assert stats["stages"]["batch_size"]["count"] == 1
        assert stats["stages"]["batch_size"]["max"] == 1.0

    def test_adaptive_batches_under_concurrency(self, fitted_models, sequences):
        """Concurrent distinct requests still micro-batch under adaptive."""
        model = fitted_models["logreg"]
        original = _slow(model, 0.01)
        try:
            with PredictionService(
                {"m": model}, batch_policy="adaptive", cache_size=0
            ) as service:
                threads = [
                    threading.Thread(
                        target=service.predict_proba, args=("m", sequence)
                    )
                    for sequence in sequences
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                stats = service.stats()
                assert stats["batched_requests"] == len(sequences)
                assert stats["largest_batch"] > 1
        finally:
            model.predict_proba_features = original


class TestCoalescing:
    def test_identical_concurrent_requests_coalesce(self, fitted_models, sequences):
        model = fitted_models["logreg"]
        original = _slow(model, 0.03)
        try:
            with PredictionService({"m": model}, cache_size=0) as service:
                results = []
                lock = threading.Lock()

                def call():
                    row = service.predict_proba("m", sequences[0])
                    with lock:
                        results.append(row)

                threads = [threading.Thread(target=call) for _ in range(8)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                stats = service.stats()
        finally:
            model.predict_proba_features = original
        assert len(results) == 8
        assert stats["coalesced_hits"] >= 1
        # Coalesced waiters + the leader account for every request; the
        # model ran fewer passes than requests.
        assert stats["cache_misses"] + stats["coalesced_hits"] + stats[
            "cache_hits"
        ] == 8
        assert stats["batched_requests"] < 8
        reference = results[0]
        for row in results[1:]:
            assert np.array_equal(row, reference)

    def test_followers_receive_copies(self, fitted_models, sequences):
        model = fitted_models["logreg"]
        original = _slow(model, 0.03)
        try:
            with PredictionService({"m": model}, cache_size=0) as service:
                rows = []
                threads = [
                    threading.Thread(
                        target=lambda: rows.append(
                            service.predict_proba("m", sequences[0])
                        )
                    )
                    for _ in range(4)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        finally:
            model.predict_proba_features = original
        expected = rows[0].copy()
        rows[1][:] = -1.0  # a caller scribbling on its result
        others = [row for row in rows if row is not rows[1]]
        assert all(np.array_equal(row, expected) for row in others)

    def test_coalesce_off_runs_every_request(self, fitted_models, sequences):
        model = fitted_models["logreg"]
        original = _slow(model, 0.02)
        try:
            with PredictionService(
                {"m": model}, cache_size=0, coalesce=False
            ) as service:
                threads = [
                    threading.Thread(
                        target=service.predict_proba, args=("m", sequences[0])
                    )
                    for _ in range(6)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                stats = service.stats()
        finally:
            model.predict_proba_features = original
        assert stats["coalesced_hits"] == 0
        assert stats["cache_misses"] == 6
        assert stats["batched_requests"] == 6

    def test_leader_error_shared_by_followers(self, fitted_models, sequences):
        model = fitted_models["logreg"]
        original = model.predict_proba_features
        entered = threading.Event()

        def exploding(features):
            entered.set()
            time.sleep(0.02)
            raise RuntimeError("boom")

        model.predict_proba_features = exploding
        try:
            with PredictionService({"m": model}, cache_size=0) as service:
                errors = []
                lock = threading.Lock()

                def call():
                    try:
                        service.predict_proba("m", sequences[0])
                    except RuntimeError as exc:
                        with lock:
                            errors.append(exc)

                threads = [threading.Thread(target=call) for _ in range(5)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        finally:
            model.predict_proba_features = original
        assert len(errors) == 5
        assert all("boom" in str(exc) for exc in errors)


class TestBitwiseIdentity:
    """Acceptance: served rows are bitwise-identical to the per-sequence
    reference (one sequence per pass through the same token featurization)
    under both policies and with coalescing on."""

    @pytest.mark.parametrize("model_name", MODELS)
    @pytest.mark.parametrize("policy", ["fixed", "adaptive"])
    def test_sequential_predicts_bitwise(
        self, fitted_models, sequences, model_name, policy
    ):
        model = fitted_models[model_name]
        featurizer = BatchFeaturizer()
        with PredictionService(
            {"m": model}, batch_policy=policy, cache_size=0
        ) as service:
            tokens = featurizer.batch_tokens(
                [service._validated(s) for s in sequences],
                model.feature_spec().pipeline,
                store=service.store,
            )
            reference = np.vstack(
                [model.predict_proba_tokens([t]) for t in tokens]
            )
            served = np.vstack(
                [service.predict_proba("m", sequence) for sequence in sequences]
            )
        assert np.array_equal(reference, served)

    @pytest.mark.parametrize("model_name", MODELS)
    def test_coalesced_identical_requests_bitwise(
        self, fitted_models, sequences, model_name
    ):
        model = fitted_models[model_name]
        original = _slow(model, 0.02)
        featurizer = BatchFeaturizer()
        try:
            with PredictionService({"m": model}, cache_size=0) as service:
                validated = service._validated(sequences[0])
                tokens = featurizer.batch_tokens(
                    [validated], model.feature_spec().pipeline, store=service.store
                )
                rows = []
                lock = threading.Lock()

                def call():
                    row = service.predict_proba("m", sequences[0])
                    with lock:
                        rows.append(row)

                threads = [threading.Thread(target=call) for _ in range(6)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        finally:
            model.predict_proba_features = original
        reference = model.predict_proba_tokens([tokens[0]])[0]
        assert len(rows) == 6
        assert all(np.array_equal(row, reference) for row in rows)
