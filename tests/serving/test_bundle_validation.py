"""Tests for deterministic bundle discovery and up-front manifest validation."""

import json
import shutil

import pytest

from repro.data.splits import train_val_test_split
from repro.models.statistical import NaiveBayesModel
from repro.serving import ModelBundle, discover_bundles, validate_manifest
from repro.serving.bundle import bundle_name


@pytest.fixture(scope="module")
def bundle_dir(tiny_corpus, tmp_path_factory):
    """One fitted naive-bayes bundle under an export directory."""
    export_dir = tmp_path_factory.mktemp("validation-bundles")
    splits = train_val_test_split(tiny_corpus, seed=4)
    model = NaiveBayesModel(label_space=tiny_corpus.present_cuisines())
    model.fit(splits.train)
    model.save_bundle(export_dir / "naive_bayes")
    return export_dir


def _manifest(path) -> dict:
    return json.loads((path / "manifest.json").read_text(encoding="utf-8"))


def _write_manifest(path, manifest) -> None:
    (path / "manifest.json").write_text(json.dumps(manifest), encoding="utf-8")


class TestDiscovery:
    def test_deterministic_order(self, bundle_dir, tmp_path):
        export = tmp_path / "export"
        export.mkdir()
        # Directory names deliberately out of model-name order.
        for directory, model_name in [("z-dir", "alpha"), ("a-dir", "zeta")]:
            shutil.copytree(bundle_dir / "naive_bayes", export / directory)
            manifest = _manifest(export / directory)
            manifest["model"] = model_name
            _write_manifest(export / directory, manifest)
        discovered = discover_bundles(export)
        assert list(discovered) == ["alpha", "zeta"]  # sorted by model name
        assert discovered["alpha"] == export / "z-dir"

    def test_name_comes_from_manifest(self, bundle_dir, tmp_path):
        export = tmp_path / "export"
        export.mkdir()
        shutil.copytree(bundle_dir / "naive_bayes", export / "renamed-dir")
        assert bundle_name(export / "renamed-dir") == "naive_bayes"
        assert set(discover_bundles(export)) == {"naive_bayes"}

    def test_duplicate_names_raise(self, bundle_dir, tmp_path):
        export = tmp_path / "export"
        export.mkdir()
        shutil.copytree(bundle_dir / "naive_bayes", export / "copy-one")
        shutil.copytree(bundle_dir / "naive_bayes", export / "copy-two")
        with pytest.raises(ValueError, match="duplicate bundle name 'naive_bayes'"):
            discover_bundles(export)


class TestManifestValidation:
    def test_valid_bundle_passes(self, bundle_dir):
        manifest = validate_manifest(bundle_dir / "naive_bayes")
        assert manifest["model"] == "naive_bayes"
        assert isinstance(ModelBundle.load(bundle_dir / "naive_bayes"), ModelBundle)

    def test_missing_fields_named(self, bundle_dir, tmp_path):
        broken = tmp_path / "broken"
        shutil.copytree(bundle_dir / "naive_bayes", broken)
        manifest = _manifest(broken)
        del manifest["label_space"]
        del manifest["feature_spec"]
        _write_manifest(broken, manifest)
        with pytest.raises(ValueError, match=r"missing required fields \['feature_spec', 'label_space'\]"):
            ModelBundle.load(broken)

    def test_unknown_fields_named(self, bundle_dir, tmp_path):
        broken = tmp_path / "unknown"
        shutil.copytree(bundle_dir / "naive_bayes", broken)
        manifest = _manifest(broken)
        manifest["surprise"] = 1
        _write_manifest(broken, manifest)
        with pytest.raises(ValueError, match=r"unknown fields \['surprise'\]"):
            ModelBundle.load(broken)

    def test_bad_format_version(self, bundle_dir, tmp_path):
        broken = tmp_path / "version"
        shutil.copytree(bundle_dir / "naive_bayes", broken)
        manifest = _manifest(broken)
        manifest["format_version"] = 99
        _write_manifest(broken, manifest)
        with pytest.raises(ValueError, match="unsupported bundle format version 99"):
            ModelBundle.load(broken)

    def test_missing_archive_detected_before_load(self, bundle_dir, tmp_path):
        broken = tmp_path / "archive"
        shutil.copytree(bundle_dir / "naive_bayes", broken)
        for archive in broken.glob("arrays-*.npz"):
            archive.unlink()
        with pytest.raises(FileNotFoundError, match="references array archive"):
            ModelBundle.load(broken)

    def test_malformed_json(self, bundle_dir, tmp_path):
        broken = tmp_path / "json"
        shutil.copytree(bundle_dir / "naive_bayes", broken)
        (broken / "manifest.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            validate_manifest(broken)

    def test_missing_bundle_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no model bundle"):
            validate_manifest(tmp_path / "nowhere")
