"""Property tests: the batch featurizer is bitwise-identical to the
per-sequence path, across every pipeline configuration and registry model."""

import numpy as np
import pytest

from repro.features.hashing import HashingVectorizer
from repro.features.tfidf import TfidfVectorizer
from repro.models.registry import MODEL_NAMES, create_model
from repro.models.statistical import StatisticalModel
from repro.pipeline.store import FeatureStore
from repro.serving.featurizer import (
    BatchFeaturizer,
    PrecomputedHashingEncoder,
    PrecomputedTfidfEncoder,
)
from repro.text.pipeline import PipelineConfig

#: Every PipelineConfig combination over the four boolean axes.
ALL_CONFIGS = [
    PipelineConfig(
        lowercase=lowercase,
        remove_digits_symbols=remove,
        lemmatize=lemmatize,
        split_items=split,
    )
    for lowercase in (True, False)
    for remove in (True, False)
    for lemmatize in (True, False)
    for split in (True, False)
]


def _config_id(config):
    return (
        f"lc{int(config.lowercase)}-rm{int(config.remove_digits_symbols)}"
        f"-lm{int(config.lemmatize)}-sp{int(config.split_items)}"
    )


@pytest.fixture(scope="module")
def sequences(tiny_corpus):
    """A request micro-batch with heavy item overlap and exact duplicates."""
    batch = [recipe.sequence for recipe in tiny_corpus.recipes[:24]]
    batch += batch[:6]  # duplicate sequences within one batch
    batch.append(("Salted BUTTER 2kg", "onion!", "onion!", ""))
    return batch


def _sequential_tokens(sequences, config):
    chain = config.stage_chain()
    return [chain.run_sequence(sequence) for sequence in sequences]


class TestBatchTokensBitwise:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=_config_id)
    def test_all_pipeline_configs(self, sequences, config):
        batch = BatchFeaturizer().batch_tokens(sequences, config)
        assert batch == _sequential_tokens(sequences, config)

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_all_registry_model_specs(self, sequences, name):
        config = create_model(name).feature_spec().pipeline
        batch = BatchFeaturizer().batch_tokens(sequences, config)
        assert batch == _sequential_tokens(sequences, config)

    def test_store_path_matches_storeless(self, sequences):
        config = PipelineConfig()
        store = FeatureStore()
        with_store = BatchFeaturizer().batch_tokens(sequences, config, store=store)
        assert with_store == _sequential_tokens(sequences, config)

    def test_matches_store_sequence_tokens(self, sequences):
        """Same artifacts as FeatureStore.sequence_tokens would compute."""
        config = PipelineConfig()
        reference_store = FeatureStore()
        reference = [
            reference_store.sequence_tokens(sequence, config) for sequence in sequences
        ]
        batch = BatchFeaturizer().batch_tokens(sequences, config, store=FeatureStore())
        assert batch == reference

    def test_bounded_memo_stays_correct(self, sequences):
        config = PipelineConfig()
        featurizer = BatchFeaturizer(memo_size=2)  # constant eviction
        assert featurizer.batch_tokens(sequences, config) == _sequential_tokens(
            sequences, config
        )

    def test_memo_reused_across_batches(self, sequences):
        config = PipelineConfig()
        featurizer = BatchFeaturizer()
        first = featurizer.batch_tokens(sequences, config)
        second = featurizer.batch_tokens(sequences, config)
        assert first == second == _sequential_tokens(sequences, config)

    def test_empty_batch(self):
        assert BatchFeaturizer().batch_tokens([], PipelineConfig()) == []


class TestStoreAccounting:
    """The batch path keeps FeatureStore hit/miss counters identical."""

    def test_misses_counted_per_distinct_sequence(self, sequences):
        config = PipelineConfig()
        store = FeatureStore()
        BatchFeaturizer().batch_tokens(sequences, config, store=store)
        distinct = len({tuple(s) for s in sequences})
        assert store.miss_count("sequence_tokens") == distinct

    def test_warm_sequences_are_pure_hits(self, sequences):
        config = PipelineConfig()
        store = FeatureStore()
        featurizer = BatchFeaturizer()
        featurizer.batch_tokens(sequences, config, store=store)
        misses_before = store.miss_count("sequence_tokens")
        featurizer.batch_tokens(sequences, config, store=store)
        assert store.miss_count("sequence_tokens") == misses_before
        assert store.hit_count("sequence_tokens") >= len(sequences)


def _token_docs(sequences):
    chain = PipelineConfig(split_items=True).stage_chain()
    docs = [chain.run_sequence(sequence) for sequence in sequences]
    docs.append([])  # empty document
    docs.append(["never-in-vocabulary-token"])
    return docs


def _assert_csr_bitwise(reference, fused):
    """Identical CSR down to the internal layout (indices order included) —
    downstream sparse products sum in storage order, so layout matters."""
    assert reference.shape == fused.shape
    np.testing.assert_array_equal(reference.indptr, fused.indptr)
    np.testing.assert_array_equal(reference.indices, fused.indices)
    np.testing.assert_array_equal(reference.data, fused.data)


class TestPrecomputedEncoders:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"sublinear_tf": True},
            {"norm": "l1"},
            {"norm": None},
            {"smooth_idf": False},
        ],
        ids=lambda kwargs: ",".join(f"{k}={v}" for k, v in kwargs.items()) or "default",
    )
    def test_tfidf_encoder_bitwise(self, sequences, kwargs):
        docs = _token_docs(sequences)
        vectorizer = TfidfVectorizer(**kwargs)
        vectorizer.fit(docs[: len(docs) // 2])
        encoder = PrecomputedTfidfEncoder(vectorizer)
        _assert_csr_bitwise(vectorizer.transform(docs), encoder.encode(docs))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_features": 128},
            {"n_features": 128, "binary": True},
            {"n_features": 128, "alternate_sign": False},
            {"n_features": 8},  # heavy collisions, sign cancellation
        ],
        ids=["default", "binary", "no_sign", "tiny"],
    )
    def test_hashing_encoder_bitwise(self, sequences, kwargs):
        docs = _token_docs(sequences)
        vectorizer = HashingVectorizer(**kwargs)
        encoder = PrecomputedHashingEncoder(vectorizer)
        _assert_csr_bitwise(vectorizer.transform(docs), encoder.encode(docs))

    def test_hashing_memo_bound_respected(self, sequences):
        docs = _token_docs(sequences)
        vectorizer = HashingVectorizer(n_features=64)
        encoder = PrecomputedHashingEncoder(vectorizer, memo_size=3)
        _assert_csr_bitwise(vectorizer.transform(docs), encoder.encode(docs))
        assert len(encoder._memo) <= 3

    def test_unfitted_tfidf_rejected(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            PrecomputedTfidfEncoder(TfidfVectorizer())

    NGRAM_RANGES = [(1, 2), (2, 2), (1, 3), (3, 3)]

    @pytest.mark.parametrize("ngram_range", NGRAM_RANGES, ids=str)
    def test_tfidf_ngram_encoder_bitwise(self, sequences, ngram_range):
        docs = _token_docs(sequences)
        vectorizer = TfidfVectorizer(ngram_range=ngram_range)
        vectorizer.fit(docs[: len(docs) // 2])
        encoder = PrecomputedTfidfEncoder(vectorizer)
        _assert_csr_bitwise(vectorizer.transform(docs), encoder.encode(docs))

    @pytest.mark.parametrize("ngram_range", NGRAM_RANGES, ids=str)
    def test_hashing_ngram_encoder_bitwise(self, sequences, ngram_range):
        docs = _token_docs(sequences)
        vectorizer = HashingVectorizer(n_features=128, ngram_range=ngram_range)
        encoder = PrecomputedHashingEncoder(vectorizer)
        _assert_csr_bitwise(vectorizer.transform(docs), encoder.encode(docs))

    def test_ngram_vectorizer_model_gets_encoder(self, sequences):
        """N-gram specs now qualify for the fused dispatch path."""
        docs = _token_docs(sequences)
        model = create_model("naive_bayes")
        model.vectorizer = TfidfVectorizer(ngram_range=(1, 2)).fit(docs)
        assert isinstance(
            BatchFeaturizer().encoder_for(model), PrecomputedTfidfEncoder
        )


class TestEncoderDispatch:
    @pytest.fixture(scope="class")
    def fitted_logreg(self, tiny_corpus):
        model = create_model("logreg", max_iter=30)
        model.fit(tiny_corpus)
        return model

    def test_statistical_model_gets_tfidf_encoder(self, fitted_logreg):
        encoder = BatchFeaturizer().encoder_for(fitted_logreg)
        assert isinstance(encoder, PrecomputedTfidfEncoder)

    def test_encoder_cached_per_model(self, fitted_logreg):
        featurizer = BatchFeaturizer()
        assert featurizer.encoder_for(fitted_logreg) is featurizer.encoder_for(
            fitted_logreg
        )

    def test_instance_override_disables_fast_path(self, fitted_logreg, tiny_corpus):
        model = create_model("logreg", max_iter=30)
        model.fit(tiny_corpus)
        model.encode_tokens = lambda token_lists: (_ for _ in ()).throw(
            RuntimeError("boom")
        )
        assert BatchFeaturizer().encoder_for(model) is None

    def test_sequential_model_has_no_encoder(self):
        assert BatchFeaturizer().encoder_for(create_model("lstm")) is None

    def test_encoder_predictions_bitwise(self, fitted_logreg, sequences):
        """The fused path reproduces predict_proba_tokens bit for bit."""
        config = fitted_logreg.feature_spec().pipeline
        tokens = _sequential_tokens(sequences, config)
        encoder = BatchFeaturizer().encoder_for(fitted_logreg)
        fused = fitted_logreg.predict_proba_features(encoder.encode(tokens))
        np.testing.assert_array_equal(
            fitted_logreg.predict_proba_tokens(tokens), fused
        )

    def test_hashing_vectorizer_model_dispatch(self, fitted_logreg, sequences):
        """A statistical model over hashed features gets the hashing encoder."""
        model = create_model("naive_bayes")
        model.vectorizer = HashingVectorizer(n_features=32)
        assert isinstance(model, StatisticalModel)
        encoder = BatchFeaturizer().encoder_for(model)
        assert isinstance(encoder, PrecomputedHashingEncoder)
