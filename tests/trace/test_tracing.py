"""Unit tests for the trace model: deterministic ids, sampling, spans,
context propagation, and the cross-process header."""

from __future__ import annotations

import threading

import pytest

from repro.trace import (
    TRACE_HEADER,
    Span,
    Trace,
    Tracer,
    activate,
    call_with_trace,
    current_span_id,
    current_trace,
    format_trace_header,
    parse_trace_header,
)


class TestDeterministicIds:
    def test_same_seed_key_order_same_ids(self):
        first = [Tracer(seed=7).trace_id_for("user-1") for _ in range(3)]
        second = [Tracer(seed=7).trace_id_for("user-1") for _ in range(3)]
        assert first == second

    def test_repeat_requests_per_key_get_distinct_ids(self):
        tracer = Tracer(seed=7)
        ids = [tracer.trace_id_for("user-1") for _ in range(3)]
        assert len(set(ids)) == 3

    def test_ids_are_128_bit_hex(self):
        trace_id = Tracer(seed=0).trace_id_for("anything")
        assert len(trace_id) == 32
        assert all(c in "0123456789abcdef" for c in trace_id)

    def test_seed_and_key_both_change_the_id(self):
        base = Tracer(seed=1).trace_id_for("k")
        assert Tracer(seed=2).trace_id_for("k") != base
        assert Tracer(seed=1).trace_id_for("other") != base

    def test_key_tracking_is_bounded(self):
        tracer = Tracer(seed=0)
        for i in range(70000):
            tracer._key_counts.setdefault(f"k{i}", 1)
        tracer.trace_id_for("fresh")  # triggers the deterministic clear
        assert len(tracer._key_counts) == 1


class TestSampling:
    def test_sample_extremes(self):
        assert Tracer(sample=1.0).head_sampled("any")
        assert not Tracer(sample=0.0).head_sampled("any")

    def test_verdict_is_per_key_consistent(self):
        tracer = Tracer(seed=3, sample=0.5)
        for key in ("a", "b", "c", "d"):
            assert tracer.head_sampled(key) == tracer.head_sampled(key)

    def test_rate_roughly_honored(self):
        tracer = Tracer(seed=5, sample=0.25)
        hits = sum(tracer.head_sampled(f"key-{i}") for i in range(2000))
        assert 0.18 < hits / 2000 < 0.32

    def test_raising_the_rate_keeps_previously_sampled_keys(self):
        # The verdict hashes only (seed, key) against the rate, so every key
        # sampled at 10% is still sampled at 50% — rates nest.
        low = Tracer(seed=9, sample=0.1)
        high = Tracer(seed=9, sample=0.5)
        keys = [f"key-{i}" for i in range(500)]
        sampled_low = {key for key in keys if low.head_sampled(key)}
        sampled_high = {key for key in keys if high.head_sampled(key)}
        assert sampled_low <= sampled_high

    def test_disabled_tracer_returns_none(self):
        tracer = Tracer(enabled=False)
        assert tracer.begin("k") is None
        assert tracer.adopt("ab" * 16, "k", sampled=True) is None

    def test_begin_carries_verdict_and_adopt_overrides(self):
        tracer = Tracer(seed=0, sample=0.0)
        trace = tracer.begin("k")
        assert trace is not None and not trace.sampled
        adopted = tracer.adopt("ab" * 16, "k", sampled=True)
        assert adopted.trace_id == "ab" * 16 and adopted.sampled


class TestSpans:
    def test_span_ids_sequential_and_parented(self):
        trace = Trace("t" * 32, "k", sampled=True)
        root = trace.start_span("root")
        child = trace.start_span("child", parent=root.span_id)
        assert (root.span_id, child.span_id) == ("s1", "s2")
        assert child.parent_id == "s1"
        assert trace.root is root

    def test_end_span_sets_duration_once(self):
        trace = Trace("t" * 32, "k", sampled=True)
        span = trace.start_span("op")
        trace.end_span(span)
        first = span.duration_ms
        trace.end_span(span)
        assert span.duration_ms == first >= 0.0

    def test_add_span_records_prebuilt_interval(self):
        trace = Trace("t" * 32, "k", sampled=True)
        span = trace.add_span("stage", start_ms=1.5, duration_ms=2.5, parent="s9")
        assert (span.start_ms, span.duration_ms, span.parent_id) == (1.5, 2.5, "s9")
        assert trace.duration_ms >= 4.0

    def test_span_context_manager_activates_and_marks_errors(self):
        trace = Trace("t" * 32, "k", sampled=True)
        with trace.span("outer") as outer:
            assert current_trace() is trace
            assert current_span_id() == outer.span_id
            inner = trace.start_span("inner")  # ambient parent
            assert inner.parent_id == outer.span_id
        assert current_trace() is None
        with pytest.raises(RuntimeError):
            with trace.span("bad"):
                raise RuntimeError("boom")
        assert trace.error
        assert trace.spans[-1].attrs["error"] is True
        assert trace.spans[-1].duration_ms is not None

    def test_to_dict_round_trips_spans(self):
        trace = Trace("t" * 32, "k", sampled=False)
        span = trace.start_span("op", attrs={"route": "cuisine"})
        trace.end_span(span)
        payload = trace.to_dict()
        assert payload["trace_id"] == "t" * 32
        assert payload["sampled"] is False
        restored = Span.from_dict(payload["spans"][0])
        assert restored.name == "op"
        assert restored.attrs == {"route": "cuisine"}

    def test_span_append_is_thread_safe(self):
        trace = Trace("t" * 32, "k", sampled=True)

        def work():
            for _ in range(200):
                trace.end_span(trace.start_span("op", parent="s0"))

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(trace.spans) == 800
        assert len({span.span_id for span in trace.spans}) == 800


class TestContextPropagation:
    def test_activate_none_is_a_noop(self):
        with activate(None):
            assert current_trace() is None

    def test_activate_sets_and_restores(self):
        trace = Trace("t" * 32, "k", sampled=True)
        with activate(trace, "s5"):
            assert current_trace() is trace
            assert current_span_id() == "s5"
        assert current_trace() is None

    def test_call_with_trace_hands_context_into_plain_calls(self):
        trace = Trace("t" * 32, "k", sampled=True)
        seen = call_with_trace(trace, "s2", lambda: (current_trace(), current_span_id()))
        assert seen == (trace, "s2")
        assert current_trace() is None

    def test_call_with_trace_none_degrades_to_plain_call(self):
        assert call_with_trace(None, None, lambda x: x + 1, 2) == 3


class TestHeader:
    def test_round_trip(self):
        trace = Trace("ab" * 16, "k", sampled=True)
        value = format_trace_header(trace, parent="s3")
        assert parse_trace_header(value) == ("ab" * 16, True, "s3")

    def test_unsampled_and_parentless(self):
        trace = Trace("cd" * 16, "k", sampled=False)
        assert parse_trace_header(format_trace_header(trace)) == ("cd" * 16, False, None)

    @pytest.mark.parametrize(
        "value",
        ["", ";", "not-hex;sampled=1", "ZZZ", "  ", ";sampled=1"],
    )
    def test_malformed_values_return_none(self, value):
        assert parse_trace_header(value) is None

    def test_unknown_parameters_ignored(self):
        assert parse_trace_header("ab" * 16 + ";future=x;sampled=1") == (
            "ab" * 16,
            True,
            None,
        )

    def test_header_name_is_stable(self):
        assert TRACE_HEADER == "X-Repro-Trace"
