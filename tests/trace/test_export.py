"""JSONL trace export and incident replay (traces → loadgen workload)."""

from __future__ import annotations

from repro.trace import load_traces_jsonl, save_traces_jsonl, workload_from_traces


def trace_payload(trace_id: str, key: str, sequence: list[str]) -> dict:
    return {
        "trace_id": trace_id,
        "key": key,
        "sampled": True,
        "error": False,
        "duration_ms": 4.2,
        "spans": [
            {
                "span_id": "s1",
                "name": "server.request",
                "parent_id": None,
                "start_ms": 0.0,
                "duration_ms": 4.0,
                "attrs": {"route": "cuisine", "sequence": sequence},
            },
            {
                "span_id": "s2",
                "name": "gateway.route",
                "parent_id": "s1",
                "start_ms": 0.5,
                "duration_ms": 3.0,
                "attrs": {},
            },
        ],
    }


class TestJsonlRoundTrip:
    def test_save_and_load(self, tmp_path):
        traces = [
            trace_payload("a" * 32, "user-1", ["pasta", "boil"]),
            trace_payload("b" * 32, "user-2", ["rice", "steam"]),
        ]
        path = tmp_path / "incident" / "traces.jsonl"
        assert save_traces_jsonl(traces, path) == 2
        assert load_traces_jsonl(path) == traces

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        path.write_text('{"trace_id": "x"}\n\n\n{"trace_id": "y"}\n')
        assert [t["trace_id"] for t in load_traces_jsonl(path)] == ["x", "y"]


class TestWorkloadFromTraces:
    def test_requests_rebuilt_in_export_order(self):
        traces = [
            trace_payload("a" * 32, "user-1", ["pasta", "boil"]),
            trace_payload("b" * 32, "user-2", ["rice", "steam"]),
        ]
        workload = workload_from_traces(traces, seed=9)
        assert len(workload) == 2
        assert workload.arrival == "replay"
        assert workload.seed == 9
        assert workload.requests[0].sequence == ("pasta", "boil")
        assert workload.requests[0].key == "user-1"
        assert workload.requests[1].key == "user-2"

    def test_arrivals_spaced_by_rate(self):
        traces = [
            trace_payload(f"{i:032x}", f"user-{i}", ["a", "b"]) for i in range(3)
        ]
        workload = workload_from_traces(traces, rate=100.0)
        assert [r.arrival for r in workload.requests] == [0.0, 0.01, 0.02]
        assert workload.rate == 100.0

    def test_traces_without_request_payloads_skipped(self):
        no_sequence = trace_payload("a" * 32, "user-1", ["a"])
        del no_sequence["spans"][0]["attrs"]["sequence"]
        no_spans = {"trace_id": "b" * 32, "key": "user-2", "spans": []}
        keeper = trace_payload("c" * 32, "user-3", ["rice"])
        workload = workload_from_traces([no_sequence, no_spans, keeper])
        assert len(workload) == 1
        assert workload.requests[0].key == "user-3"

    def test_round_trip_through_disk(self, tmp_path):
        traces = [trace_payload("a" * 32, "user-1", ["pasta", "boil"])]
        path = tmp_path / "t.jsonl"
        save_traces_jsonl(traces, path)
        workload = workload_from_traces(load_traces_jsonl(path))
        assert workload.requests[0].sequence == ("pasta", "boil")
