"""TraceStore retention: head + tail sampling verdicts, ring eviction,
exemplar tracking, and the stats counters."""

from __future__ import annotations

import pytest

from repro.trace import Trace, TraceStore


def make_trace(trace_id: str, *, sampled: bool, duration_ms: float = 1.0,
               error: bool = False) -> Trace:
    trace = Trace(trace_id, "k", sampled=sampled)
    trace.add_span("root", start_ms=0.0, duration_ms=duration_ms)
    trace.error = error
    return trace


class TestRetention:
    def test_sampled_traces_kept(self):
        store = TraceStore(8, slow_ms=100.0)
        assert store.offer(make_trace("a" * 32, sampled=True))
        assert store.get("a" * 32) is not None

    def test_unsampled_fast_clean_traces_dropped(self):
        store = TraceStore(8, slow_ms=100.0)
        assert not store.offer(make_trace("a" * 32, sampled=False))
        assert store.get("a" * 32) is None
        assert store.stats()["dropped"] == 1

    def test_slow_traces_kept_despite_head_verdict(self):
        store = TraceStore(8, slow_ms=100.0)
        assert store.offer(make_trace("b" * 32, sampled=False, duration_ms=150.0))
        stored = store.get("b" * 32)
        assert stored["slow"] is True
        assert store.stats()["kept_slow"] == 1

    def test_error_traces_kept_despite_head_verdict(self):
        store = TraceStore(8, slow_ms=100.0)
        assert store.offer(make_trace("c" * 32, sampled=False, error=True))
        assert store.get("c" * 32)["error"] is True
        assert store.stats()["kept_error"] == 1

    def test_offer_none_is_a_noop(self):
        store = TraceStore(8)
        assert not store.offer(None)
        assert store.stats()["offered"] == 0


class TestRingEviction:
    def test_oldest_evicted_first(self):
        store = TraceStore(3, slow_ms=1000.0)
        ids = [f"{i:032x}" for i in range(5)]
        for trace_id in ids:
            store.offer(make_trace(trace_id, sampled=True))
        assert len(store) == 3
        assert store.get(ids[0]) is None and store.get(ids[1]) is None
        assert all(store.get(trace_id) for trace_id in ids[2:])

    def test_list_is_newest_first_and_limited(self):
        store = TraceStore(10)
        ids = [f"{i:032x}" for i in range(4)]
        for trace_id in ids:
            store.offer(make_trace(trace_id, sampled=True))
        summaries = store.list(limit=2)
        assert [s["trace_id"] for s in summaries] == [ids[3], ids[2]]
        assert set(summaries[0]) == {
            "trace_id", "key", "duration_ms", "sampled", "slow", "error", "spans",
        }

    def test_dump_is_oldest_first_full_payloads(self):
        store = TraceStore(10)
        ids = [f"{i:032x}" for i in range(3)]
        for trace_id in ids:
            store.offer(make_trace(trace_id, sampled=True))
        dumped = store.dump()
        assert [t["trace_id"] for t in dumped] == ids
        assert all("spans" in t for t in dumped)

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceStore(0)


class TestExemplar:
    def test_tracks_slowest_kept_trace(self):
        store = TraceStore(8, slow_ms=1000.0)
        store.offer(make_trace("a" * 32, sampled=True, duration_ms=5.0))
        store.offer(make_trace("b" * 32, sampled=True, duration_ms=50.0))
        store.offer(make_trace("c" * 32, sampled=True, duration_ms=10.0))
        assert store.exemplar() == "b" * 32

    def test_eviction_invalidates_exemplar(self):
        store = TraceStore(1, slow_ms=1000.0)
        store.offer(make_trace("a" * 32, sampled=True, duration_ms=50.0))
        store.offer(make_trace("b" * 32, sampled=True, duration_ms=5.0))
        # The slowest trace was evicted by the ring; the exemplar must not
        # point at a trace /debug/traces/<id> can no longer serve.
        assert store.exemplar() != "a" * 32

    def test_empty_store_has_no_exemplar(self):
        assert TraceStore(4).exemplar() is None


class TestPutAndStats:
    def test_put_inserts_external_payloads(self):
        store = TraceStore(4)
        store.put({"trace_id": "d" * 32, "spans": []})
        assert store.get("d" * 32) == {"trace_id": "d" * 32, "spans": []}
        store.put({"spans": []})  # no id: ignored
        assert len(store) == 1

    def test_stats_shape_and_accounting(self):
        store = TraceStore(4, slow_ms=20.0)
        store.offer(make_trace("a" * 32, sampled=True, duration_ms=30.0))
        store.offer(make_trace("b" * 32, sampled=False, duration_ms=1.0))
        stats = store.stats()
        assert stats == {
            "offered": 2,
            "kept": 1,
            "kept_head": 1,
            "kept_slow": 1,
            "kept_error": 0,
            "dropped": 1,
            "capacity": 4,
            "slow_ms": 20.0,
        }
