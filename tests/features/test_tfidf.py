"""Tests for the TF-IDF vectorizer."""

import numpy as np
import pytest
from scipy import sparse

from repro.features.tfidf import TfidfVectorizer


DOCS = [
    "add onion garlic",
    "add onion tomato",
    "add rice steam",
    "noodle soy_sauce wok",
]


class TestIdf:
    def test_smoothed_idf_formula(self):
        vectorizer = TfidfVectorizer().fit(DOCS)
        vocab = vectorizer.vocabulary_
        n = len(DOCS)
        # "add" occurs in 3 documents, "wok" in 1.
        expected_add = np.log((1 + n) / (1 + 3)) + 1
        expected_wok = np.log((1 + n) / (1 + 1)) + 1
        assert vectorizer.idf_[vocab["add"]] == pytest.approx(expected_add)
        assert vectorizer.idf_[vocab["wok"]] == pytest.approx(expected_wok)

    def test_common_terms_get_lower_idf(self):
        vectorizer = TfidfVectorizer().fit(DOCS)
        vocab = vectorizer.vocabulary_
        assert vectorizer.idf_[vocab["add"]] < vectorizer.idf_[vocab["garlic"]]

    def test_unsmoothed_idf(self):
        vectorizer = TfidfVectorizer(smooth_idf=False).fit(DOCS)
        vocab = vectorizer.vocabulary_
        assert vectorizer.idf_[vocab["add"]] == pytest.approx(np.log(4 / 3) + 1)


class TestTransform:
    def test_l2_normalisation(self):
        matrix = TfidfVectorizer().fit_transform(DOCS)
        norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1)).ravel())
        assert np.allclose(norms, 1.0)

    def test_l1_normalisation(self):
        matrix = TfidfVectorizer(norm="l1").fit_transform(DOCS)
        sums = np.asarray(np.abs(matrix).sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)

    def test_no_normalisation(self):
        matrix = TfidfVectorizer(norm=None).fit_transform(DOCS)
        norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1)).ravel())
        assert not np.allclose(norms, 1.0)

    def test_fit_transform_equals_fit_then_transform(self):
        a = TfidfVectorizer().fit_transform(DOCS).toarray()
        vectorizer = TfidfVectorizer().fit(DOCS)
        b = vectorizer.transform(DOCS).toarray()
        assert np.allclose(a, b)

    def test_sublinear_tf_damps_repeats(self):
        docs = ["add add add add onion", "add onion"]
        plain = TfidfVectorizer(norm=None).fit_transform(docs).toarray()
        sub = TfidfVectorizer(norm=None, sublinear_tf=True).fit_transform(docs).toarray()
        vectorizer = TfidfVectorizer(norm=None).fit(docs)
        add_column = vectorizer.vocabulary_["add"]
        assert sub[0, add_column] < plain[0, add_column]

    def test_returns_sparse(self):
        assert sparse.issparse(TfidfVectorizer().fit_transform(DOCS))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform(DOCS)

    def test_invalid_norm_rejected(self):
        with pytest.raises(ValueError):
            TfidfVectorizer(norm="max")

    def test_empty_document_row_is_zero(self):
        vectorizer = TfidfVectorizer().fit(DOCS)
        matrix = vectorizer.transform(["zzz unknown terms"])
        assert matrix.nnz == 0


class TestDownweighting:
    def test_high_frequency_terms_downweighted(self):
        """The paper's stated reason for TF-IDF: damp 'add'-like features."""
        vectorizer = TfidfVectorizer()
        matrix = vectorizer.fit_transform(DOCS).toarray()
        vocab = vectorizer.vocabulary_
        # In document 0 both "add" and "garlic" occur once; garlic (rare) must
        # carry more weight than add (ubiquitous).
        assert matrix[0, vocab["garlic"]] > matrix[0, vocab["add"]]
