"""Tests for the count vectorizer."""

import numpy as np
import pytest
from scipy import sparse

from repro.features.counts import CountVectorizer


DOCS = [
    "onion garlic stir add",
    "onion tomato add add",
    "rice soy_sauce steam",
]


class TestFit:
    def test_vocabulary_contains_all_terms(self):
        vectorizer = CountVectorizer().fit(DOCS)
        expected = {"onion", "garlic", "stir", "add", "tomato", "rice", "soy_sauce", "steam"}
        assert set(vectorizer.vocabulary_) == expected
        assert vectorizer.n_features == len(expected)

    def test_min_df_prunes_rare_terms(self):
        vectorizer = CountVectorizer(min_df=2).fit(DOCS)
        assert set(vectorizer.vocabulary_) == {"onion", "add"}

    def test_max_df_prunes_common_terms(self):
        vectorizer = CountVectorizer(max_df=0.5).fit(DOCS)
        assert "add" not in vectorizer.vocabulary_
        assert "garlic" in vectorizer.vocabulary_

    def test_max_features_keeps_most_frequent(self):
        vectorizer = CountVectorizer(max_features=2).fit(DOCS)
        assert set(vectorizer.vocabulary_) == {"add", "onion"}

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            CountVectorizer().fit([])

    def test_over_pruning_raises(self):
        with pytest.raises(ValueError):
            CountVectorizer(min_df=10).fit(DOCS)

    @pytest.mark.parametrize(
        "kwargs", [{"ngram_range": (0, 1)}, {"ngram_range": (2, 1)}, {"min_df": 0}, {"max_df": 0.0}]
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            CountVectorizer(**kwargs)


class TestTransform:
    def test_counts_are_correct(self):
        vectorizer = CountVectorizer()
        matrix = vectorizer.fit_transform(DOCS)
        assert sparse.issparse(matrix)
        dense = matrix.toarray()
        add_column = vectorizer.vocabulary_["add"]
        assert dense[0, add_column] == 1
        assert dense[1, add_column] == 2
        assert dense[2, add_column] == 0

    def test_binary_mode(self):
        vectorizer = CountVectorizer(binary=True)
        dense = vectorizer.fit_transform(DOCS).toarray()
        assert dense.max() == 1.0

    def test_unknown_terms_ignored_at_transform(self):
        vectorizer = CountVectorizer().fit(DOCS)
        matrix = vectorizer.transform(["dragonfruit onion"])
        assert matrix.sum() == 1.0

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            CountVectorizer().transform(DOCS)

    def test_accepts_token_lists(self):
        vectorizer = CountVectorizer()
        matrix = vectorizer.fit_transform([["onion", "stir"], ["onion"]])
        assert matrix.shape == (2, 2)

    def test_shape_matches_documents_and_vocab(self):
        vectorizer = CountVectorizer()
        matrix = vectorizer.fit_transform(DOCS)
        assert matrix.shape == (3, vectorizer.n_features)


class TestNgrams:
    def test_bigrams_included(self):
        vectorizer = CountVectorizer(ngram_range=(1, 2)).fit(["onion garlic stir"])
        assert "onion garlic" in vectorizer.vocabulary_
        assert "garlic stir" in vectorizer.vocabulary_

    def test_bigram_counts(self):
        vectorizer = CountVectorizer(ngram_range=(2, 2))
        dense = vectorizer.fit_transform(["add stir add stir"]).toarray()
        column = vectorizer.vocabulary_["add stir"]
        assert dense[0, column] == 2

    def test_feature_names_sorted_by_column(self):
        vectorizer = CountVectorizer().fit(DOCS)
        names = vectorizer.get_feature_names()
        assert names == sorted(names)
        assert [vectorizer.vocabulary_[n] for n in names] == list(range(len(names)))
