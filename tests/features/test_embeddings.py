"""Tests for the skip-gram word2vec embeddings."""

import numpy as np
import pytest

from repro.features.embeddings import SkipGramConfig, SkipGramEmbeddings
from repro.text.vocabulary import Vocabulary


def _toy_documents(n_repeats: int = 60) -> list[list[str]]:
    """Two disjoint 'topics'; words within a topic always co-occur."""
    docs = []
    for _ in range(n_repeats):
        docs.append(["pasta", "tomato", "basil", "parmesan"])
        docs.append(["rice", "nori", "wasabi", "soy"])
    return docs


class TestSkipGramTraining:
    @pytest.fixture(scope="class")
    def trained(self):
        docs = _toy_documents()
        vocab = Vocabulary.build(docs)
        config = SkipGramConfig(dim=16, window=3, epochs=3, seed=5)
        return SkipGramEmbeddings(vocab, config).train(docs)

    def test_matrix_shape(self, trained):
        assert trained.matrix.shape == (len(trained.vocabulary), 16)

    def test_cooccurring_words_more_similar_than_cross_topic(self, trained):
        within = trained.similarity("pasta", "tomato")
        across = trained.similarity("pasta", "nori")
        assert within > across

    def test_most_similar_returns_topic_neighbours(self, trained):
        neighbours = [token for token, _ in trained.most_similar("rice", top_k=3)]
        assert set(neighbours) & {"nori", "wasabi", "soy"}

    def test_most_similar_excludes_query_and_specials(self, trained):
        neighbours = [token for token, _ in trained.most_similar("pasta", top_k=5)]
        assert "pasta" not in neighbours
        assert "[PAD]" not in neighbours

    def test_vector_lookup_for_unknown_token_uses_unk(self, trained):
        unk_vector = trained.input_vectors[trained.vocabulary.unk_id]
        assert np.allclose(trained.vector("dragonfruit"), unk_vector)


class TestSkipGramValidation:
    def test_empty_corpus_raises(self):
        vocab = Vocabulary.build([["onion"]])
        with pytest.raises(ValueError):
            SkipGramEmbeddings(vocab, SkipGramConfig(epochs=1)).train([])

    def test_deterministic_given_seed(self):
        docs = _toy_documents(10)
        vocab = Vocabulary.build(docs)
        config = SkipGramConfig(dim=8, epochs=1, seed=3)
        first = SkipGramEmbeddings(vocab, config).train(docs).matrix.copy()
        second = SkipGramEmbeddings(vocab, config).train(docs).matrix.copy()
        assert np.allclose(first, second)

    def test_similarity_is_symmetric(self):
        docs = _toy_documents(10)
        vocab = Vocabulary.build(docs)
        emb = SkipGramEmbeddings(vocab, SkipGramConfig(dim=8, epochs=1, seed=3)).train(docs)
        assert emb.similarity("pasta", "rice") == pytest.approx(emb.similarity("rice", "pasta"))
