"""Tests for the hashing vectorizer."""

import numpy as np
import pytest
from scipy import sparse

from repro.features.hashing import HashingVectorizer, _stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert _stable_hash("onion") == _stable_hash("onion")

    def test_different_terms_differ(self):
        assert _stable_hash("onion") != _stable_hash("garlic")


class TestHashingVectorizer:
    def test_fixed_output_width(self):
        vectorizer = HashingVectorizer(n_features=64)
        matrix = vectorizer.transform(["onion garlic", "rice"])
        assert matrix.shape == (2, 64)
        assert sparse.issparse(matrix)

    def test_stateless_fit_is_noop(self):
        vectorizer = HashingVectorizer(n_features=32)
        assert vectorizer.fit(["whatever"]) is vectorizer
        a = vectorizer.transform(["onion garlic"]).toarray()
        b = vectorizer.fit_transform(["onion garlic"]).toarray()
        assert np.allclose(a, b)

    def test_same_document_same_vector(self):
        vectorizer = HashingVectorizer(n_features=128)
        a = vectorizer.transform(["onion garlic stir"]).toarray()
        b = vectorizer.transform(["onion garlic stir"]).toarray()
        assert np.allclose(a, b)

    def test_counts_accumulate(self):
        vectorizer = HashingVectorizer(n_features=256, alternate_sign=False)
        matrix = vectorizer.transform(["add add add"]).toarray()
        assert matrix.sum() == 3.0

    def test_alternate_sign_spreads_mass(self):
        vectorizer = HashingVectorizer(n_features=8, alternate_sign=True)
        matrix = vectorizer.transform(["a b c d e f g h i j"]).toarray()
        assert matrix.min() < 0 or matrix.max() > 0

    def test_binary_mode(self):
        vectorizer = HashingVectorizer(n_features=16, alternate_sign=False, binary=True)
        matrix = vectorizer.transform(["add add add onion"]).toarray()
        assert set(np.unique(matrix)).issubset({0.0, 1.0})

    def test_ngrams(self):
        unigram = HashingVectorizer(n_features=512, ngram_range=(1, 1))
        bigram = HashingVectorizer(n_features=512, ngram_range=(1, 2))
        doc = ["onion garlic stir"]
        assert bigram.transform(doc).nnz >= unigram.transform(doc).nnz

    def test_accepts_token_lists(self):
        vectorizer = HashingVectorizer(n_features=32)
        matrix = vectorizer.transform([["onion", "stir"]])
        assert matrix.nnz > 0

    @pytest.mark.parametrize("kwargs", [{"n_features": 0}, {"ngram_range": (2, 1)}])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            HashingVectorizer(**kwargs)
