"""Tests for model parameter saving/loading and strict-mismatch behaviour."""

import numpy as np
import pytest

from repro.nn.layers import Embedding, Linear
from repro.nn.module import Module
from repro.nn.serialization import load_model, save_model


class _Classifier(Module):
    """A small two-layer network with a configurable hidden size."""

    def __init__(self, hidden: int = 8, with_head: bool = True, seed: int = 0) -> None:
        super().__init__()
        self.embedding = Embedding(12, hidden, seed=seed)
        self.projection = Linear(hidden, hidden, seed=seed + 1)
        if with_head:
            self.head = Linear(hidden, 3, seed=seed + 2)


def _snapshot(model: Module) -> dict[str, np.ndarray]:
    return {name: parameter.data.copy() for name, parameter in model.named_parameters()}


class TestRoundTrip:
    def test_save_load_is_exact(self, tmp_path):
        source = _Classifier(seed=3)
        path = save_model(source, tmp_path / "model")
        assert path.suffix == ".npz"

        target = _Classifier(seed=9)
        load_model(target, path)
        for name, parameter in target.named_parameters():
            np.testing.assert_array_equal(parameter.data, dict(source.named_parameters())[name].data)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(_Classifier(), tmp_path / "absent.npz")

    def test_empty_model_cannot_be_saved(self, tmp_path):
        with pytest.raises(ValueError, match="no parameters"):
            save_model(Module(), tmp_path / "empty")


class TestConfigMismatch:
    def test_shape_mismatch_fails_loudly_without_corrupting_weights(self, tmp_path):
        """A model saved under one config loaded under another must not
        partially overwrite weights: the error lists every mismatched shape
        and the target model is left untouched."""
        path = save_model(_Classifier(hidden=8), tmp_path / "hidden8")
        target = _Classifier(hidden=6)
        before = _snapshot(target)

        with pytest.raises(ValueError, match="no parameters were modified") as excinfo:
            load_model(target, path)
        # Every mismatched parameter is named with both shapes.
        assert "embedding" in str(excinfo.value)
        assert "(12, 8)" in str(excinfo.value) and "(12, 6)" in str(excinfo.value)

        after = _snapshot(target)
        assert set(before) == set(after)
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_strict_key_mismatch_lists_missing_and_unexpected(self, tmp_path):
        path = save_model(_Classifier(with_head=True), tmp_path / "with-head")
        target = _Classifier(with_head=False)
        with pytest.raises(ValueError) as excinfo:
            load_model(target, path)
        message = str(excinfo.value)
        assert "head" in message and "unexpected" in message
        assert str(path) in message

    def test_non_strict_loads_intersection(self, tmp_path):
        source = _Classifier(with_head=True, seed=5)
        path = save_model(source, tmp_path / "with-head")
        target = _Classifier(with_head=False, seed=8)
        load_model(target, path, strict=False)
        source_params = dict(source.named_parameters())
        for name, parameter in target.named_parameters():
            np.testing.assert_array_equal(parameter.data, source_params[name].data)

    def test_non_strict_still_validates_shapes(self, tmp_path):
        path = save_model(_Classifier(hidden=8), tmp_path / "hidden8")
        target = _Classifier(hidden=6)
        with pytest.raises(ValueError, match="shape mismatch"):
            load_model(target, path, strict=False)
