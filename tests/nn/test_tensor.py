"""Tests for the autograd Tensor, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.tensor import Tensor, clip_gradients, no_grad, parameters_norm


def numerical_gradient(fn, value: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    gradient = np.zeros_like(value)
    flat = value.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(value)
        flat[i] = original - eps
        minus = fn(value)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return gradient


def check_gradient(build, shape, seed=0, atol=1e-5):
    """Compare autograd and numerical gradients of `build(Parameter)` -> scalar Tensor."""
    rng = np.random.default_rng(seed)
    value = rng.normal(size=shape)
    parameter = Parameter(value.copy())
    output = build(parameter)
    output.backward()
    numeric = numerical_gradient(lambda v: float(build(Tensor(v)).data), value.copy())
    assert parameter.grad is not None
    np.testing.assert_allclose(parameter.grad, numeric, atol=atol, rtol=1e-4)


class TestBasicOps:
    def test_add_and_scalar_broadcast(self):
        a = Parameter(np.array([1.0, 2.0]))
        out = (a + 3.0).sum()
        out.backward()
        assert np.allclose(a.grad, [1.0, 1.0])

    def test_mul_gradient(self):
        check_gradient(lambda p: (p * p).sum(), (3, 2))

    def test_sub_and_div_gradients(self):
        check_gradient(lambda p: ((p - 2.0) / 3.0).sum(), (4,))
        check_gradient(lambda p: (1.0 / (p + 5.0)).sum(), (4,))

    def test_pow_gradient(self):
        check_gradient(lambda p: ((p + 3.0) ** 2).sum(), (3,))

    def test_matmul_gradient(self):
        rng = np.random.default_rng(1)
        other = Tensor(rng.normal(size=(4, 3)))
        check_gradient(lambda p: (p @ other).sum(), (2, 4))

    def test_batched_matmul_gradient(self):
        rng = np.random.default_rng(2)
        other = Tensor(rng.normal(size=(2, 4, 3)))
        check_gradient(lambda p: (p @ other).sum(), (2, 5, 4))

    def test_broadcast_add_gradient(self):
        rng = np.random.default_rng(3)
        other = Tensor(rng.normal(size=(5, 3)))
        check_gradient(lambda p: (other + p).sum(), (3,))

    def test_rsub_and_rtruediv(self):
        a = Parameter(np.array([2.0, 4.0]))
        out = (8.0 - a).sum() + (8.0 / a).sum()
        out.backward()
        expected = -1.0 - 8.0 / np.array([2.0, 4.0]) ** 2
        assert np.allclose(a.grad, expected)


class TestReductionsAndShapes:
    def test_sum_axis_gradient(self):
        check_gradient(lambda p: (p.sum(axis=0) ** 2).sum(), (3, 4))

    def test_mean_gradient(self):
        check_gradient(lambda p: (p.mean(axis=1) ** 2).sum(), (3, 4))

    def test_reshape_gradient(self):
        check_gradient(lambda p: (p.reshape(6) ** 2).sum(), (2, 3))

    def test_transpose_gradient(self):
        rng = np.random.default_rng(4)
        other = Tensor(rng.normal(size=(3, 2)))
        check_gradient(lambda p: (p.transpose(1, 0) * other).sum(), (2, 3))

    def test_getitem_gradient(self):
        a = Parameter(np.arange(6, dtype=float).reshape(2, 3))
        out = (a[:, 1] ** 2).sum()
        out.backward()
        expected = np.zeros((2, 3))
        expected[:, 1] = 2 * a.data[:, 1]
        assert np.allclose(a.grad, expected)

    def test_concat_gradient(self):
        a = Parameter(np.ones((2, 2)))
        b = Parameter(np.full((2, 3), 2.0))
        out = (Tensor.concat([a, b], axis=1) ** 2).sum()
        out.backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 4.0)

    def test_stack_gradient(self):
        a = Parameter(np.ones(3))
        b = Parameter(np.full(3, 2.0))
        out = (Tensor.stack([a, b], axis=0) ** 2).sum()
        out.backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 4.0)


class TestNonlinearities:
    @pytest.mark.parametrize(
        "op", ["exp", "tanh", "sigmoid", "relu", "gelu"]
    )
    def test_elementwise_gradients(self, op):
        check_gradient(lambda p: getattr(p, op)().sum(), (3, 3), seed=hash(op) % 100)

    def test_log_gradient(self):
        check_gradient(lambda p: (p.exp() + 1.0).log().sum(), (4,))

    def test_softmax_gradient(self):
        rng = np.random.default_rng(5)
        weights = Tensor(rng.normal(size=(4,)))
        check_gradient(lambda p: (p.softmax(axis=-1) * weights).sum(), (2, 4))

    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(6)
        probabilities = Tensor(rng.normal(size=(5, 7))).softmax(axis=-1)
        assert np.allclose(probabilities.data.sum(axis=1), 1.0)

    def test_masked_fill(self):
        a = Parameter(np.array([[1.0, 2.0], [3.0, 4.0]]))
        mask = np.array([[True, False], [False, True]])
        out = a.masked_fill(mask, -100.0).sum()
        out.backward()
        assert np.allclose(a.grad, (~mask).astype(float))

    def test_embedding_lookup_gradient(self):
        table = Parameter(np.arange(12, dtype=float).reshape(4, 3))
        ids = np.array([[0, 2], [2, 2]])
        out = table.embedding_lookup(ids).sum()
        out.backward()
        expected = np.zeros((4, 3))
        expected[0] = 1.0
        expected[2] = 3.0
        assert np.allclose(table.grad, expected)


class TestGraphMechanics:
    def test_gradient_accumulates_over_multiple_uses(self):
        a = Parameter(np.array([2.0]))
        out = (a * a + a).sum()
        out.backward()
        assert np.allclose(a.grad, 2 * 2.0 + 1.0)

    def test_zero_grad(self):
        a = Parameter(np.array([1.0]))
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_backward_requires_scalar_or_seed(self):
        a = Parameter(np.ones((2, 2)))
        out = a * 2
        with pytest.raises(RuntimeError):
            out.backward()
        out.backward(np.ones((2, 2)))
        assert np.allclose(a.grad, 2.0)

    def test_backward_on_graphless_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_no_grad_disables_graph(self):
        a = Parameter(np.ones(3))
        with no_grad():
            out = (a * 2).sum()
        assert out._parents == ()

    def test_detach_cuts_graph(self):
        a = Parameter(np.ones(3))
        detached = (a * 2).detach()
        out = (detached * 3).sum()
        assert out._parents == ()

    def test_clip_gradients(self):
        a = Parameter(np.ones(4))
        (a * 100.0).sum().backward()
        norm_before = parameters_norm([a])
        clipped_norm = clip_gradients([a], max_norm=1.0)
        assert clipped_norm == pytest.approx(norm_before)
        assert parameters_norm([a]) == pytest.approx(1.0)

    def test_shapes_and_item(self):
        a = Tensor(np.zeros((2, 3)))
        assert a.shape == (2, 3)
        assert a.ndim == 2
        assert a.size == 6
        assert Tensor(np.array([3.5])).item() == 3.5

    def test_factory_helpers(self):
        assert Tensor.zeros(2, 2).data.sum() == 0.0
        assert Tensor.ones(2, 2).data.sum() == 4.0
        assert Tensor.randn(3, 3, seed=1).shape == (3, 3)
