"""Tests for losses, optimizers, schedules and the batch iterator."""

import numpy as np
import pytest

from repro.nn.dataloader import BatchIterator
from repro.nn.losses import (
    accuracy_from_logits,
    cross_entropy_logits,
    masked_cross_entropy_logits,
)
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, AdamW
from repro.nn.schedules import ConstantSchedule, CosineWarmupDecay, LinearWarmupDecay
from repro.nn.tensor import Tensor


class TestCrossEntropy:
    def test_uniform_logits_give_log_n(self):
        logits = Tensor(np.zeros((4, 5)))
        loss = cross_entropy_logits(logits, np.array([0, 1, 2, 3]))
        assert loss.item() == pytest.approx(np.log(5))

    def test_confident_correct_prediction_near_zero(self):
        logits = Tensor(np.array([[20.0, 0.0], [0.0, 20.0]]))
        loss = cross_entropy_logits(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_gradient_matches_softmax_minus_onehot(self):
        logits = Parameter(np.array([[1.0, 2.0, 0.5]]))
        targets = np.array([1])
        cross_entropy_logits(logits, targets).backward()
        probabilities = np.exp(logits.data) / np.exp(logits.data).sum()
        expected = probabilities.copy()
        expected[0, 1] -= 1.0
        assert np.allclose(logits.grad, expected, atol=1e-8)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy_logits(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]))
        with pytest.raises(ValueError):
            cross_entropy_logits(Tensor(np.zeros((2, 3))), np.array([0]))

    def test_accuracy_from_logits(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 1.0], [0.0, 2.0]])
        assert accuracy_from_logits(logits, np.array([0, 1, 1, 1])) == pytest.approx(0.75)


class TestMaskedCrossEntropy:
    def test_only_masked_positions_contribute(self):
        logits = Parameter(np.zeros((1, 3, 4)))
        targets = np.array([[1, 2, 3]])
        mask = np.array([[1.0, 0.0, 0.0]])
        loss = masked_cross_entropy_logits(logits, targets, mask)
        assert loss.item() == pytest.approx(np.log(4))
        loss.backward()
        # Positions 1 and 2 are unmasked: no gradient there.
        assert np.allclose(logits.grad[0, 1], 0.0)
        assert np.allclose(logits.grad[0, 2], 0.0)
        assert not np.allclose(logits.grad[0, 0], 0.0)

    def test_empty_mask_returns_zero(self):
        logits = Tensor(np.zeros((1, 2, 3)))
        loss = masked_cross_entropy_logits(logits, np.zeros((1, 2), dtype=int), np.zeros((1, 2)))
        assert loss.item() == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            masked_cross_entropy_logits(Tensor(np.zeros((2, 3))), np.zeros((2, 3)), np.ones((2, 3)))


def _quadratic_parameters():
    """A simple convex problem: minimise ||p - target||^2."""
    target = np.array([3.0, -2.0, 0.5])
    parameter = Parameter(np.zeros(3))
    return parameter, target


def _loss(parameter, target):
    diff = parameter - Tensor(target)
    return (diff * diff).sum()


class TestOptimizers:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda params: SGD(params, lr=0.1),
            lambda params: SGD(params, lr=0.05, momentum=0.9),
            lambda params: Adam(params, lr=0.2),
            lambda params: AdamW(params, lr=0.2, weight_decay=0.001),
        ],
    )
    def test_converges_on_quadratic(self, factory):
        parameter, target = _quadratic_parameters()
        optimizer = factory([parameter])
        for _ in range(200):
            optimizer.zero_grad()
            _loss(parameter, target).backward()
            optimizer.step()
        assert np.allclose(parameter.data, target, atol=0.05)

    def test_sgd_weight_decay_shrinks_solution(self):
        parameter, target = _quadratic_parameters()
        optimizer = SGD([parameter], lr=0.1, weight_decay=1.0)
        for _ in range(300):
            optimizer.zero_grad()
            _loss(parameter, target).backward()
            optimizer.step()
        assert np.all(np.abs(parameter.data) < np.abs(target))

    def test_skips_parameters_without_grad(self):
        used = Parameter(np.zeros(2))
        unused = Parameter(np.ones(2))
        optimizer = Adam([used, unused], lr=0.1)
        (used * 2.0).sum().backward()
        optimizer.step()
        assert np.allclose(unused.data, 1.0)

    def test_invalid_lr_and_empty_params(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)
        with pytest.raises(ValueError):
            Adam([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)


class TestSchedules:
    def test_constant_schedule(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=0.3)
        schedule = ConstantSchedule(optimizer)
        for _ in range(5):
            assert schedule.step() == pytest.approx(0.3)

    def test_linear_warmup_then_decay(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        schedule = LinearWarmupDecay(optimizer, peak_lr=1.0, warmup_steps=5, total_steps=20)
        lrs = [schedule.step() for _ in range(20)]
        assert lrs[0] == pytest.approx(0.2)
        assert max(lrs) == pytest.approx(1.0)
        assert lrs[-1] < lrs[5]
        assert optimizer.lr == lrs[-1]

    def test_cosine_decay_monotone_after_warmup(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        schedule = CosineWarmupDecay(optimizer, peak_lr=1.0, warmup_steps=2, total_steps=10)
        lrs = [schedule.step() for _ in range(10)]
        post_warmup = lrs[2:]
        assert all(a >= b - 1e-9 for a, b in zip(post_warmup, post_warmup[1:]))

    def test_invalid_schedule_configs(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            LinearWarmupDecay(optimizer, peak_lr=1.0, warmup_steps=30, total_steps=20)
        with pytest.raises(ValueError):
            LinearWarmupDecay(optimizer, peak_lr=1.0, warmup_steps=1, total_steps=0)


class TestBatchIterator:
    def test_covers_all_rows(self):
        ids = np.arange(20).reshape(10, 2)
        mask = np.ones((10, 2))
        labels = np.arange(10)
        iterator = BatchIterator(ids, mask, labels, batch_size=3, shuffle=True, seed=0)
        seen = []
        for batch_ids, batch_mask, batch_labels in iterator:
            assert batch_ids.shape == batch_mask.shape
            seen.extend(batch_labels.tolist())
        assert sorted(seen) == list(range(10))
        assert len(iterator) == 4

    def test_drop_last(self):
        iterator = BatchIterator(
            np.zeros((10, 2)), np.ones((10, 2)), np.arange(10), batch_size=3, drop_last=True
        )
        assert len(iterator) == 3
        assert sum(len(labels) for _, _, labels in iterator) == 9

    def test_without_labels(self):
        iterator = BatchIterator(np.zeros((4, 2)), np.ones((4, 2)), batch_size=2)
        for _, _, labels in iterator:
            assert labels is None

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BatchIterator(np.zeros((4, 2)), np.ones((3, 2)))
        with pytest.raises(ValueError):
            BatchIterator(np.zeros((4, 2)), np.ones((4, 2)), np.arange(3))
        with pytest.raises(ValueError):
            BatchIterator(np.zeros((4, 2)), np.ones((4, 2)), batch_size=0)
