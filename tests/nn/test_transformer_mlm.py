"""Tests for the Transformer encoder, MLM pretraining and serialization."""

import numpy as np
import pytest

from repro.nn.mlm import MLMConfig, apply_mlm_masking, pretrain_mlm
from repro.nn.serialization import load_model, save_model
from repro.nn.transformer import (
    TransformerConfig,
    TransformerEncoder,
    TransformerForMaskedLM,
    TransformerForSequenceClassification,
)
from repro.text.vocabulary import Vocabulary


@pytest.fixture(scope="module")
def vocabulary():
    docs = [[f"tok{i}" for i in range(20)]]
    return Vocabulary.build(docs)


@pytest.fixture()
def config(vocabulary):
    return TransformerConfig(
        vocab_size=len(vocabulary), max_length=12, dim=16, num_heads=4, num_layers=2, ffn_dim=32
    )


class TestTransformerConfig:
    def test_valid_config(self, config):
        assert config.dim % config.num_heads == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"vocab_size": 3},
            {"vocab_size": 30, "dim": 10, "num_heads": 3},
            {"vocab_size": 30, "num_layers": 0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            TransformerConfig(**kwargs)


class TestTransformerEncoder:
    def test_output_shape(self, config):
        encoder = TransformerEncoder(config)
        ids = np.random.default_rng(0).integers(0, config.vocab_size, size=(3, 10))
        hidden = encoder(ids, mask=np.ones((3, 10)))
        assert hidden.shape == (3, 10, config.dim)

    def test_sequence_length_cap_enforced(self, config):
        encoder = TransformerEncoder(config)
        ids = np.zeros((1, config.max_length + 1), dtype=int)
        with pytest.raises(ValueError):
            encoder(ids)

    def test_order_sensitivity(self, config):
        """The encoder must distinguish permutations of the same tokens."""
        encoder = TransformerEncoder(config)
        encoder.eval()
        ids = np.array([[5, 6, 7, 8]])
        reversed_ids = ids[:, ::-1].copy()
        out_a = encoder(ids).data
        out_b = encoder(reversed_ids).data
        assert not np.allclose(out_a, out_b)

    def test_classification_head_shape(self, config):
        model = TransformerForSequenceClassification(config, num_classes=5)
        ids = np.random.default_rng(1).integers(0, config.vocab_size, size=(4, 8))
        logits = model(ids, mask=np.ones((4, 8)))
        assert logits.shape == (4, 5)

    def test_classification_rejects_single_class(self, config):
        with pytest.raises(ValueError):
            TransformerForSequenceClassification(config, num_classes=1)

    def test_mlm_head_shape(self, config):
        model = TransformerForMaskedLM(config)
        ids = np.random.default_rng(2).integers(0, config.vocab_size, size=(2, 6))
        logits = model(ids, mask=np.ones((2, 6)))
        assert logits.shape == (2, 6, config.vocab_size)


class TestMLMMasking:
    def test_mask_probability_validation(self):
        with pytest.raises(ValueError):
            MLMConfig(mask_probability=0.0)
        with pytest.raises(ValueError):
            MLMConfig(mask_token_rate=0.9, random_token_rate=0.2)

    def test_masking_only_touches_real_non_special_tokens(self, vocabulary):
        rng = np.random.default_rng(0)
        ids = np.full((4, 10), vocabulary.pad_id)
        ids[:, 0] = vocabulary.cls_id
        ids[:, 1:6] = rng.integers(4, len(vocabulary), size=(4, 5))
        mask = (ids != vocabulary.pad_id).astype(float)
        masked, targets, loss_mask = apply_mlm_masking(
            ids, mask, vocabulary, MLMConfig(mask_probability=0.5), rng
        )
        # Padding and CLS never selected.
        assert loss_mask[:, 0].sum() == 0
        assert loss_mask[:, 6:].sum() == 0
        # Targets preserve the original ids everywhere.
        assert np.array_equal(targets, ids)
        # Unselected positions are unchanged.
        unchanged = loss_mask == 0
        assert np.array_equal(masked[unchanged], ids[unchanged])

    def test_every_sequence_gets_at_least_one_masked_position(self, vocabulary):
        rng = np.random.default_rng(1)
        ids = np.full((6, 8), vocabulary.pad_id)
        ids[:, 0] = rng.integers(4, len(vocabulary), size=6)
        mask = (ids != vocabulary.pad_id).astype(float)
        _, _, loss_mask = apply_mlm_masking(
            ids, mask, vocabulary, MLMConfig(mask_probability=0.01), rng
        )
        assert (loss_mask.sum(axis=1) >= 1).all()

    def test_mask_token_used_for_most_selected_positions(self, vocabulary):
        rng = np.random.default_rng(2)
        ids = rng.integers(4, len(vocabulary), size=(20, 12))
        mask = np.ones_like(ids, dtype=float)
        masked, _, loss_mask = apply_mlm_masking(
            ids, mask, vocabulary, MLMConfig(mask_probability=0.3), rng
        )
        selected = loss_mask.astype(bool)
        fraction_mask_token = np.mean(masked[selected] == vocabulary.mask_id)
        assert 0.6 < fraction_mask_token < 0.95


class TestMLMPretraining:
    def test_pretraining_reduces_loss(self, vocabulary, config):
        rng = np.random.default_rng(3)
        # Corpus with strong structure: token t is always followed by t+1.
        starts = rng.integers(4, len(vocabulary) - 6, size=60)
        ids = np.stack([np.arange(s, s + 6) for s in starts])
        mask = np.ones_like(ids, dtype=float)
        model = TransformerForMaskedLM(config)
        result = pretrain_mlm(
            model, ids, mask, vocabulary, MLMConfig(epochs=4, batch_size=16, peak_lr=5e-3, seed=0)
        )
        assert len(result.losses_per_epoch) == 4
        assert result.losses_per_epoch[-1] < result.losses_per_epoch[0]
        assert result.total_steps == 4 * int(np.ceil(60 / 16))

    def test_zero_epochs_is_a_noop(self, vocabulary, config):
        model = TransformerForMaskedLM(config)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        result = pretrain_mlm(
            model,
            np.full((4, 6), vocabulary.unk_id),
            np.ones((4, 6)),
            vocabulary,
            MLMConfig(epochs=0),
        )
        assert result.losses_per_epoch == []
        after = model.state_dict()
        assert all(np.allclose(before[k], after[k]) for k in before)

    def test_static_and_dynamic_masking_both_run(self, vocabulary, config):
        rng = np.random.default_rng(4)
        ids = rng.integers(4, len(vocabulary), size=(20, 6))
        mask = np.ones_like(ids, dtype=float)
        for dynamic in (True, False):
            model = TransformerForMaskedLM(config)
            result = pretrain_mlm(
                model, ids, mask, vocabulary,
                MLMConfig(epochs=1, batch_size=10, dynamic=dynamic, seed=1),
            )
            assert len(result.losses_per_epoch) == 1
            assert np.isfinite(result.final_loss)


class TestSerialization:
    def test_roundtrip(self, config, tmp_path):
        model = TransformerForSequenceClassification(config, num_classes=4)
        path = save_model(model, tmp_path / "model")
        assert path.suffix == ".npz"
        clone = TransformerForSequenceClassification(config, num_classes=4)
        clone.encoder.token_embedding.weight.data += 1.0
        load_model(clone, path)
        ids = np.random.default_rng(5).integers(0, config.vocab_size, size=(2, 6))
        model.eval(), clone.eval()
        assert np.allclose(model(ids).data, clone(ids).data)

    def test_missing_file_raises(self, config, tmp_path):
        model = TransformerForSequenceClassification(config, num_classes=4)
        with pytest.raises(FileNotFoundError):
            load_model(model, tmp_path / "missing.npz")
