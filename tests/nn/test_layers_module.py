"""Tests for Module bookkeeping and the standard layers."""

import numpy as np
import pytest

from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear, Sequential
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class _TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(4, 8, seed=0)
        self.second = Linear(8, 2, seed=1)
        self.scale = Parameter(np.array([1.0]))

    def forward(self, x):
        return self.second(self.first(x).relu()) * self.scale


class TestModule:
    def test_named_parameters_cover_tree(self):
        model = _TwoLayer()
        names = dict(model.named_parameters())
        assert "first.weight" in names and "second.bias" in names and "scale" in names
        assert len(model.parameters()) == 5

    def test_num_parameters(self):
        model = _TwoLayer()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2 + 1

    def test_zero_grad_clears_all(self):
        model = _TwoLayer()
        out = model(Tensor(np.ones((3, 4)))).sum()
        out.backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_train_eval_toggle_propagates(self):
        model = Sequential(Linear(3, 3), Dropout(0.5), Linear(3, 2))
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_state_dict_roundtrip(self):
        model_a = _TwoLayer()
        model_b = _TwoLayer()
        model_b.first.weight.data += 1.0
        model_b.load_state_dict(model_a.state_dict())
        assert np.allclose(model_b.first.weight.data, model_a.first.weight.data)

    def test_state_dict_strict_mismatch_raises(self):
        model = _TwoLayer()
        with pytest.raises(ValueError):
            model.load_state_dict({"nonexistent": np.zeros(1)})

    def test_state_dict_shape_mismatch_raises(self):
        model = _TwoLayer()
        state = model.state_dict()
        state["first.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_parameters_inside_lists_found(self):
        class WithList(Module):
            def __init__(self):
                super().__init__()
                self.blocks = [Linear(2, 2, seed=0), Linear(2, 2, seed=1)]

            def forward(self, x):
                return x

        assert len(WithList().parameters()) == 4


class TestLinear:
    def test_output_shape(self):
        layer = Linear(5, 3)
        out = layer(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_no_bias_option(self):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_flow(self):
        layer = Linear(3, 2, seed=2)
        out = layer(Tensor(np.ones((4, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Linear(0, 3)


class TestEmbedding:
    def test_lookup_shape(self):
        embedding = Embedding(10, 4)
        out = embedding(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_pad_row_initialised_to_zero(self):
        embedding = Embedding(10, 4, pad_id=0)
        assert np.allclose(embedding.weight.data[0], 0.0)

    def test_out_of_range_ids_rejected(self):
        embedding = Embedding(5, 4)
        with pytest.raises(ValueError):
            embedding(np.array([[7]]))

    def test_load_pretrained(self):
        embedding = Embedding(6, 3)
        matrix = np.arange(18, dtype=float).reshape(6, 3)
        embedding.load_pretrained(matrix)
        assert np.allclose(embedding.weight.data, matrix)

    def test_load_pretrained_shape_mismatch(self):
        embedding = Embedding(6, 3)
        with pytest.raises(ValueError):
            embedding.load_pretrained(np.zeros((5, 3)))


class TestLayerNorm:
    def test_normalises_last_dimension(self):
        norm = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(3.0, 2.0, size=(4, 8)))
        out = norm(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gain_and_shift_trainable(self):
        norm = LayerNorm(4)
        out = norm(Tensor(np.random.default_rng(1).normal(size=(3, 4)))).sum()
        out.backward()
        assert norm.gain.grad is not None
        assert norm.shift.grad is not None


class TestDropout:
    def test_identity_in_eval_mode(self):
        dropout = Dropout(0.5, seed=0)
        dropout.eval()
        x = Tensor(np.ones((10, 10)))
        assert np.allclose(dropout(x).data, 1.0)

    def test_drops_roughly_expected_fraction_in_train_mode(self):
        dropout = Dropout(0.4, seed=0)
        x = Tensor(np.ones((100, 100)))
        out = dropout(x).data
        dropped_fraction = np.mean(out == 0.0)
        assert 0.3 < dropped_fraction < 0.5

    def test_inverted_scaling_preserves_expectation(self):
        dropout = Dropout(0.25, seed=1)
        x = Tensor(np.ones((200, 200)))
        out = dropout(x).data
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestSequential:
    def test_applies_in_order_and_indexes(self):
        model = Sequential(Linear(3, 5, seed=0), Linear(5, 2, seed=1))
        out = model(Tensor(np.ones((4, 3))))
        assert out.shape == (4, 2)
        assert len(model) == 2
        assert isinstance(model[0], Linear)
