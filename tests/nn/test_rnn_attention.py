"""Tests for the LSTM and multi-head self-attention."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Embedding
from repro.nn.rnn import LSTM, LSTMCell
from repro.nn.tensor import Tensor


class TestLSTMCell:
    def test_output_shapes(self):
        cell = LSTMCell(input_dim=6, hidden_dim=4, seed=0)
        h, c = cell(Tensor(np.ones((3, 6))), Tensor(np.zeros((3, 4))), Tensor(np.zeros((3, 4))))
        assert h.shape == (3, 4)
        assert c.shape == (3, 4)

    def test_forget_gate_bias_initialised_to_one(self):
        cell = LSTMCell(4, 5)
        assert np.allclose(cell.bias.data[5:10], 1.0)
        assert np.allclose(cell.bias.data[:5], 0.0)

    def test_hidden_state_bounded_by_tanh(self):
        cell = LSTMCell(3, 4, seed=1)
        h, _ = cell(
            Tensor(np.full((2, 3), 100.0)), Tensor(np.zeros((2, 4))), Tensor(np.zeros((2, 4)))
        )
        assert np.all(np.abs(h.data) <= 1.0)

    def test_gradients_reach_all_parameters(self):
        cell = LSTMCell(3, 4, seed=2)
        h, c = cell(Tensor(np.ones((2, 3))), Tensor(np.zeros((2, 4))), Tensor(np.zeros((2, 4))))
        (h.sum() + c.sum()).backward()
        assert cell.weight_x.grad is not None
        assert cell.weight_h.grad is not None
        assert cell.bias.grad is not None

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            LSTMCell(0, 4)


class TestLSTM:
    def test_output_shapes(self):
        lstm = LSTM(input_dim=5, hidden_dim=7, num_layers=2, seed=0)
        inputs = Tensor(np.random.default_rng(0).normal(size=(3, 6, 5)))
        outputs, final_hidden = lstm(inputs)
        assert outputs.shape == (3, 6, 7)
        assert final_hidden.shape == (3, 7)

    def test_final_state_equals_last_output_without_mask(self):
        lstm = LSTM(4, 5, num_layers=1, seed=1)
        inputs = Tensor(np.random.default_rng(1).normal(size=(2, 5, 4)))
        outputs, final_hidden = lstm(inputs)
        assert np.allclose(outputs.data[:, -1, :], final_hidden.data)

    def test_mask_freezes_state_on_padding(self):
        lstm = LSTM(4, 5, num_layers=1, seed=2)
        rng = np.random.default_rng(2)
        real = rng.normal(size=(1, 3, 4))
        padded = np.concatenate([real, rng.normal(size=(1, 2, 4))], axis=1)
        mask = np.array([[1.0, 1.0, 1.0, 0.0, 0.0]])
        _, final_with_padding = lstm(Tensor(padded), mask=mask)
        _, final_real_only = lstm(Tensor(real), mask=np.ones((1, 3)))
        assert np.allclose(final_with_padding.data, final_real_only.data, atol=1e-10)

    def test_two_layers_have_separate_parameters(self):
        lstm = LSTM(4, 5, num_layers=2)
        assert len(lstm.cells) == 2
        assert lstm.cells[0].input_dim == 4
        assert lstm.cells[1].input_dim == 5

    def test_gradients_flow_through_time(self):
        lstm = LSTM(3, 4, num_layers=2, seed=3)
        embedding = Embedding(10, 3, seed=4)
        ids = np.array([[1, 2, 3, 4]])
        outputs, final_hidden = lstm(embedding(ids))
        final_hidden.sum().backward()
        assert embedding.weight.grad is not None
        assert lstm.cells[0].weight_x.grad is not None

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            LSTM(3, 4, num_layers=0)


class TestMultiHeadSelfAttention:
    def test_output_shape_preserved(self):
        attention = MultiHeadSelfAttention(dim=16, num_heads=4, seed=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 16)))
        assert attention(x).shape == (2, 5, 16)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(dim=10, num_heads=3)

    def test_attention_weights_rows_sum_to_one(self):
        attention = MultiHeadSelfAttention(dim=8, num_heads=2, dropout=0.0, seed=1)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 4, 8)))
        weights = attention.attention_weights(x)
        assert weights.shape == (2, 2, 4, 4)
        assert np.allclose(weights.sum(axis=-1), 1.0)

    def test_padding_positions_get_zero_attention(self):
        attention = MultiHeadSelfAttention(dim=8, num_heads=2, dropout=0.0, seed=2)
        x = Tensor(np.random.default_rng(2).normal(size=(1, 4, 8)))
        mask = np.array([[1.0, 1.0, 0.0, 0.0]])
        weights = attention.attention_weights(x, mask=mask)
        assert np.allclose(weights[..., 2:], 0.0, atol=1e-6)

    def test_masked_outputs_independent_of_padding_content(self):
        attention = MultiHeadSelfAttention(dim=8, num_heads=2, dropout=0.0, seed=3)
        attention.eval()
        rng = np.random.default_rng(3)
        base = rng.normal(size=(1, 4, 8))
        variant = base.copy()
        variant[0, 3, :] = rng.normal(size=8) * 50
        mask = np.array([[1.0, 1.0, 1.0, 0.0]])
        out_base = attention(Tensor(base), mask=mask).data
        out_variant = attention(Tensor(variant), mask=mask).data
        # Outputs at real positions must not depend on the padded position's content.
        assert np.allclose(out_base[0, :3], out_variant[0, :3], atol=1e-8)

    def test_gradients_reach_projections(self):
        attention = MultiHeadSelfAttention(dim=8, num_heads=2, seed=4)
        x = Tensor(np.random.default_rng(4).normal(size=(2, 3, 8)))
        attention(x).sum().backward()
        assert attention.query.weight.grad is not None
        assert attention.output.weight.grad is not None
