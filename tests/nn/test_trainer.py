"""Tests for the supervised Trainer."""

import numpy as np
import pytest

from repro.nn.layers import Embedding, Linear
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.trainer import Trainer, TrainerConfig, TrainingHistory
from repro.nn.tensor import Tensor


class _BagClassifier(Module):
    """Mean-pooled embedding classifier: simple but trainable."""

    def __init__(self, vocab_size=30, dim=16, num_classes=3, seed=0):
        super().__init__()
        self.embedding = Embedding(vocab_size, dim, seed=seed, pad_id=0)
        self.head = Linear(dim, num_classes, seed=seed + 1)

    def forward(self, ids, mask=None):
        embedded = self.embedding(ids)
        if mask is not None:
            m = Tensor(mask[:, :, None])
            summed = (embedded * m).sum(axis=1)
            denom = Tensor(np.maximum(mask.sum(axis=1, keepdims=True), 1.0))
            pooled = summed / denom
        else:
            pooled = embedded.mean(axis=1)
        return self.head(pooled)


def _toy_classification_data(n=120, length=6, vocab=30, n_classes=3, seed=0):
    """Class c's sequences are dominated by tokens from its own token band."""
    rng = np.random.default_rng(seed)
    ids = np.zeros((n, length), dtype=np.int64)
    labels = rng.integers(0, n_classes, size=n)
    for i, label in enumerate(labels):
        low = 4 + label * 8
        ids[i] = rng.integers(low, low + 8, size=length)
    mask = np.ones((n, length))
    return ids, mask, labels


class TestTrainerFit:
    def test_learns_separable_problem(self):
        ids, mask, labels = _toy_classification_data()
        model = _BagClassifier()
        trainer = Trainer(
            model, Adam(model.parameters(), lr=5e-2), config=TrainerConfig(epochs=6, batch_size=16)
        )
        history = trainer.fit(ids[:90], mask[:90], labels[:90], ids[90:], mask[90:], labels[90:])
        assert history.epochs == 6
        assert history.train_accuracy[-1] > 0.9
        assert history.val_accuracy[-1] > 0.8
        assert history.train_loss[-1] < history.train_loss[0]

    def test_history_records_all_series(self):
        ids, mask, labels = _toy_classification_data(n=40)
        model = _BagClassifier()
        trainer = Trainer(
            model, Adam(model.parameters(), lr=1e-2), config=TrainerConfig(epochs=2, batch_size=8)
        )
        history = trainer.fit(ids[:30], mask[:30], labels[:30], ids[30:], mask[30:], labels[30:])
        assert len(history.train_loss) == len(history.val_loss) == 2
        assert len(history.train_accuracy) == len(history.val_accuracy) == 2
        as_dict = history.as_dict()
        assert set(as_dict) == {"train_loss", "train_accuracy", "val_loss", "val_accuracy"}

    def test_without_validation_data(self):
        ids, mask, labels = _toy_classification_data(n=30)
        model = _BagClassifier()
        trainer = Trainer(
            model, Adam(model.parameters(), lr=1e-2), config=TrainerConfig(epochs=2, batch_size=8)
        )
        history = trainer.fit(ids, mask, labels)
        assert history.val_loss == []

    def test_early_stopping_restores_best_weights(self):
        ids, mask, labels = _toy_classification_data(n=60)
        model = _BagClassifier()
        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=5e-2),
            config=TrainerConfig(epochs=12, batch_size=16, early_stopping_patience=1),
        )
        history = trainer.fit(ids[:45], mask[:45], labels[:45], ids[45:], mask[45:], labels[45:])
        # Early stopping may cut training short; history length reflects that.
        assert history.epochs <= 12
        best_epoch = history.best_epoch
        val_loss, _ = trainer.evaluate(ids[45:], mask[45:], labels[45:])
        assert val_loss == pytest.approx(history.val_loss[best_epoch], abs=0.15)


class TestTrainerEvaluate:
    def test_predict_logits_shape_and_determinism(self):
        ids, mask, labels = _toy_classification_data(n=20)
        model = _BagClassifier()
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-2))
        logits_a = trainer.predict_logits(ids, mask)
        logits_b = trainer.predict_logits(ids, mask)
        assert logits_a.shape == (20, 3)
        assert np.allclose(logits_a, logits_b)

    def test_evaluate_returns_finite_loss_and_accuracy(self):
        ids, mask, labels = _toy_classification_data(n=20)
        model = _BagClassifier()
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-2))
        loss, accuracy = trainer.evaluate(ids, mask, labels)
        assert np.isfinite(loss)
        assert 0.0 <= accuracy <= 1.0


class TestTrainingHistory:
    def test_best_epoch_argmin_of_val_loss(self):
        history = TrainingHistory(val_loss=[0.9, 0.4, 0.6], train_loss=[1, 1, 1])
        assert history.best_epoch == 1

    def test_best_epoch_without_validation(self):
        history = TrainingHistory(train_loss=[1.0, 0.5])
        assert history.best_epoch == 1
