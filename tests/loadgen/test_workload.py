"""Workload generation: seeded determinism and distribution shape."""

from __future__ import annotations

import numpy as np
import pytest

from repro.loadgen import Workload, build_workload, zipf_weights

POOL = [
    ("pasta", "tomato", "boil"),
    ("rice", "nori", "roll"),
    ("tortilla", "beef", "fry"),
    ("naan", "curry", "simmer"),
]


def test_same_seed_same_workload():
    first = build_workload(POOL, n_requests=200, seed=9, rate=100, key_distribution="zipf")
    second = build_workload(POOL, n_requests=200, seed=9, rate=100, key_distribution="zipf")
    assert first == second  # frozen dataclasses: full structural equality


def test_different_seeds_differ():
    first = build_workload(POOL, n_requests=200, seed=9, rate=100)
    second = build_workload(POOL, n_requests=200, seed=10, rate=100)
    assert first != second


def test_sequences_come_from_the_pool():
    workload = build_workload(POOL, n_requests=50, seed=1)
    pool = set(POOL)
    assert all(request.sequence in pool for request in workload.requests)
    assert all(request.arrival == 0.0 for request in workload.requests)  # closed-loop
    assert workload.rate is None


def test_open_loop_arrivals_nondecreasing_and_rate_shaped():
    rate = 200.0
    workload = build_workload(POOL, n_requests=2000, seed=3, rate=rate)
    arrivals = np.array([request.arrival for request in workload.requests])
    assert np.all(np.diff(arrivals) >= 0)
    # Mean inter-arrival of a seeded Poisson process at 200 rps ≈ 5ms.
    observed_rate = len(workload) / workload.duration
    assert 0.8 * rate <= observed_rate <= 1.2 * rate


def test_zipf_keys_are_hot_uniform_keys_are_flat():
    n_requests, n_keys = 3000, 50
    zipf = build_workload(
        POOL, n_requests=n_requests, seed=5, key_distribution="zipf",
        n_keys=n_keys, zipf_s=1.5,
    )
    uniform = build_workload(
        POOL, n_requests=n_requests, seed=5, key_distribution="uniform", n_keys=n_keys
    )
    zipf_top = max(zipf.key_counts().values())
    uniform_top = max(uniform.key_counts().values())
    flat_share = n_requests / n_keys
    assert zipf_top > 3 * flat_share  # a genuinely hot key
    assert uniform_top < 2 * flat_share
    # Rank 0 is the hottest Zipf rank by construction.
    assert max(zipf.key_counts(), key=zipf.key_counts().get) == "user-0"


def test_zipf_weights_normalized_and_monotone():
    weights = zipf_weights(20, 1.2)
    assert weights.shape == (20,)
    assert np.isclose(weights.sum(), 1.0)
    assert np.all(np.diff(weights) < 0)


@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"n_requests": 0}, "n_requests"),
        ({"n_requests": 10, "rate": 0}, "rate"),
        ({"n_requests": 10, "n_keys": 0}, "n_keys"),
        ({"n_requests": 10, "key_distribution": "pareto"}, "key_distribution"),
    ],
)
def test_invalid_configs_raise(kwargs, match):
    with pytest.raises(ValueError, match=match):
        build_workload(POOL, seed=1, **kwargs)


def test_empty_pool_raises():
    with pytest.raises(ValueError, match="pool"):
        build_workload([], n_requests=5, seed=1)


def test_workload_len_and_duration():
    workload = build_workload(POOL, n_requests=10, seed=2, rate=1000)
    assert len(workload) == 10
    assert isinstance(workload, Workload)
    assert workload.duration == workload.requests[-1].arrival
