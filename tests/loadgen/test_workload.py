"""Workload generation: seeded determinism and distribution shape."""

from __future__ import annotations

import numpy as np
import pytest

from repro.loadgen import Workload, build_workload, zipf_weights

POOL = [
    ("pasta", "tomato", "boil"),
    ("rice", "nori", "roll"),
    ("tortilla", "beef", "fry"),
    ("naan", "curry", "simmer"),
]


def test_same_seed_same_workload():
    first = build_workload(POOL, n_requests=200, seed=9, rate=100, key_distribution="zipf")
    second = build_workload(POOL, n_requests=200, seed=9, rate=100, key_distribution="zipf")
    assert first == second  # frozen dataclasses: full structural equality


def test_different_seeds_differ():
    first = build_workload(POOL, n_requests=200, seed=9, rate=100)
    second = build_workload(POOL, n_requests=200, seed=10, rate=100)
    assert first != second


def test_sequences_come_from_the_pool():
    workload = build_workload(POOL, n_requests=50, seed=1)
    pool = set(POOL)
    assert all(request.sequence in pool for request in workload.requests)
    assert all(request.arrival == 0.0 for request in workload.requests)  # closed-loop
    assert workload.rate is None


def test_open_loop_arrivals_nondecreasing_and_rate_shaped():
    rate = 200.0
    workload = build_workload(POOL, n_requests=2000, seed=3, rate=rate)
    arrivals = np.array([request.arrival for request in workload.requests])
    assert np.all(np.diff(arrivals) >= 0)
    # Mean inter-arrival of a seeded Poisson process at 200 rps ≈ 5ms.
    observed_rate = len(workload) / workload.duration
    assert 0.8 * rate <= observed_rate <= 1.2 * rate


def test_zipf_keys_are_hot_uniform_keys_are_flat():
    n_requests, n_keys = 3000, 50
    zipf = build_workload(
        POOL, n_requests=n_requests, seed=5, key_distribution="zipf",
        n_keys=n_keys, zipf_s=1.5,
    )
    uniform = build_workload(
        POOL, n_requests=n_requests, seed=5, key_distribution="uniform", n_keys=n_keys
    )
    zipf_top = max(zipf.key_counts().values())
    uniform_top = max(uniform.key_counts().values())
    flat_share = n_requests / n_keys
    assert zipf_top > 3 * flat_share  # a genuinely hot key
    assert uniform_top < 2 * flat_share
    # Rank 0 is the hottest Zipf rank by construction.
    assert max(zipf.key_counts(), key=zipf.key_counts().get) == "user-0"


def test_zipf_weights_normalized_and_monotone():
    weights = zipf_weights(20, 1.2)
    assert weights.shape == (20,)
    assert np.isclose(weights.sum(), 1.0)
    assert np.all(np.diff(weights) < 0)


@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"n_requests": 0}, "n_requests"),
        ({"n_requests": 10, "rate": 0}, "rate"),
        ({"n_requests": 10, "n_keys": 0}, "n_keys"),
        ({"n_requests": 10, "key_distribution": "pareto"}, "key_distribution"),
    ],
)
def test_invalid_configs_raise(kwargs, match):
    with pytest.raises(ValueError, match=match):
        build_workload(POOL, seed=1, **kwargs)


def test_empty_pool_raises():
    with pytest.raises(ValueError, match="pool"):
        build_workload([], n_requests=5, seed=1)


def test_workload_len_and_duration():
    workload = build_workload(POOL, n_requests=10, seed=2, rate=1000)
    assert len(workload) == 10
    assert isinstance(workload, Workload)
    assert workload.duration == workload.requests[-1].arrival


class TestBurstArrivals:
    def test_same_seed_same_burst_schedule(self):
        kwargs = dict(n_requests=300, seed=4, rate=200.0, arrival="burst")
        assert build_workload(POOL, **kwargs) == build_workload(POOL, **kwargs)
        assert build_workload(POOL, **kwargs).arrival == "burst"

    def test_burst_arrivals_nondecreasing(self):
        workload = build_workload(POOL, n_requests=500, seed=4, rate=200.0, arrival="burst")
        arrivals = np.array([request.arrival for request in workload.requests])
        assert np.all(np.diff(arrivals) >= 0)

    def test_burstier_than_poisson(self):
        """On/off modulation must raise the inter-arrival coefficient of
        variation well above the Poisson process's ~1."""
        n = 2000
        burst = build_workload(
            POOL, n_requests=n, seed=6, rate=200.0, arrival="burst", burst_factor=6.0
        )
        poisson = build_workload(POOL, n_requests=n, seed=6, rate=200.0)
        def cv(workload):
            gaps = np.diff([request.arrival for request in workload.requests])
            return gaps.std() / gaps.mean()
        assert cv(poisson) < 1.3
        assert cv(burst) > 1.5 * cv(poisson)

    def test_default_arrival_shape_unchanged(self):
        """The historical configuration must replay bit-for-bit: defaults
        keep the Poisson draw order (regression against reordering draws)."""
        workload = build_workload(POOL, n_requests=50, seed=9, rate=100.0)
        assert workload.arrival == "poisson"
        rng = np.random.default_rng(9)
        rng.integers(0, len(POOL), size=50)          # sequence indices
        rng.integers(0, 100, size=50)                # key ranks
        arrivals = np.cumsum(rng.exponential(1.0 / 100.0, size=50))
        np.testing.assert_array_equal(
            [request.arrival for request in workload.requests], arrivals
        )

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"arrival": "burst"}, "rate"),
            ({"arrival": "burst", "rate": 100, "burst_factor": 1.0}, "burst_factor"),
            ({"arrival": "burst", "rate": 100, "burst_on_seconds": 0}, "positive"),
            ({"arrival": "burst", "rate": 100, "burst_off_seconds": -1}, "positive"),
            ({"arrival": "square"}, "arrival"),
        ],
    )
    def test_invalid_burst_configs_raise(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            build_workload(POOL, n_requests=10, seed=1, **kwargs)


class TestSequenceDistribution:
    def test_zipf_sequences_concentrate_on_rank_zero(self):
        workload = build_workload(
            POOL, n_requests=2000, seed=8, sequence_distribution="zipf", zipf_s=1.6
        )
        counts = {}
        for request in workload.requests:
            counts[request.sequence] = counts.get(request.sequence, 0) + 1
        hottest = max(counts, key=counts.get)
        assert hottest == POOL[0]  # rank 0 of the pool is the hottest payload
        assert counts[hottest] > 2 * (2000 / len(POOL))

    def test_uniform_sequences_stay_flat(self):
        workload = build_workload(POOL, n_requests=2000, seed=8)
        counts = {}
        for request in workload.requests:
            counts[request.sequence] = counts.get(request.sequence, 0) + 1
        assert max(counts.values()) < 1.3 * (2000 / len(POOL))

    def test_unknown_sequence_distribution_raises(self):
        with pytest.raises(ValueError, match="sequence_distribution"):
            build_workload(POOL, n_requests=10, seed=1, sequence_distribution="pareto")
