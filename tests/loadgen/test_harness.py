"""Harness semantics over a controllable stub target (no network, no models).

The runners' accounting contract is what matters here: every scheduled
request is issued exactly once, outcomes are classified ok/shed/error, and
the report's arithmetic (throughput, quantiles, JSON round-trip) is exact.
Real-server behaviour is covered by ``tests/server/test_loadgen_integration``.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.loadgen import (
    LoadReport,
    build_workload,
    latency_summary,
    run_closed_loop,
    run_open_loop,
)
from repro.loadgen.harness import ERROR, OK, SHED

POOL = [("pasta", "tomato"), ("rice", "nori"), ("beef", "chili")]


class StubTarget:
    """Classifies outcomes by key suffix; records every issued request."""

    def __init__(self, delay: float = 0.0) -> None:
        self.delay = delay
        self.issued: list[tuple[tuple[str, ...], str]] = []
        self.closed = False

    async def predict(self, sequence, key):
        self.issued.append((sequence, key))
        if self.delay:
            await asyncio.sleep(self.delay)
        rank = int(key.rsplit("-", 1)[1])
        if rank % 10 == 3:
            return SHED
        if rank % 10 == 7:
            return ERROR
        return OK

    async def aclose(self):
        self.closed = True


def test_closed_loop_issues_every_request_once():
    workload = build_workload(POOL, n_requests=120, seed=4, n_keys=40)
    target = StubTarget()
    report = run_closed_loop(target, workload, concurrency=6)
    assert len(target.issued) == 120
    assert sorted(target.issued) == sorted(
        (request.sequence, request.key) for request in workload.requests
    )
    assert report.ok + report.shed + report.errors == 120
    assert report.mode == "closed"
    assert report.concurrency == 6
    assert target.closed


def test_outcome_classification_matches_key_population():
    workload = build_workload(POOL, n_requests=300, seed=8, n_keys=40)
    expected_shed = sum(
        1 for request in workload.requests
        if int(request.key.rsplit("-", 1)[1]) % 10 == 3
    )
    expected_error = sum(
        1 for request in workload.requests
        if int(request.key.rsplit("-", 1)[1]) % 10 == 7
    )
    report = run_closed_loop(StubTarget(), workload, concurrency=4)
    assert report.shed == expected_shed
    assert report.errors == expected_error
    assert report.ok == 300 - expected_shed - expected_error


def test_open_loop_requires_rate_and_completes_everything():
    closed_only = build_workload(POOL, n_requests=10, seed=1)
    with pytest.raises(ValueError, match="rate"):
        run_open_loop(StubTarget(), closed_only)

    workload = build_workload(POOL, n_requests=80, seed=2, rate=400.0)
    target = StubTarget(delay=0.002)
    report = run_open_loop(target, workload)
    assert len(target.issued) == 80
    assert report.mode == "open"
    assert report.offered_rate_rps == 400.0
    assert report.ok + report.shed + report.errors == 80
    # Open-loop wall clock covers at least the scheduled arrival span.
    assert report.duration_seconds >= workload.duration


def test_exceptions_in_target_count_as_errors():
    class ExplodingTarget:
        async def predict(self, sequence, key):
            raise ConnectionResetError("boom")

        async def aclose(self):
            pass

    workload = build_workload(POOL, n_requests=12, seed=3)
    report = run_closed_loop(ExplodingTarget(), workload, concurrency=3)
    assert report.errors == 12
    assert report.ok == 0


def test_latency_summary_exact_quantiles():
    samples = [i / 1000.0 for i in range(1, 101)]  # 1ms .. 100ms
    summary = latency_summary(samples)
    assert summary["count"] == 100
    assert np.isclose(summary["p50_ms"], 1000.0 * np.quantile(samples, 0.5))
    assert np.isclose(summary["p99_ms"], 1000.0 * np.quantile(samples, 0.99))
    assert np.isclose(summary["max_ms"], 100.0)
    assert latency_summary([])["count"] == 0


def test_report_json_round_trip(tmp_path):
    workload = build_workload(POOL, n_requests=30, seed=6, rate=500.0)
    report = run_open_loop(StubTarget(), workload)
    path = report.save(tmp_path / "reports" / "BENCH_loadgen.json")
    loaded = json.loads(path.read_text())
    assert loaded == report.as_dict()
    assert loaded["seed"] == 6
    assert set(loaded["latency"]) == {
        "count", "mean_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms",
    }
    # The artifact is deterministic modulo timing: the schedule fields are.
    assert loaded["n_requests"] == 30
    assert loaded["mode"] == "open"


def test_invalid_concurrency():
    workload = build_workload(POOL, n_requests=5, seed=1)
    with pytest.raises(ValueError, match="concurrency"):
        run_closed_loop(StubTarget(), workload, concurrency=0)


class TracingTarget:
    """Returns ``(kind, trace_id)`` tuples with per-key delays, like the
    built-in HTTP targets do when the server echoes ``X-Repro-Trace``."""

    def __init__(self, delays: dict[str, float]) -> None:
        self.delays = delays

    async def predict(self, sequence, key):
        await asyncio.sleep(self.delays.get(key, 0.001))
        return OK, f"trace-{key}"

    async def aclose(self):
        pass


def test_slow_traces_records_the_slowest_request_ids():
    workload = build_workload(POOL, n_requests=20, seed=5, n_keys=20)
    keys = sorted({request.key for request in workload.requests})
    delays = {keys[0]: 0.05, keys[1]: 0.03}
    report = run_closed_loop(TracingTarget(delays), workload, concurrency=4)
    assert report.slow_traces  # tracing targets populate the field
    assert len(report.slow_traces) <= 5
    # slowest-first, and the two artificially slow keys lead the list
    latencies = [entry["latency_ms"] for entry in report.slow_traces]
    assert latencies == sorted(latencies, reverse=True)
    assert {report.slow_traces[0]["trace_id"], report.slow_traces[1]["trace_id"]} == {
        f"trace-{keys[0]}", f"trace-{keys[1]}"
    }
    assert all(entry["outcome"] == OK for entry in report.slow_traces)
    # the artifact carries them too
    assert report.as_dict()["slow_traces"][0]["trace_id"] == report.slow_traces[0]["trace_id"]


def test_untraced_targets_leave_slow_traces_empty():
    workload = build_workload(POOL, n_requests=10, seed=2)
    report = run_closed_loop(StubTarget(), workload, concurrency=2)
    assert report.slow_traces == ()
    assert report.as_dict()["slow_traces"] == []
