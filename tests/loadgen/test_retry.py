"""HTTPTarget's single connection-level retry and MultiHTTPTarget striping."""

from __future__ import annotations

import asyncio
import hashlib

import pytest

from repro.loadgen.client import ClientResponse
from repro.loadgen.harness import ERROR, OK, SHED, HTTPTarget, MultiHTTPTarget


class FlakyPool:
    """A stand-in pool scripted to fail N times before answering."""

    def __init__(self, failures, status: int = 200) -> None:
        self._failures = list(failures)
        self._status = status
        self.calls = 0

    async def request(self, method, path, payload, headers=None):
        self.calls += 1
        if self._failures:
            raise self._failures.pop(0)
        return ClientResponse(status=self._status, headers={}, body=b"{}")

    def close(self) -> None:
        pass


def _target_with_pool(pool) -> HTTPTarget:
    target = HTTPTarget("127.0.0.1", 1, "cuisine")
    target._pool = pool
    return target


class TestHTTPTargetRetry:
    def test_connection_reset_is_retried_once(self):
        pool = FlakyPool([ConnectionResetError()])
        target = _target_with_pool(pool)
        assert asyncio.run(target.predict(("x",), "user-1")) == (OK, None)
        assert pool.calls == 2
        assert target.retries == 1

    @pytest.mark.parametrize(
        "failure",
        [ConnectionResetError(), asyncio.IncompleteReadError(b"", 1), OSError()],
        ids=["reset", "eof", "oserror"],
    )
    def test_every_transport_failure_kind_is_retryable(self, failure):
        target = _target_with_pool(FlakyPool([failure]))
        assert asyncio.run(target.predict(("x",), "user-1")) == (OK, None)

    def test_second_failure_is_an_error(self):
        pool = FlakyPool([ConnectionResetError(), ConnectionResetError()])
        target = _target_with_pool(pool)
        assert asyncio.run(target.predict(("x",), "user-1")) == (ERROR, None)
        assert pool.calls == 2  # exactly one re-send, never a loop
        assert target.retries == 1

    def test_non_transport_failure_is_not_retried(self):
        pool = FlakyPool([ValueError("bad payload")])
        target = _target_with_pool(pool)
        assert asyncio.run(target.predict(("x",), "user-1")) == (ERROR, None)
        assert pool.calls == 1
        assert target.retries == 0

    def test_statuses_still_classified(self):
        assert asyncio.run(
            _target_with_pool(FlakyPool([], status=429)).predict(("x",), "k")
        ) == (SHED, None)
        assert asyncio.run(
            _target_with_pool(FlakyPool([], status=500)).predict(("x",), "k")
        ) == (ERROR, None)

    def test_retry_after_shed_status_never_happens(self):
        """A 429 is a *response*, not a transport failure — no re-send."""
        pool = FlakyPool([], status=429)
        target = _target_with_pool(pool)
        asyncio.run(target.predict(("x",), "k"))
        assert pool.calls == 1


class TestMultiHTTPTarget:
    ADDRESSES = [("127.0.0.1", 9001), ("127.0.0.1", 9002), ("127.0.0.1", 9003)]

    def test_empty_addresses_rejected(self):
        with pytest.raises(ValueError, match="at least one address"):
            MultiHTTPTarget([], "cuisine")

    def test_striping_is_deterministic(self):
        first = MultiHTTPTarget(self.ADDRESSES, "cuisine")
        second = MultiHTTPTarget(self.ADDRESSES, "cuisine")
        for index in range(50):
            key = f"user-{index}"
            assert first._member(key).port == second._member(key).port
            assert first._member(key) is first._member(key)

    def test_striping_matches_blake2b(self):
        target = MultiHTTPTarget(self.ADDRESSES, "cuisine")
        key = "user-17"
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        expected = int.from_bytes(digest, "big") % len(self.ADDRESSES)
        assert target._member(key) is target._targets[expected]

    def test_every_member_gets_a_share(self):
        target = MultiHTTPTarget(self.ADDRESSES, "cuisine")
        owners = {target._member(f"user-{index}").port for index in range(100)}
        assert owners == {port for _, port in self.ADDRESSES}

    def test_predict_delegates_to_the_owning_member(self):
        target = MultiHTTPTarget(self.ADDRESSES, "cuisine")
        member = target._member("user-17")
        pool = FlakyPool([ConnectionResetError()])
        member._pool = pool
        # Other members would explode if touched (no server is listening and
        # their pools are unset real pools pointing at closed ports) — but
        # only the owning member's scripted pool is exercised.
        assert asyncio.run(target.predict(("x",), "user-17")) == (OK, None)
        assert pool.calls == 2
        assert target.retries == 1  # aggregated over members
