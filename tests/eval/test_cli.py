"""The ``repro-eval`` CLI: golden-set builds, offline gates, ``--json`` output."""

from __future__ import annotations

import json

import pytest

from repro.eval import load_golden_set, save_golden_set
from repro.eval.cli import main


def test_build_writes_verifiable_golden_set(tmp_path, capsys):
    out = tmp_path / "golden_cuisine.jsonl"
    rc = main(
        ["build", "--out", str(out), "--scale", "0.004", "--seed", "11", "--size", "60"]
    )
    assert rc == 0
    golden = load_golden_set(out)
    assert len(golden) == 60
    assert golden.fingerprint() in capsys.readouterr().out

    # Same arguments → byte-identical artifact.
    again = tmp_path / "again.jsonl"
    rc = main(
        ["build", "--out", str(again), "--scale", "0.004", "--seed", "11", "--size", "60"]
    )
    assert rc == 0
    assert again.read_bytes() == out.read_bytes()


def test_run_promotes_equal_candidate_with_json(
    good_bundle_dir, golden_tiny, tmp_path, capsys
):
    golden_path = save_golden_set(golden_tiny, tmp_path / "golden.jsonl")
    argv = [
        "run",
        "--baseline-bundle",
        str(good_bundle_dir),
        "--candidate-bundle",
        str(good_bundle_dir),
        "--golden",
        str(golden_path),
        "--seed",
        "3",
        "--json",
    ]
    rc = main(argv)
    first = capsys.readouterr().out
    verdict = json.loads(first)
    assert rc == 0
    assert verdict["decision"] == "promote"
    assert verdict["candidate"] == "candidate"
    assert verdict["baseline"] == "baseline"

    # The canonical JSON on stdout is byte-stable across runs.
    assert main(argv) == 0
    assert capsys.readouterr().out == first


def test_run_rolls_back_degraded_candidate(
    good_bundle_dir, degraded_bundle_dir, golden_tiny, tmp_path, capsys
):
    golden_path = save_golden_set(golden_tiny, tmp_path / "golden.jsonl")
    rc = main(
        [
            "run",
            "--baseline-bundle",
            str(good_bundle_dir),
            "--candidate-bundle",
            str(degraded_bundle_dir),
            "--golden",
            str(golden_path),
            "--json",
        ]
    )
    assert rc == 2
    assert json.loads(capsys.readouterr().out)["decision"] == "rollback"


def test_run_human_output_lists_reasons(
    good_bundle_dir, golden_tiny, tmp_path, capsys
):
    golden_path = save_golden_set(golden_tiny, tmp_path / "golden.jsonl")
    rc = main(
        [
            "run",
            "--baseline-bundle",
            str(good_bundle_dir),
            "--candidate-bundle",
            str(good_bundle_dir),
            "--golden",
            str(golden_path),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "verdict: promote" in out
    assert "accuracy delta" in out


def test_bad_policy_json_exits_with_message(good_bundle_dir, golden_tiny, tmp_path):
    golden_path = save_golden_set(golden_tiny, tmp_path / "golden.jsonl")
    with pytest.raises(SystemExit, match="not valid JSON"):
        main(
            [
                "run",
                "--baseline-bundle",
                str(good_bundle_dir),
                "--candidate-bundle",
                str(good_bundle_dir),
                "--golden",
                str(golden_path),
                "--policy",
                "{nope",
            ]
        )


def test_policy_override_is_applied(good_bundle_dir, golden_tiny, tmp_path, capsys):
    golden_path = save_golden_set(golden_tiny, tmp_path / "golden.jsonl")
    rc = main(
        [
            "run",
            "--baseline-bundle",
            str(good_bundle_dir),
            "--candidate-bundle",
            str(good_bundle_dir),
            "--golden",
            str(golden_path),
            "--policy",
            '{"min_examples": 100000}',
            "--json",
        ]
    )
    verdict = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert verdict["decision"] == "hold"
    assert verdict["policy"]["min_examples"] == 100000
