"""The layered evaluator: metric helpers, gating, and gateway integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import (
    EvalPolicy,
    LayeredEvaluator,
    accuracy_score,
    brier_score,
    build_golden_set,
    expected_calibration_error,
)
from repro.eval.harness import LAYERS


class TestMetrics:
    def test_accuracy(self):
        predicted = np.array([0, 1, 2, 2])
        expected = np.array([0, 1, 1, 2])
        assert accuracy_score(predicted, expected) == pytest.approx(0.75)

    def test_brier_perfect_prediction_is_zero(self):
        probabilities = np.eye(3)
        expected = np.array([0, 1, 2])
        assert brier_score(probabilities, expected) == pytest.approx(0.0)

    def test_brier_hand_computed(self):
        probabilities = np.array([[0.8, 0.2], [0.4, 0.6]])
        expected = np.array([0, 0])
        # (0.04 + 0.04) and (0.36 + 0.36), averaged.
        assert brier_score(probabilities, expected) == pytest.approx(0.4)

    def test_ece_confident_and_correct_is_zero(self):
        probabilities = np.array([[1.0, 0.0], [0.0, 1.0]])
        expected = np.array([0, 1])
        assert expected_calibration_error(probabilities, expected) == pytest.approx(0.0)

    def test_ece_confident_and_wrong_is_large(self):
        probabilities = np.array([[1.0, 0.0], [1.0, 0.0]])
        expected = np.array([1, 1])
        assert expected_calibration_error(probabilities, expected) == pytest.approx(1.0)


class TestLayeredEvaluation:
    def test_identical_candidate_passes_every_layer(self, eval_gateway, golden_tiny):
        report = LayeredEvaluator(eval_gateway).evaluate("cuisine", "v2", golden_tiny)
        assert report.baseline == "v1"
        assert [layer.name for layer in report.layers] == list(LAYERS)
        assert report.passed
        assert report.failed_layer is None
        accuracy = report.layer("accuracy")
        assert accuracy.details["delta"] == pytest.approx(0.0)
        assert np.array_equal(report.candidate_correct, report.baseline_correct)

    def test_degraded_candidate_fails_accuracy_and_skips_rest(
        self, eval_gateway, golden_tiny
    ):
        report = LayeredEvaluator(eval_gateway).evaluate("cuisine", "v3", golden_tiny)
        assert not report.passed
        assert report.failed_layer == "accuracy"
        assert report.layer("accuracy").details["delta"] < -0.05
        assert report.layer("calibration").skipped
        assert report.layer("slices").skipped

    def test_compatibility_failure_skips_everything(self, eval_gateway, golden_tiny):
        report = LayeredEvaluator(eval_gateway).evaluate(
            "cuisine",
            "v2",
            golden_tiny,
            policy=EvalPolicy(min_examples=len(golden_tiny) + 1),
        )
        compat = report.layer("compatibility")
        assert not compat.passed
        assert any("requires at least" in p for p in compat.details["problems"])
        for name in LAYERS[1:]:
            assert report.layer(name).skipped
        assert report.candidate_correct is None

    def test_wrong_route_golden_fails_compatibility(self, eval_gateway, tiny_corpus):
        golden = build_golden_set(tiny_corpus, "other-route", seed=11)
        report = LayeredEvaluator(eval_gateway).evaluate("cuisine", "v2", golden)
        compat = report.layer("compatibility")
        assert not compat.passed
        assert any("targets route" in p for p in compat.details["problems"])

    def test_unknown_candidate_raises_key_error(self, eval_gateway, golden_tiny):
        with pytest.raises(KeyError, match="candidate version 'v99'"):
            LayeredEvaluator(eval_gateway).evaluate("cuisine", "v99", golden_tiny)

    def test_unknown_route_raises_key_error(self, eval_gateway, golden_tiny):
        with pytest.raises(KeyError, match="no route"):
            LayeredEvaluator(eval_gateway).evaluate("nope", "v2", golden_tiny)

    def test_explicit_baseline_overrides_active(self, eval_gateway, golden_tiny):
        report = LayeredEvaluator(eval_gateway).evaluate(
            "cuisine", "v1", golden_tiny, baseline="v2"
        )
        assert report.baseline == "v2"
        assert report.passed

    def test_report_as_dict_is_json_safe(self, eval_gateway, golden_tiny):
        import json

        report = LayeredEvaluator(eval_gateway).evaluate("cuisine", "v3", golden_tiny)
        payload = report.as_dict()
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["failed_layer"] == "accuracy"
        assert round_tripped["golden_fingerprint"] == golden_tiny.fingerprint()

    def test_evaluation_traffic_generates_no_shadow_mirrors(
        self, eval_gateway, golden_tiny
    ):
        from repro.gateway.policies import Shadow

        eval_gateway.set_policy("cuisine", Shadow(candidate="v2"))
        LayeredEvaluator(eval_gateway).evaluate("cuisine", "v2", golden_tiny)
        eval_gateway.flush_shadows()
        snapshot = eval_gateway.registry.metrics("cuisine").snapshot()
        # Version-pinned eval predictions bypass the policy entirely.
        assert snapshot["shadow"]["requests"] == 0
