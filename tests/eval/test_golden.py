"""Golden sets: deterministic construction, JSONL persistence, tamper checks."""

from __future__ import annotations

import json

import pytest

from repro.eval import (
    CORE_SLICE,
    GoldenExample,
    GoldenSet,
    build_golden_set,
    golden_set_path,
    load_golden_set,
    save_golden_set,
)


class TestBuild:
    def test_same_inputs_same_fingerprint(self, tiny_corpus):
        first = build_golden_set(tiny_corpus, "cuisine", size=100, seed=11)
        second = build_golden_set(tiny_corpus, "cuisine", size=100, seed=11)
        assert first.fingerprint() == second.fingerprint()
        assert first.examples == second.examples

    def test_seed_changes_sampled_content(self, tiny_corpus):
        first = build_golden_set(tiny_corpus, "cuisine", size=100, seed=11)
        second = build_golden_set(tiny_corpus, "cuisine", size=100, seed=12)
        assert first.fingerprint() != second.fingerprint()

    def test_size_caps_examples(self, tiny_corpus):
        golden = build_golden_set(tiny_corpus, "cuisine", size=50, seed=1)
        assert len(golden) == 50

    def test_holdout_slices_tag_rarest_cuisines(self, tiny_corpus):
        golden = build_golden_set(tiny_corpus, "cuisine", holdout_cuisines=3, seed=1)
        counts = tiny_corpus.cuisine_counts()
        rarest = sorted(counts, key=lambda c: (counts[c], c))[:3]
        holdout_slices = {
            name for name in golden.slices() if name.startswith("holdout:")
        }
        assert holdout_slices == {f"holdout:{c}" for c in rarest}
        for example in golden.examples:
            if example.expected in rarest:
                assert example.slice_name == f"holdout:{example.expected}"
            else:
                assert example.slice_name == CORE_SLICE

    def test_slices_partition_all_examples(self, golden_tiny):
        indices = [i for group in golden_tiny.slices().values() for i in group]
        assert sorted(indices) == list(range(len(golden_tiny)))

    def test_expected_label_outside_space_rejected(self):
        with pytest.raises(ValueError, match="outside the set's"):
            GoldenSet(
                route="cuisine",
                version="1",
                label_space=("Italian",),
                examples=(GoldenExample(sequence=("a",), expected="Thai"),),
            )

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError, match="empty sequence"):
            GoldenExample(sequence=(), expected="Italian")


class TestPersistence:
    def test_round_trip_preserves_fingerprint(self, golden_tiny, tmp_path):
        path = save_golden_set(golden_tiny, golden_set_path(tmp_path, "cuisine"))
        assert path.name == "golden_cuisine.jsonl"
        loaded = load_golden_set(path)
        assert loaded.fingerprint() == golden_tiny.fingerprint()
        assert loaded.examples == golden_tiny.examples
        assert loaded.label_space == golden_tiny.label_space
        assert loaded.version == golden_tiny.version

    def test_save_is_byte_deterministic(self, golden_tiny, tmp_path):
        first = save_golden_set(golden_tiny, tmp_path / "a.jsonl").read_bytes()
        second = save_golden_set(golden_tiny, tmp_path / "b.jsonl").read_bytes()
        assert first == second

    def test_tampered_example_rejected(self, golden_tiny, tmp_path):
        path = save_golden_set(golden_tiny, tmp_path / "golden.jsonl")
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["expected"] = next(
            label for label in golden_tiny.label_space if label != record["expected"]
        )
        lines[1] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="fingerprint"):
            load_golden_set(path)

    def test_truncated_file_rejected(self, golden_tiny, tmp_path):
        path = save_golden_set(golden_tiny, tmp_path / "golden.jsonl")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-5]) + "\n")
        with pytest.raises(ValueError, match="declares"):
            load_golden_set(path)

    def test_non_golden_file_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(ValueError, match="not a repro-golden-set"):
            load_golden_set(path)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_golden_set(tmp_path / "absent.jsonl")
