"""Canary analysis: exact binomial test, seeded bootstrap, verdict semantics.

Includes the property test the acceptance criteria name: same seed + same
golden set + same model pair ⇒ byte-identical verdict JSON.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.eval import (
    CanaryAnalyzer,
    EvalPolicy,
    EvalReport,
    LayerResult,
    ShadowEvidence,
    VERDICT_CODES,
    binomial_cdf,
    evaluate_route,
)
from repro.eval.harness import LAYERS
from repro.observability import RouteMetrics


def make_report(candidate_correct, baseline_correct, *, passed=True, failed=()):
    """A synthetic EvalReport with hand-chosen correctness vectors."""
    report = EvalReport(
        route="cuisine",
        candidate="cand",
        baseline="base",
        golden_version="g1",
        golden_fingerprint="f" * 32,
        examples=len(candidate_correct),
    )
    report.layers = [
        LayerResult(name=name, passed=passed and name not in failed)
        for name in LAYERS
    ]
    report.candidate_correct = np.asarray(candidate_correct, dtype=np.float64)
    report.baseline_correct = np.asarray(baseline_correct, dtype=np.float64)
    return report


class TestBinomialCdf:
    def test_exact_small_case(self):
        # P(X <= 2) for Binomial(4, 0.5) = (1 + 4 + 6) / 16.
        assert binomial_cdf(2, 4, 0.5) == pytest.approx(11 / 16)

    def test_matches_exact_summation(self):
        total = sum(
            math.comb(30, k) * 0.8**k * 0.2 ** (30 - k) for k in range(0, 21)
        )
        assert binomial_cdf(20, 30, 0.8) == pytest.approx(total, rel=1e-12)

    def test_boundaries(self):
        assert binomial_cdf(10, 10, 0.3) == 1.0
        assert binomial_cdf(-1, 10, 0.3) == 0.0
        assert binomial_cdf(0, 10, 0.0) == 1.0
        assert binomial_cdf(5, 10, 1.0) == 0.0


class TestVerdicts:
    def test_identical_pair_promotes(self):
        correct = np.ones(200)
        verdict = CanaryAnalyzer(seed=0).analyze(make_report(correct, correct))
        assert verdict.decision == "promote"
        assert verdict.code == 1.0

    def test_confident_regression_rolls_back(self):
        baseline = np.ones(400)
        candidate = np.zeros(400)
        candidate[:200] = 1.0  # 50% vs 100%: far outside any CI
        verdict = CanaryAnalyzer(seed=0).analyze(
            make_report(candidate, baseline, failed=("accuracy",))
        )
        assert verdict.decision == "rollback"
        assert verdict.code == -1.0
        stats = verdict.statistics["bootstrap"]
        assert stats["upper"] < stats["margin"]

    def test_borderline_regression_holds(self):
        rng = np.random.default_rng(7)
        baseline = (rng.random(120) < 0.85).astype(float)
        candidate = baseline.copy()
        flips = rng.choice(np.flatnonzero(candidate), size=4, replace=False)
        candidate[flips] = 0.0  # small delta: the CI straddles the margin
        verdict = CanaryAnalyzer(seed=0).analyze(make_report(candidate, baseline))
        assert verdict.decision == "hold"
        stats = verdict.statistics["bootstrap"]
        assert stats["lower"] < stats["margin"] <= stats["upper"]

    def test_failed_soft_layer_blocks_promotion(self):
        correct = np.ones(200)
        report = make_report(correct, correct, failed=("slices",))
        verdict = CanaryAnalyzer(seed=0).analyze(report)
        assert verdict.decision == "hold"
        assert any("'slices' failed" in reason for reason in verdict.reasons)

    def test_compatibility_failure_holds_without_statistics(self):
        report = EvalReport(
            route="cuisine",
            candidate="cand",
            baseline="base",
            golden_version="g1",
            golden_fingerprint="f" * 32,
            examples=3,
        )
        report.layers = [
            LayerResult(
                name="compatibility", passed=False, details={"problems": ["too small"]}
            )
        ] + [LayerResult(name=name, passed=False, skipped=True) for name in LAYERS[1:]]
        verdict = CanaryAnalyzer(seed=0).analyze(report)
        assert verdict.decision == "hold"
        assert verdict.statistics["bootstrap"] is None

    def test_invalid_decision_rejected(self):
        correct = np.ones(50)
        verdict = CanaryAnalyzer(seed=0).analyze(make_report(correct, correct))
        with pytest.raises(ValueError, match="decision"):
            type(verdict)(**{**verdict.__dict__, "decision": "maybe"})

    def test_codes_cover_every_decision(self):
        assert VERDICT_CODES == {"promote": 1.0, "hold": 0.0, "rollback": -1.0}


class TestShadowEvidence:
    def _promotable(self):
        correct = np.ones(200)
        return make_report(correct, correct)

    def test_insufficient_shadow_traffic_is_inconclusive(self):
        shadow = ShadowEvidence(primary="base", shadow="cand", requests=10, agreements=9)
        verdict = CanaryAnalyzer(seed=0).analyze(self._promotable(), shadow)
        assert verdict.decision == "promote"
        assert verdict.statistics["shadow"]["sufficient"] is False

    def test_significantly_low_agreement_rolls_back(self):
        shadow = ShadowEvidence(primary="base", shadow="cand", requests=200, agreements=120)
        verdict = CanaryAnalyzer(seed=0).analyze(self._promotable(), shadow)
        assert verdict.decision == "rollback"
        assert verdict.statistics["shadow"]["p_value"] < 0.05

    def test_slightly_low_agreement_holds(self):
        shadow = ShadowEvidence(primary="base", shadow="cand", requests=100, agreements=78)
        verdict = CanaryAnalyzer(seed=0).analyze(self._promotable(), shadow)
        assert verdict.decision == "hold"

    def test_healthy_agreement_promotes(self):
        shadow = ShadowEvidence(primary="base", shadow="cand", requests=200, agreements=190)
        verdict = CanaryAnalyzer(seed=0).analyze(self._promotable(), shadow)
        assert verdict.decision == "promote"

    def test_class_skew_demotes_to_hold(self):
        shadow = ShadowEvidence(
            primary="base",
            shadow="cand",
            requests=300,
            agreements=285,
            by_class={"Italian": (255, 0), "Thai": (30, 15)},
        )
        verdict = CanaryAnalyzer(seed=0).analyze(self._promotable(), shadow)
        assert verdict.decision == "hold"
        assert verdict.statistics["shadow"]["skewed_classes"] == ["Thai"]

    def test_from_metrics_snapshot_reads_pair_counters(self):
        metrics = RouteMetrics()
        metrics.record_shadow(
            "cand", 40, 10, primary="base", by_class={"Italian": (25, 5), "Thai": (15, 5)}
        )
        metrics.record_shadow("cand", 7, 3, primary="other")  # different pair
        evidence = ShadowEvidence.from_metrics_snapshot(
            metrics.snapshot(), primary="base", shadow="cand"
        )
        assert evidence.requests == 50
        assert evidence.agreements == 40
        assert evidence.by_class == {"Italian": (25, 5), "Thai": (15, 5)}

    def test_missing_pair_yields_zero_evidence(self):
        evidence = ShadowEvidence.from_metrics_snapshot(
            RouteMetrics().snapshot(), primary="base", shadow="cand"
        )
        assert evidence.requests == 0
        assert evidence.agreement_rate is None


class TestDeterminism:
    def test_same_seed_byte_identical_property(self):
        """Property: any report analyzed twice with one seed is byte-stable."""
        for trial in range(25):
            rng = np.random.default_rng(trial)
            count = int(rng.integers(40, 300))
            baseline = (rng.random(count) < rng.uniform(0.5, 1.0)).astype(float)
            flip = rng.random(count) < rng.uniform(0.0, 0.3)
            candidate = np.where(flip, 1.0 - baseline, baseline)
            shadow = None
            if trial % 3 == 0:
                requests = int(rng.integers(10, 500))
                shadow = ShadowEvidence(
                    primary="base",
                    shadow="cand",
                    requests=requests,
                    agreements=int(rng.integers(0, requests + 1)),
                )
            seed = int(rng.integers(0, 2**31))
            first = CanaryAnalyzer(seed=seed).analyze(
                make_report(candidate, baseline), shadow
            )
            second = CanaryAnalyzer(seed=seed).analyze(
                make_report(candidate, baseline), shadow
            )
            assert first.to_json() == second.to_json()
            # Canonical JSON round-trips through a generic JSON parser.
            assert json.loads(first.to_json())["decision"] == first.decision

    def test_full_stack_verdict_byte_identical(self, eval_gateway, golden_tiny):
        """Same seed + same golden set + same model pair ⇒ identical JSON."""
        _, first = evaluate_route(eval_gateway, "cuisine", "v2", golden_tiny, seed=17)
        _, second = evaluate_route(eval_gateway, "cuisine", "v2", golden_tiny, seed=17)
        assert first.to_json().encode() == second.to_json().encode()
        assert "timestamp" not in first.to_json()

    def test_different_seed_changes_statistics_not_stability(
        self, eval_gateway, golden_tiny
    ):
        _, first = evaluate_route(eval_gateway, "cuisine", "v2", golden_tiny, seed=1)
        _, second = evaluate_route(eval_gateway, "cuisine", "v2", golden_tiny, seed=2)
        assert json.loads(first.to_json())["seed"] == 1
        assert json.loads(second.to_json())["seed"] == 2


class TestPolicy:
    def test_round_trip(self):
        policy = EvalPolicy(max_accuracy_drop=0.05, bootstrap_resamples=100)
        assert EvalPolicy.from_dict(policy.as_dict()) == policy

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown EvalPolicy fields"):
            EvalPolicy.from_dict({"max_acc_drop": 0.1})

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError, match="min_agreement_rate"):
            EvalPolicy(min_agreement_rate=1.5)
        with pytest.raises(ValueError, match="bootstrap_resamples"):
            EvalPolicy(bootstrap_resamples=1)
