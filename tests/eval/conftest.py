"""Shared fixtures for the eval-gate test suite.

Two logreg bundles are trained once per session on the tiny corpus: a *good*
one on the real labels and a *degraded* one on label-permuted recipes (the
permutation preserves schema validity while destroying the label mapping), so
tests can exercise both promote and rollback paths deterministically.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.data.recipedb import RecipeDB
from repro.eval import build_golden_set
from repro.gateway.gateway import ModelGateway

FAST_KWARGS = {"logreg": {"max_iter": 30}}


def _train_logreg(corpus, export_dir):
    config = ExperimentConfig(
        models=("logreg",),
        seed=3,
        statistical_kwargs=FAST_KWARGS,
        export_dir=str(export_dir),
    )
    ExperimentRunner(config, corpus=corpus).run()
    return export_dir / "logreg"


@pytest.fixture(scope="session")
def good_bundle_dir(tiny_corpus, tmp_path_factory):
    return _train_logreg(tiny_corpus, tmp_path_factory.mktemp("eval-good"))


@pytest.fixture(scope="session")
def degraded_bundle_dir(tiny_corpus, tmp_path_factory):
    """A bundle trained on label-permuted recipes: confidently wrong."""
    rng = np.random.default_rng(5)
    cuisines = tiny_corpus.cuisines
    permuted = [cuisines[i] for i in rng.permutation(len(cuisines))]
    corrupted = RecipeDB(
        [
            dataclasses.replace(recipe, cuisine=cuisine)
            for recipe, cuisine in zip(tiny_corpus.recipes, permuted)
        ]
    )
    return _train_logreg(corrupted, tmp_path_factory.mktemp("eval-degraded"))


@pytest.fixture(scope="session")
def golden_tiny(tiny_corpus):
    """A golden set over the whole tiny corpus (version ``g1``)."""
    return build_golden_set(tiny_corpus, "cuisine", version="g1", seed=11)


@pytest.fixture()
def eval_gateway(good_bundle_dir, degraded_bundle_dir):
    """``cuisine`` with v1 (good, active), v2 (good copy) and v3 (degraded)."""
    gateway = ModelGateway()
    gateway.deploy("cuisine", "v1", good_bundle_dir)
    gateway.deploy("cuisine", "v2", good_bundle_dir, activate=False)
    gateway.deploy("cuisine", "v3", degraded_bundle_dir, activate=False)
    yield gateway
    gateway.close()
