"""Tests for tokenization."""

from repro.text.tokenizer import tokenize, tokenize_sequence


class TestTokenize:
    def test_splits_on_whitespace_and_symbols(self):
        assert tokenize("olive oil, extra-virgin") == ["olive", "oil", "extra", "virgin"]

    def test_drops_digits(self):
        assert tokenize("2 cups of flour") == ["cups", "of", "flour"]

    def test_lowercases(self):
        assert tokenize("Red Lentil") == ["red", "lentil"]

    def test_lowercase_disabled(self):
        assert tokenize("Red Lentil", lowercase=False) == ["Red", "Lentil"]

    def test_keeps_apostrophes(self):
        assert tokenize("za'atar") == ["za'atar"]

    def test_empty_string(self):
        assert tokenize("") == []


class TestTokenizeSequence:
    def test_item_tokens_by_default(self):
        tokens = tokenize_sequence(["red lentil", "stir", "olive oil"])
        assert tokens == ["red_lentil", "stir", "olive_oil"]

    def test_split_items_mode(self):
        tokens = tokenize_sequence(["red lentil", "stir"], split_items=True)
        assert tokens == ["red", "lentil", "stir"]

    def test_custom_separator(self):
        tokens = tokenize_sequence(["red lentil"], item_separator="-")
        assert tokens == ["red-lentil"]

    def test_items_reduced_to_nothing_are_dropped(self):
        tokens = tokenize_sequence(["123", "stir"])
        assert tokens == ["stir"]

    def test_order_preserved(self):
        items = ["water", "red lentil", "stir", "heat", "pan"]
        tokens = tokenize_sequence(items, split_items=True)
        assert tokens == ["water", "red", "lentil", "stir", "heat", "pan"]
