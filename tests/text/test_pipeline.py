"""Tests for the end-to-end preprocessing pipeline (Section IV)."""

from repro.text.pipeline import (
    PipelineConfig,
    PreprocessingPipeline,
    default_sequential_pipeline,
    default_statistical_pipeline,
)


class TestProcessItem:
    def test_cleans_and_lemmatizes(self):
        pipeline = PreprocessingPipeline()
        assert pipeline.process_item("2 chopped Onions!") == ["chop", "onion"]

    def test_lemmatization_can_be_disabled(self):
        pipeline = PreprocessingPipeline(PipelineConfig(lemmatize=False))
        assert pipeline.process_item("chopped onions") == ["chopped", "onions"]

    def test_digit_removal_can_be_disabled(self):
        pipeline = PreprocessingPipeline(PipelineConfig(remove_digits_symbols=False, lemmatize=False))
        # Digits are still dropped by tokenization, but symbols don't split words.
        assert pipeline.process_item("onion") == ["onion"]

    def test_empty_item(self):
        pipeline = PreprocessingPipeline()
        assert pipeline.process_item("123!!") == []


class TestProcessSequence:
    def test_item_level_tokens_by_default(self):
        pipeline = default_sequential_pipeline()
        tokens = pipeline.process_sequence(["red lentils", "stir", "olive oil"])
        assert tokens == ["red_lentil", "stir", "olive_oil"]

    def test_word_level_tokens_for_statistical_models(self):
        pipeline = default_statistical_pipeline()
        tokens = pipeline.process_sequence(["red lentils", "stir"])
        assert tokens == ["red", "lentil", "stir"]

    def test_order_preserved(self):
        pipeline = default_sequential_pipeline()
        sequence = ["water", "red lentil", "smooth", "stir", "heat"]
        tokens = pipeline.process_sequence(sequence)
        assert tokens == ["water", "red_lentil", "smooth", "stir", "heat"]

    def test_empty_items_dropped(self):
        pipeline = default_sequential_pipeline()
        assert pipeline.process_sequence(["onion", "123", "stir"]) == ["onion", "stir"]


class TestCorpusLevel:
    def test_process_corpus_and_documents(self, handmade_corpus):
        pipeline = default_statistical_pipeline()
        tokenized = pipeline.process_corpus(handmade_corpus)
        documents = pipeline.documents(handmade_corpus)
        assert len(tokenized) == len(handmade_corpus) == len(documents)
        assert documents[0] == " ".join(tokenized[0])

    def test_process_recipe_matches_sequence_processing(self, handmade_corpus):
        pipeline = default_sequential_pipeline()
        recipe = handmade_corpus[0]
        assert pipeline.process_recipe(recipe) == pipeline.process_sequence(recipe.sequence)

    def test_resulting_tokens_contain_no_digits(self, tiny_corpus):
        pipeline = default_statistical_pipeline()
        for tokens in pipeline.process_corpus(tiny_corpus)[:30]:
            for token in tokens:
                assert not any(ch.isdigit() for ch in token)
