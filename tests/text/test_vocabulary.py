"""Tests for the token vocabulary."""

import pytest

from repro.text.vocabulary import (
    CLS_TOKEN,
    MASK_TOKEN,
    PAD_TOKEN,
    SPECIAL_TOKENS,
    UNK_TOKEN,
    Vocabulary,
)


class TestSpecialTokens:
    def test_special_tokens_get_first_ids(self):
        vocab = Vocabulary()
        assert vocab.pad_id == 0
        assert vocab.unk_id == 1
        assert vocab.cls_id == 2
        assert vocab.mask_id == 3
        assert vocab.special_ids == (0, 1, 2, 3)

    def test_special_token_constants(self):
        assert SPECIAL_TOKENS == (PAD_TOKEN, UNK_TOKEN, CLS_TOKEN, MASK_TOKEN)

    def test_without_special_tokens(self):
        vocab = Vocabulary(["a", "b"], include_special=False)
        assert len(vocab) == 2
        assert vocab.special_ids == ()
        with pytest.raises(KeyError):
            vocab.token_to_id("missing")


class TestBuild:
    def test_orders_by_frequency(self):
        docs = [["a", "b", "b", "c"], ["b", "c"], ["b"]]
        vocab = Vocabulary.build(docs)
        # b (4) before c (2) before a (1); ids start after the 4 specials.
        assert vocab.token_to_id("b") == 4
        assert vocab.token_to_id("c") == 5
        assert vocab.token_to_id("a") == 6

    def test_min_freq_prunes(self):
        docs = [["a", "b", "b"], ["b"]]
        vocab = Vocabulary.build(docs, min_freq=2)
        assert "b" in vocab
        assert "a" not in vocab

    def test_max_size_caps_regular_tokens(self):
        docs = [[f"tok{i}" for i in range(20)]]
        vocab = Vocabulary.build(docs, max_size=5)
        assert len(vocab) == 5 + len(SPECIAL_TOKENS)

    def test_frequency_recorded(self):
        docs = [["a", "a", "b"]]
        vocab = Vocabulary.build(docs)
        assert vocab.frequency("a") == 2
        assert vocab.frequency("zzz") == 0

    def test_ties_broken_alphabetically(self):
        docs = [["zeta", "alpha"]]
        vocab = Vocabulary.build(docs)
        assert vocab.token_to_id("alpha") < vocab.token_to_id("zeta")


class TestEncodeDecode:
    def test_roundtrip_known_tokens(self):
        vocab = Vocabulary.build([["onion", "stir"]])
        ids = vocab.encode(["onion", "stir"])
        assert vocab.decode(ids) == ["onion", "stir"]

    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary.build([["onion"]])
        assert vocab.encode(["mystery"]) == [vocab.unk_id]

    def test_contains_and_iter(self):
        vocab = Vocabulary.build([["onion"]])
        assert "onion" in vocab
        assert "garlic" not in vocab
        assert PAD_TOKEN in list(vocab)

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("onion")
        second = vocab.add("onion")
        assert first == second
        assert len(vocab) == len(SPECIAL_TOKENS) + 1
