"""Tests for cleaning (digit/symbol removal, Section IV of the paper)."""

import pytest

from repro.text.cleaning import clean_item, clean_sequence, remove_digits_and_symbols


class TestRemoveDigitsAndSymbols:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("red lentil", "red lentil"),
            ("2 cups flour", "cups flour"),
            ("olive-oil!", "olive oil"),
            ("100% whole wheat", "whole wheat"),
            ("salt & pepper", "salt pepper"),
            ("  extra   spaces  ", "extra spaces"),
            ("1234", ""),
            ("", ""),
        ],
    )
    def test_examples(self, raw, expected):
        assert remove_digits_and_symbols(raw) == expected

    def test_keeps_only_letters_and_spaces(self):
        cleaned = remove_digits_and_symbols("a1b2c3 (d)")
        assert all(ch.isalpha() or ch == " " for ch in cleaned)


class TestCleanItem:
    def test_lowercases_by_default(self):
        assert clean_item("Red Lentil") == "red lentil"

    def test_lowercase_can_be_disabled(self):
        assert clean_item("Red Lentil", lowercase=False) == "Red Lentil"

    def test_symbol_only_item_becomes_empty(self):
        assert clean_item("***") == ""


class TestCleanSequence:
    def test_drops_empty_items(self):
        assert clean_sequence(["onion", "123", "stir"]) == ["onion", "stir"]

    def test_preserves_order(self):
        sequence = ["water", "red lentil", "stir", "heat"]
        assert clean_sequence(sequence) == sequence

    def test_handles_empty_input(self):
        assert clean_sequence([]) == []
