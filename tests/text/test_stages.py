"""Tests for the composable preprocessing stages.

The load-bearing property is equivalence: the stage chain compiled from any
``PipelineConfig`` must reproduce the original monolithic pipeline's output
byte for byte — the reference implementation is inlined here from the seed
``PreprocessingPipeline.process_item`` so the facade can never drift silently.
"""

import itertools
import pickle
import random

from repro.pipeline.fingerprint import stable_hash
from repro.text.cleaning import clean_item
from repro.text.lemmatizer import Lemmatizer
from repro.text.pipeline import PipelineConfig, PreprocessingPipeline
from repro.text.stages import (
    CleanStage,
    JoinStage,
    LemmatizeStage,
    LowercaseStage,
    StageChain,
    TokenizeStage,
)
from repro.text.tokenizer import tokenize


def reference_process_sequence(sequence, config: PipelineConfig) -> list[str]:
    """The seed implementation of the monolithic pipeline, verbatim."""
    lemmatizer = Lemmatizer()
    tokens: list[str] = []
    for item in sequence:
        if config.remove_digits_symbols:
            item = clean_item(item, lowercase=config.lowercase)
        elif config.lowercase:
            item = item.lower()
        words = tokenize(item, lowercase=config.lowercase)
        if config.lemmatize:
            words = lemmatizer.lemmatize_all(words)
        if not words:
            continue
        if config.split_items:
            tokens.extend(words)
        else:
            tokens.append(config.item_separator.join(words))
    return tokens


ALL_CONFIGS = [
    PipelineConfig(
        lowercase=lowercase,
        remove_digits_symbols=remove,
        lemmatize=lemmatize,
        split_items=split,
        item_separator=separator,
    )
    for lowercase, remove, lemmatize, split, separator in itertools.product(
        (True, False), (True, False), (True, False), (True, False), ("_", "+")
    )
]

MESSY_SEQUENCE = [
    "2 chopped Onions!",
    "red lentils",
    "olive oil",
    "123!!",
    "Stir-fry the GARLIC",
    "don't overmix",
    "   ",
    "simmering tomatoes (diced)",
]


class TestCompilation:
    def test_default_config_compiles_to_full_chain(self):
        chain = StageChain.from_config(PipelineConfig())
        assert [type(s) for s in chain.stages] == [CleanStage, TokenizeStage, LemmatizeStage]
        assert chain.join == JoinStage(split_items=False, item_separator="_")

    def test_no_clean_lowercase_uses_lowercase_stage(self):
        config = PipelineConfig(remove_digits_symbols=False, lemmatize=False)
        chain = StageChain.from_config(config)
        assert [type(s) for s in chain.stages] == [LowercaseStage, TokenizeStage]

    def test_no_clean_no_lowercase_tokenizes_only(self):
        config = PipelineConfig(lowercase=False, remove_digits_symbols=False, lemmatize=False)
        chain = StageChain.from_config(config)
        assert [type(s) for s in chain.stages] == [TokenizeStage]

    def test_equal_configs_compile_to_equal_chains(self):
        assert StageChain.from_config(PipelineConfig()) == StageChain.from_config(
            PipelineConfig()
        )


class TestEquivalence:
    def test_matches_reference_for_every_config(self):
        for config in ALL_CONFIGS:
            chain = StageChain.from_config(config)
            assert chain.run_sequence(MESSY_SEQUENCE) == reference_process_sequence(
                MESSY_SEQUENCE, config
            ), config

    def test_facade_matches_reference_for_every_config(self):
        for config in ALL_CONFIGS:
            pipeline = PreprocessingPipeline(config)
            assert pipeline.process_sequence(MESSY_SEQUENCE) == reference_process_sequence(
                MESSY_SEQUENCE, config
            ), config

    def test_matches_reference_on_random_items(self):
        rng = random.Random(20260726)
        alphabet = "abcDEF123 _-'!é"
        for trial in range(50):
            sequence = [
                "".join(rng.choice(alphabet) for _ in range(rng.randint(1, 18)))
                for _ in range(rng.randint(1, 8))
            ]
            config = ALL_CONFIGS[trial % len(ALL_CONFIGS)]
            chain = StageChain.from_config(config)
            assert chain.run_sequence(sequence) == reference_process_sequence(
                sequence, config
            ), (sequence, config)


class TestShippability:
    def test_chain_pickle_round_trip_preserves_output(self):
        for config in ALL_CONFIGS[:8]:
            chain = StageChain.from_config(config)
            chain.run_sequence(MESSY_SEQUENCE)  # populate the lemmatizer cache
            restored = pickle.loads(pickle.dumps(chain))
            assert restored == chain
            assert restored.run_sequence(MESSY_SEQUENCE) == chain.run_sequence(MESSY_SEQUENCE)

    def test_lemmatizer_cache_is_not_pickled(self):
        stage = LemmatizeStage()
        stage.run(["tomatoes", "chopped"])
        assert "_lemmatizer" in stage.__dict__
        restored = pickle.loads(pickle.dumps(stage))
        assert "_lemmatizer" not in restored.__dict__
        assert restored.run(["tomatoes"]) == ["tomato"]

    def test_chain_fingerprints_are_stable_and_config_sensitive(self):
        base = stable_hash(StageChain.from_config(PipelineConfig()))
        assert base == stable_hash(StageChain.from_config(PipelineConfig()))
        for config in ALL_CONFIGS:
            if config != PipelineConfig():
                assert stable_hash(StageChain.from_config(config)) != base or (
                    StageChain.from_config(config) == StageChain.from_config(PipelineConfig())
                )

    def test_distinct_separators_fingerprint_differently(self):
        a = stable_hash(StageChain.from_config(PipelineConfig(item_separator="_")))
        b = stable_hash(StageChain.from_config(PipelineConfig(item_separator="+")))
        assert a != b
