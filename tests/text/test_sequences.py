"""Tests for sequence encoding and padding."""

import numpy as np
import pytest

from repro.text.sequences import SequenceEncoder, pad_sequences
from repro.text.vocabulary import Vocabulary


class TestPadSequences:
    def test_pads_to_max_length(self):
        ids, mask = pad_sequences([[1, 2], [3]], max_length=4)
        assert ids.shape == (2, 4)
        assert ids[0].tolist() == [1, 2, 0, 0]
        assert mask[0].tolist() == [1.0, 1.0, 0.0, 0.0]
        assert mask[1].tolist() == [1.0, 0.0, 0.0, 0.0]

    def test_truncates_right_keeps_beginning(self):
        ids, _ = pad_sequences([[1, 2, 3, 4, 5]], max_length=3, truncate="right")
        assert ids[0].tolist() == [1, 2, 3]

    def test_truncates_left_keeps_end(self):
        ids, _ = pad_sequences([[1, 2, 3, 4, 5]], max_length=3, truncate="left")
        assert ids[0].tolist() == [3, 4, 5]

    def test_custom_pad_value(self):
        ids, _ = pad_sequences([[1]], max_length=3, pad_value=9)
        assert ids[0].tolist() == [1, 9, 9]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            pad_sequences([[1]], max_length=0)
        with pytest.raises(ValueError):
            pad_sequences([[1]], max_length=2, truncate="middle")

    def test_empty_sequences_all_padding(self):
        ids, mask = pad_sequences([[]], max_length=3)
        assert ids[0].tolist() == [0, 0, 0]
        assert mask[0].sum() == 0.0


class TestSequenceEncoder:
    @pytest.fixture()
    def vocabulary(self):
        return Vocabulary.build([["onion", "garlic", "stir", "add", "pan"]])

    def test_encodes_tokens_to_ids(self, vocabulary):
        encoder = SequenceEncoder(vocabulary, max_length=6)
        batch = encoder.encode([["onion", "stir"]])
        decoded = vocabulary.decode([i for i in batch.ids[0] if i != vocabulary.pad_id])
        assert decoded == ["onion", "stir"]

    def test_adds_cls_token(self, vocabulary):
        encoder = SequenceEncoder(vocabulary, max_length=6, add_cls=True)
        batch = encoder.encode([["onion"]])
        assert batch.ids[0, 0] == vocabulary.cls_id
        assert batch.mask[0, :2].tolist() == [1.0, 1.0]

    def test_unknown_tokens_become_unk(self, vocabulary):
        encoder = SequenceEncoder(vocabulary, max_length=4)
        batch = encoder.encode([["dragonfruit"]])
        assert batch.ids[0, 0] == vocabulary.unk_id

    def test_batch_shape_and_len(self, vocabulary):
        encoder = SequenceEncoder(vocabulary, max_length=5)
        batch = encoder.encode([["onion"], ["stir", "add"], ["pan"]])
        assert len(batch) == 3
        assert batch.max_length == 5
        assert batch.ids.dtype == np.int64

    def test_encode_one(self, vocabulary):
        encoder = SequenceEncoder(vocabulary, max_length=5)
        batch = encoder.encode_one(["onion", "garlic"])
        assert len(batch) == 1

    def test_max_length_validation(self, vocabulary):
        with pytest.raises(ValueError):
            SequenceEncoder(vocabulary, max_length=1)

    def test_truncation_respects_max_length(self, vocabulary):
        encoder = SequenceEncoder(vocabulary, max_length=3, add_cls=True)
        batch = encoder.encode([["onion", "garlic", "stir", "add", "pan"]])
        assert batch.ids.shape[1] == 3
        assert batch.mask[0].sum() == 3.0
