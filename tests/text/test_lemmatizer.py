"""Tests for the rule-based lemmatizer."""

import pytest

from repro.text.lemmatizer import Lemmatizer, lemmatize


class TestPlurals:
    @pytest.mark.parametrize(
        "word,lemma",
        [
            ("onions", "onion"),
            ("tomatoes", "tomato"),
            ("potatoes", "potato"),
            ("berries", "berry"),
            ("leaves", "leaf"),
            ("dishes", "dish"),
            ("boxes", "box"),
            ("carrots", "carrot"),
            ("lentils", "lentil"),
        ],
    )
    def test_plural_nouns(self, word, lemma):
        assert lemmatize(word) == lemma

    @pytest.mark.parametrize("word", ["couscous", "molasses", "asparagus", "hummus", "swiss"])
    def test_protected_words_unchanged(self, word):
        assert lemmatize(word) == word


class TestVerbs:
    @pytest.mark.parametrize(
        "word,lemma",
        [
            ("chopped", "chop"),
            ("chopping", "chop"),
            ("simmering", "simmer"),
            ("simmered", "simmer"),
            ("grated", "grate"),
            ("cooking", "cook"),
            ("baking", "bake"),
            ("fried", "fry"),
            ("mixing", "mix"),
            ("stirring", "stir"),
        ],
    )
    def test_verb_inflections(self, word, lemma):
        assert lemmatize(word) == lemma

    @pytest.mark.parametrize("word", ["bring", "spring", "string", "dressing", "pudding", "red", "bread"])
    def test_false_suffix_words_unchanged(self, word):
        assert lemmatize(word) == word


class TestLemmatizerClass:
    def test_short_words_untouched(self):
        assert lemmatize("egg") == "egg"
        assert lemmatize("as") == "as"

    def test_empty_string(self):
        assert lemmatize("") == ""

    def test_idempotent(self):
        for word in ["tomatoes", "chopped", "simmering", "leaves", "onion"]:
            once = lemmatize(word)
            assert lemmatize(once) == once

    def test_phrase_lemmatization(self):
        lemmatizer = Lemmatizer()
        assert lemmatizer.lemmatize_phrase("red lentils") == "red lentil"
        assert lemmatizer.lemmatize_phrase("chopped onions") == "chop onion"

    def test_lemmatize_all_preserves_order(self):
        lemmatizer = Lemmatizer()
        assert lemmatizer.lemmatize_all(["onions", "stirred"]) == ["onion", "stir"]

    def test_extra_exceptions_override(self):
        lemmatizer = Lemmatizer(extra_exceptions={"wok": "frying pan"})
        assert lemmatizer.lemmatize("wok") == "frying pan"

    def test_cache_returns_consistent_results(self):
        lemmatizer = Lemmatizer()
        assert lemmatizer.lemmatize("tomatoes") == lemmatizer.lemmatize("tomatoes")
