"""Shared fixtures for the multi-process cluster suite.

One logreg bundle is exported per session; every cluster test preforks
real ``repro.server`` worker *processes* over that export, so the
expensive fixtures (training, a running fleet) are session/module-scoped
and the per-test work is plain HTTP against live sockets.
"""

from __future__ import annotations

import time

import pytest

from repro.core.experiment import ExperimentConfig, ExperimentRunner

#: Same token the server suite uses; workers inherit it via the supervisor.
ADMIN_TOKEN = "test-admin-token"


@pytest.fixture(scope="session")
def cluster_export_dir(tiny_corpus, tmp_path_factory):
    """An export directory holding exactly one bundle (``logreg``) —
    what ``--route cuisine`` needs."""
    path = tmp_path_factory.mktemp("cluster-bundles")
    config = ExperimentConfig(
        models=("logreg",),
        seed=3,
        statistical_kwargs={"logreg": {"max_iter": 30}},
        export_dir=str(path),
    )
    ExperimentRunner(config, corpus=tiny_corpus).run()
    return path


def wait_until(predicate, *, timeout: float = 30.0, interval: float = 0.1):
    """Poll *predicate* until it returns a truthy value; fail on timeout."""
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() > deadline:
            raise TimeoutError(f"condition not met within {timeout}s")
        time.sleep(interval)
