"""HashRing properties and the L7 relay, against in-process echo back-ends."""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.cluster.balancer import ClusterBalancer, HashRing
from repro.server.protocol import json_response, read_request
from tests.server.conftest import ServerClient


class TestHashRing:
    def test_lookup_is_deterministic(self):
        ring = HashRing(["a", "b", "c"])
        for key in ("user-1", "user-2", ""):
            assert ring.lookup(key) == ring.lookup(key)
        assert HashRing(["a", "b", "c"]).lookup("user-1") == ring.lookup("user-1")

    def test_empty_ring_returns_none(self):
        assert HashRing().lookup("anything") is None

    def test_members_sorted(self):
        assert HashRing(["b", "a"]).members == ("a", "b")

    def test_keys_spread_over_members(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"user-{i}" for i in range(300)]
        owners = {member: 0 for member in ring.members}
        for key in keys:
            owners[ring.lookup(key)] += 1
        # 64 virtual nodes per member keep the split roughly even; every
        # member must own a real share of the key space.
        assert all(count >= 30 for count in owners.values())

    def test_removal_moves_only_the_removed_members_keys(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"user-{i}" for i in range(300)]
        before = {key: ring.lookup(key) for key in keys}
        ring.remove("b")
        for key in keys:
            if before[key] != "b":
                assert ring.lookup(key) == before[key]
            else:
                assert ring.lookup(key) in ("a", "c")

    def test_addition_only_steals_keys_for_the_new_member(self):
        ring = HashRing(["a", "b"])
        keys = [f"user-{i}" for i in range(300)]
        before = {key: ring.lookup(key) for key in keys}
        ring.add("c")
        moved = [key for key in keys if ring.lookup(key) != before[key]]
        assert moved  # the new member owns ~1/3 of the space
        assert all(ring.lookup(key) == "c" for key in moved)

    def test_duplicate_add_and_missing_remove_are_noops(self):
        ring = HashRing(["a"])
        ring.add("a")
        ring.remove("ghost")
        assert ring.members == ("a",)

    def test_replicas_validated(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(replicas=0)


class EchoBackend:
    """A minimal repro-protocol server echoing which back-end served."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    async def _handle(self, reader, writer):
        try:
            while True:
                try:
                    request = await read_request(reader)
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if request is None:
                    break
                payload = {
                    "backend": self.name,
                    "method": request.method,
                    "path": request.path,
                    "headers": dict(request.headers),
                    "body": json.loads(request.body) if request.body else None,
                }
                writer.write(json_response(200, payload, keep_alive=request.keep_alive))
                await writer.drain()
                if not request.keep_alive:
                    break
        finally:
            writer.close()

    async def _serve(self, started: threading.Event) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(self._handle, host="127.0.0.1", port=0)
        self.port = server.sockets[0].getsockname()[1]
        started.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()

    def start(self) -> "EchoBackend":
        started = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._serve(started)), daemon=True
        )
        self._thread.start()
        assert started.wait(10), "echo backend failed to start"
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(10)


@pytest.fixture()
def backends():
    pair = [EchoBackend("a").start(), EchoBackend("b").start()]
    yield pair
    for backend in pair:
        backend.stop()


@pytest.fixture()
def balancer(backends):
    balancer = ClusterBalancer(host="127.0.0.1", port=0)
    for backend in backends:
        balancer.add_backend(backend.name, "127.0.0.1", backend.port)
    handle = balancer.start_in_thread()
    client = ServerClient(handle.port)
    try:
        yield balancer, client
    finally:
        client.close()
        handle.stop()


class TestRelay:
    def test_key_affinity(self, balancer):
        _, client = balancer
        served = set()
        for _ in range(10):
            status, body = client.request(
                "POST", "/routes/cuisine/predict", {"sequence": ["x"], "key": "user-7"}
            )
            assert status == 200
            served.add(body["backend"])
        assert len(served) == 1

    def test_keys_list_uses_first_key(self, balancer):
        _, client = balancer
        _, single = client.request("POST", "/x", {"key": "user-3"})
        _, batch = client.request("POST", "/x", {"keys": ["user-3", "user-4"]})
        assert batch["backend"] == single["backend"]

    def test_keyless_requests_round_robin(self, balancer):
        _, client = balancer
        served = {client.request("GET", "/healthz")[1]["backend"] for _ in range(8)}
        assert served == {"a", "b"}

    def test_request_is_relayed_intact(self, balancer):
        bal, client = balancer
        payload = {"sequence": ["onion", "butter"], "key": "user-1"}
        status, body = client.request(
            "POST", "/routes/cuisine/predict", payload, headers={"x-custom": "yes"}
        )
        assert status == 200
        assert body["method"] == "POST"
        assert body["path"] == "/routes/cuisine/predict"
        assert body["body"] == payload
        assert body["headers"].get("x-custom") == "yes"
        # Hop-by-hop headers are re-framed per hop: the back-end must see
        # its own address in Host, not the balancer's.
        assert body["headers"].get("host") != f"127.0.0.1:{bal.port}"

    def test_removed_backend_stops_receiving(self, balancer, backends):
        bal, client = balancer
        keys = [f"user-{i}" for i in range(40)]
        bal.remove_backend("a")
        for key in keys:
            status, body = client.request("POST", "/x", {"key": key})
            assert status == 200
            assert body["backend"] == "b"

    def test_empty_fleet_returns_503(self):
        balancer = ClusterBalancer(host="127.0.0.1", port=0)
        handle = balancer.start_in_thread()
        client = ServerClient(handle.port)
        try:
            status, body = client.request("POST", "/x", {"key": "user-1"})
            assert status == 503
            assert body["error"]["code"] == "no_backends"
        finally:
            client.close()
            handle.stop()

    def test_dead_backend_returns_502(self, backends):
        balancer = ClusterBalancer(host="127.0.0.1", port=0)
        dead = EchoBackend("dead").start()
        dead.stop()  # port is now closed
        balancer.add_backend("dead", "127.0.0.1", dead.port)
        handle = balancer.start_in_thread()
        client = ServerClient(handle.port)
        try:
            status, body = client.request("POST", "/x", {"key": "user-1"})
            assert status == 502
            assert body["error"]["code"] == "bad_backend"
        finally:
            client.close()
            handle.stop()
