"""End-to-end fleet tests: one supervisor babysitting two real worker
processes, shared by the whole module (workers cost ~a second each to
spawn).  Mutating tests (restart, resize, crash) run last and leave the
fleet back at two healthy workers."""

from __future__ import annotations

import os
import signal

import pytest

from repro.cluster import ClusterSupervisor
from tests.cluster.conftest import ADMIN_TOKEN, wait_until
from tests.server.conftest import ServerClient, parse_metrics_text


@pytest.fixture(scope="module")
def fleet(cluster_export_dir, tmp_path_factory):
    supervisor = ClusterSupervisor(
        workers=2,
        export_dir=cluster_export_dir,
        route="cuisine",
        admin_token=ADMIN_TOKEN,
        drain_timeout=10.0,
        workdir=tmp_path_factory.mktemp("fleet"),
    )
    handle = supervisor.start_in_thread()
    try:
        yield supervisor, handle
    finally:
        handle.stop()


@pytest.fixture(scope="module")
def fleet_sequences(tiny_corpus):
    return [list(recipe.sequence) for recipe in tiny_corpus.recipes[:16]]


@pytest.fixture()
def control(fleet):
    _, handle = fleet
    client = ServerClient(handle.control_port)
    yield client
    client.close()


class TestServing:
    def test_predictions_served_across_keys(self, fleet, fleet_sequences):
        _, handle = fleet
        client = ServerClient(handle.port)
        try:
            for index, sequence in enumerate(fleet_sequences):
                status, body = client.request(
                    "POST",
                    "/routes/cuisine/predict",
                    {"sequence": sequence, "key": f"user-{index}"},
                )
                assert status == 200
                assert body["route"] == "cuisine"
                assert isinstance(body["label"], str)
        finally:
            client.close()

    def test_workers_individually_addressable(self, fleet):
        supervisor, handle = fleet
        health = handle.fleet_health()
        members = health["cluster"]["members"]
        assert len(members) == 2
        for member in members:
            client = ServerClient(member["control_port"])
            try:
                status, body = client.request("GET", "/healthz")
            finally:
                client.close()
            assert status == 200
            assert body["server"]["worker_id"] == member["worker"]


class TestFleetObservability:
    def test_fleet_health_document(self, fleet):
        supervisor, handle = fleet
        health = handle.fleet_health()
        assert health["status"] == "ok"
        cluster = health["cluster"]
        assert cluster["mode"] == supervisor.mode
        assert cluster["port"] == handle.port
        assert cluster["workers"] == 2
        assert cluster["target_workers"] == 2
        assert all(member["reachable"] for member in cluster["members"])
        # The merged document aggregates over the whole fleet: per-worker
        # identity is gone, per-route counters are present.
        assert "worker_id" not in health["server"]
        assert "cuisine" in health["routes"]

    def test_control_healthz_endpoint(self, control):
        status, body = control.request("GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["cluster"]["workers"] == 2

    def test_control_workers_endpoint(self, control):
        status, body = control.request("GET", "/workers")
        assert status == 200
        workers = body["workers"]
        assert [worker["worker"] for worker in workers] == [0, 1]
        assert all(worker["alive"] for worker in workers)

    def test_control_metrics_text(self, control):
        status, body = control.request("GET", "/metrics")
        assert status == 200
        metrics = parse_metrics_text(body.decode("utf-8"))
        assert metrics["repro_cluster_workers"] == 2
        assert metrics["repro_cluster_unreachable"] == 0
        assert metrics["repro_healthy"] == 1

    def test_unknown_endpoint_404(self, control):
        status, body = control.request("GET", "/nope")
        assert status == 404
        assert body["error"]["code"] == "not_found"


class TestAdminPlane:
    def test_fan_out_reaches_every_worker(self, control):
        status, body = control.admin(
            "/admin/routes/cuisine/swap", {"version": "v1"}
        )
        assert status == 200
        results = body["results"]
        assert [result["worker"] for result in results] == [0, 1]
        assert all(result["status"] == 200 for result in results)
        assert all(result["body"]["active"] == "v1" for result in results)

    def test_cluster_verbs_require_token(self, control):
        status, body = control.request("POST", "/cluster/restart")
        assert status == 401
        status, _ = control.request(
            "POST", "/cluster/resize", {"workers": 3},
            headers={"x-admin-token": "wrong"},
        )
        assert status == 401

    def test_resize_validates_body(self, control):
        status, body = control.admin("/cluster/resize", {"workers": "three"})
        assert status == 400
        status, body = control.admin("/cluster/resize", {"workers": 0})
        assert status == 400


class TestFleetMutations:
    """Ordered: each test restores a two-worker healthy fleet."""

    def test_resize_grows_and_shrinks(self, fleet, control):
        supervisor, handle = fleet
        status, body = control.admin("/cluster/resize", {"workers": 3})
        assert status == 200 and body == {"workers": 3}
        _, listing = control.request("GET", "/workers")
        assert [worker["worker"] for worker in listing["workers"]] == [0, 1, 2]
        assert handle.resize(2) == 2
        _, listing = control.request("GET", "/workers")
        assert [worker["worker"] for worker in listing["workers"]] == [0, 1]

    def test_rolling_restart_replaces_every_worker(self, fleet, control):
        supervisor, handle = fleet
        before = {
            worker["worker"]: worker["pid"]
            for worker in control.request("GET", "/workers")[1]["workers"]
        }
        status, body = control.admin("/cluster/restart")
        assert status == 200
        assert body["restarted"] == [0, 1]
        after = {
            worker["worker"]: worker["pid"]
            for worker in control.request("GET", "/workers")[1]["workers"]
        }
        assert set(after) == set(before)
        assert all(after[index] != before[index] for index in before)
        assert handle.fleet_health()["status"] == "ok"

    def test_crashed_worker_is_respawned(self, fleet, control):
        supervisor, handle = fleet
        victim = control.request("GET", "/workers")[1]["workers"][0]
        os.kill(victim["pid"], signal.SIGKILL)

        def respawned():
            workers = control.request("GET", "/workers")[1]["workers"]
            zero = next(w for w in workers if w["worker"] == 0)
            return zero["alive"] and zero["pid"] != victim["pid"]

        wait_until(respawned, timeout=60.0, interval=0.2)
        health = handle.fleet_health()
        assert health["status"] == "ok"
        assert health["cluster"]["respawns"] >= 1
