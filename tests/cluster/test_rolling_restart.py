"""Satellite acceptance test: a full rolling restart under seeded
open-loop load loses **zero** requests.

The workload keeps firing at its scheduled arrival times while every
worker in the fleet is drained and replaced.  The open-loop runner issues
every scheduled request and awaits every response, so
``ok + shed + errors == n_requests`` attributes any loss to the serving
tier — and the assertion is that there is none: no 5xx, no dropped
connection that the keep-alive stale-socket retry could not absorb.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster import ClusterSupervisor, has_reuseport
from repro.loadgen import HTTPTarget, build_workload, run_open_loop

MODES = ["reuseport", "balancer"] if has_reuseport() else ["balancer"]


@pytest.mark.parametrize("mode", MODES)
def test_rolling_restart_drops_nothing(
    mode, cluster_export_dir, tiny_corpus, tmp_path_factory
):
    sequences = [recipe.sequence for recipe in tiny_corpus.recipes[:64]]
    workload = build_workload(
        sequences,
        n_requests=480,
        seed=7,
        rate=60.0,
        key_distribution="zipf",
    )
    supervisor = ClusterSupervisor(
        workers=2,
        export_dir=cluster_export_dir,
        route="cuisine",
        mode=mode,
        drain_timeout=15.0,
        workdir=tmp_path_factory.mktemp(f"roll-{mode}"),
    )
    handle = supervisor.start_in_thread()
    try:
        target = HTTPTarget(handle.host, handle.port, "cuisine")
        box: dict = {}

        def drive() -> None:
            box["report"] = run_open_loop(target, workload)

        load = threading.Thread(target=drive, daemon=True)
        load.start()
        time.sleep(1.0)  # let the open loop ramp onto the old fleet
        old_pids = {
            worker.index: worker.process.pid
            for worker in supervisor._workers.values()
        }
        restarted = handle.rolling_restart()
        load.join(180)
        assert not load.is_alive(), "load generator did not finish"
        report = box["report"]

        # Every worker really was replaced, mid-run.
        assert restarted == [0, 1]
        new_pids = {
            worker.index: worker.process.pid
            for worker in supervisor._workers.values()
        }
        assert set(new_pids) == set(old_pids)
        assert all(new_pids[index] != old_pids[index] for index in old_pids)

        # Zero loss: every scheduled request was answered, none with a 5xx
        # or a dropped connection.
        assert report.n_requests == len(workload)
        assert report.errors == 0
        assert report.ok + report.shed == report.n_requests
        assert report.ok > 0
    finally:
        handle.stop()
