"""Unit tests for fleet-wide health-snapshot merging."""

from __future__ import annotations

import pytest

from repro.cluster.metrics import merge_health_snapshots
from repro.observability import RollingLatency, merge_latency_snapshots


class TestScalarMerging:
    def test_integer_counters_sum(self):
        merged = merge_health_snapshots(
            [{"requests": 10}, {"requests": 4}, {"requests": 1}]
        )
        assert merged == {"requests": 15}

    def test_floats_average(self):
        merged = merge_health_snapshots(
            [{"mean_batch_size": 2.0}, {"mean_batch_size": 4.0}]
        )
        assert merged["mean_batch_size"] == pytest.approx(3.0)

    def test_booleans_or_except_healthy_ands(self):
        merged = merge_health_snapshots(
            [
                {"healthy": True, "draining": False},
                {"healthy": False, "draining": True},
            ]
        )
        assert merged["healthy"] is False  # one sick worker → sick fleet
        assert merged["draining"] is True  # some worker is draining

    def test_status_merges_worst_of(self):
        assert merge_health_snapshots([{"status": "ok"}, {"status": "ok"}]) == {
            "status": "ok"
        }
        merged = merge_health_snapshots([{"status": "ok"}, {"status": "degraded"}])
        assert merged["status"] == "degraded"

    def test_agreeing_strings_keep_value(self):
        merged = merge_health_snapshots([{"active": "v1"}, {"active": "v1"}])
        assert merged["active"] == "v1"

    def test_disagreeing_strings_become_sorted_set(self):
        """Mid-rolling-restart the fleet may serve two versions at once."""
        merged = merge_health_snapshots([{"active": "v2"}, {"active": "v1"}])
        assert merged["active"] == ["v1", "v2"]


class TestStructure:
    def test_empty_input(self):
        assert merge_health_snapshots([]) == {}

    def test_nested_dicts_recurse(self):
        merged = merge_health_snapshots(
            [
                {"server": {"counters": {"requests_total": 7}}},
                {"server": {"counters": {"requests_total": 5}}},
            ]
        )
        assert merged == {"server": {"counters": {"requests_total": 12}}}

    def test_heterogeneous_keys_union(self):
        """A worker mid-restart may miss routes the others carry."""
        merged = merge_health_snapshots(
            [
                {"routes": {"cuisine": {"requests": 3}}},
                {"routes": {"cuisine": {"requests": 2}, "dessert": {"requests": 9}}},
            ]
        )
        assert merged["routes"]["cuisine"]["requests"] == 5
        assert merged["routes"]["dessert"]["requests"] == 9

    def test_worker_identity_dropped(self):
        merged = merge_health_snapshots(
            [{"worker_id": 0, "requests": 1}, {"worker_id": 1, "requests": 2}]
        )
        assert merged == {"requests": 3}

    def test_none_values_ignored(self):
        merged = merge_health_snapshots([{"active": None}, {"active": "v1"}])
        assert merged["active"] == "v1"
        assert merge_health_snapshots([{"active": None}]) == {"active": None}


class TestLatencyMerging:
    def _snapshot(self, samples):
        latency = RollingLatency()
        for seconds in samples:
            latency.record(seconds)
        return latency.snapshot()

    def test_latency_shaped_dicts_merge_not_sum(self):
        """A latency snapshot must merge through merge_latency_snapshots —
        summing p95s across workers would be nonsense."""
        first = self._snapshot([0.010] * 9)
        second = self._snapshot([0.100])
        merged = merge_health_snapshots(
            [{"latency": first}, {"latency": second}]
        )
        assert merged["latency"] == merge_latency_snapshots([first, second])
        assert merged["latency"]["count"] == 10
        assert merged["latency"]["max_ms"] == pytest.approx(100.0)

    def test_exact_counts_and_totals(self):
        first = self._snapshot([0.001, 0.002, 0.003])
        second = self._snapshot([0.004, 0.005])
        merged = merge_health_snapshots([{"latency": first}, {"latency": second}])
        assert merged["latency"]["count"] == 5
        assert merged["latency"]["total_seconds"] == pytest.approx(0.015)


class TestProcessGaugeMerging:
    def test_pids_publish_as_sorted_list(self):
        merged = merge_health_snapshots(
            [{"process": {"pid": 310}}, {"process": {"pid": 42}}]
        )
        assert merged["process"]["pid"] == [42, 310]

    def test_single_worker_keeps_scalar_pid(self):
        merged = merge_health_snapshots([{"process": {"pid": 42}}])
        assert merged["process"]["pid"] == 42

    def test_uptime_is_fleet_max(self):
        # A worker replaced mid-rolling-restart must not drag fleet uptime
        # down: the fleet has been up as long as its oldest member.
        merged = merge_health_snapshots(
            [
                {"process": {"uptime_seconds": 3600.0}},
                {"process": {"uptime_seconds": 4.5}},
            ]
        )
        assert merged["process"]["uptime_seconds"] == 3600.0

    def test_peak_rss_sums_and_versions_fold(self):
        merged = merge_health_snapshots(
            [
                {"process": {"peak_rss_bytes": 100, "python_version": "3.11.7"}},
                {"process": {"peak_rss_bytes": 250, "python_version": "3.11.7"}},
            ]
        )
        assert merged["process"]["peak_rss_bytes"] == 350
        assert merged["process"]["python_version"] == "3.11.7"
