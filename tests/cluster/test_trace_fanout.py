"""Cross-process trace stitching: balancer hop + worker spans, one id.

A predict through a balancer-mode fleet must produce a single trace whose
balancer ``balancer.relay`` span parents the worker's ``server.request``
chain, and the supervisor's control plane must serve the merged view.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSupervisor
from tests.server.conftest import ServerClient

TRACE_HEADER = "x-repro-trace"


@pytest.fixture(scope="module")
def traced_fleet(cluster_export_dir, tmp_path_factory):
    supervisor = ClusterSupervisor(
        workers=2,
        export_dir=cluster_export_dir,
        route="cuisine",
        mode="balancer",
        drain_timeout=10.0,
        workdir=tmp_path_factory.mktemp("traced-fleet"),
    )
    handle = supervisor.start_in_thread()
    try:
        yield supervisor, handle
    finally:
        handle.stop()


@pytest.fixture(scope="module")
def fanout_sequences(tiny_corpus):
    return [list(recipe.sequence) for recipe in tiny_corpus.recipes[:8]]


def predict_trace_id(handle, sequence, key):
    client = ServerClient(handle.port)
    try:
        status, body = client.request(
            "POST", "/routes/cuisine/predict", {"sequence": sequence, "key": key}
        )
        assert status == 200, body
        return client.last_headers.get(TRACE_HEADER)
    finally:
        client.close()


class TestFanout:
    def test_one_trace_spans_balancer_and_worker(self, traced_fleet, fanout_sequences):
        _, handle = traced_fleet
        trace_id = predict_trace_id(handle, fanout_sequences[0], "user-1")
        assert trace_id and len(trace_id) == 32

        control = ServerClient(handle.control_port)
        try:
            status, merged = control.request("GET", f"/debug/traces/{trace_id}")
        finally:
            control.close()
        assert status == 200
        assert merged["trace_id"] == trace_id
        assert "balancer" in merged["origins"]
        assert any(origin.startswith("worker-") for origin in merged["origins"])

        by_origin = {}
        for span in merged["spans"]:
            by_origin.setdefault(span["origin"], []).append(span)
        relay = by_origin["balancer"][0]
        assert relay["name"] == "balancer.relay"
        worker_spans = next(
            spans for origin, spans in by_origin.items() if origin != "balancer"
        )
        names = [span["name"] for span in worker_spans]
        assert names[0] == "server.request"
        assert "gateway.route" in names and "service.batch" in names
        # The worker root is stitched under the balancer's relay span.
        assert worker_spans[0]["parent_id"] == relay["span_id"]

    def test_fleet_listing_folds_origins(self, traced_fleet, fanout_sequences):
        _, handle = traced_fleet
        trace_id = predict_trace_id(handle, fanout_sequences[1], "user-2")
        control = ServerClient(handle.control_port)
        try:
            status, body = control.request("GET", "/debug/traces")
        finally:
            control.close()
        assert status == 200
        summary = next(s for s in body["traces"] if s["trace_id"] == trace_id)
        assert "balancer" in summary["origins"]
        assert summary["spans"] >= 2  # balancer relay + worker chain
        assert "balancer" in body["stats"]
        assert any(name.startswith("worker-") for name in body["stats"])

    def test_unknown_trace_is_404_fleet_wide(self, traced_fleet):
        _, handle = traced_fleet
        control = ServerClient(handle.control_port)
        try:
            status, body = control.request("GET", "/debug/traces/" + "e" * 32)
        finally:
            control.close()
        assert status == 404
        assert body["error"]["code"] == "unknown_trace"
