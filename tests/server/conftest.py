"""Shared fixtures for the serving-frontier test suite.

Two statistical models are trained once per session (same pattern as the
gateway suite); each test stands up a fresh in-thread server over bundles
loaded from that export directory — server startup costs milliseconds,
training does not.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.gateway import ModelGateway
from repro.server import ModelServer

SERVER_MODELS = ("logreg", "naive_bayes")
ADMIN_TOKEN = "test-admin-token"


@pytest.fixture(scope="session")
def server_export_dir(tiny_corpus, tmp_path_factory):
    path = tmp_path_factory.mktemp("server-bundles")
    config = ExperimentConfig(
        models=SERVER_MODELS,
        seed=3,
        statistical_kwargs={"logreg": {"max_iter": 30}},
        export_dir=str(path),
    )
    ExperimentRunner(config, corpus=tiny_corpus).run()
    return path


@pytest.fixture(scope="session")
def server_sequences(tiny_corpus):
    return [recipe.sequence for recipe in tiny_corpus.recipes[:40]]


def make_gateway(export_dir) -> ModelGateway:
    """A fresh gateway with ``cuisine@v1`` live and ``cuisine@v2`` dark."""
    gateway = ModelGateway()
    gateway.deploy("cuisine", "v1", export_dir / "logreg")
    gateway.deploy("cuisine", "v2", export_dir / "naive_bayes", activate=False)
    return gateway


@pytest.fixture()
def running_server(server_export_dir):
    """A live in-thread server (admin enabled); drained at test exit."""
    gateway = make_gateway(server_export_dir)
    server = ModelServer(gateway, admin_token=ADMIN_TOKEN, max_inflight=32)
    handle = server.start_in_thread()
    try:
        yield server, handle
    finally:
        try:
            handle.stop()
        except TimeoutError:
            pass


class ServerClient:
    """A tiny synchronous test client over one keep-alive connection."""

    def __init__(self, port: int, host: str = "127.0.0.1", timeout: float = 30.0) -> None:
        self.connection = http.client.HTTPConnection(host, port, timeout=timeout)

    def request(self, method: str, path: str, payload=None, headers=None, raw_body=None):
        """Returns ``(status, decoded_body)`` — JSON-decoded when possible.

        Response headers of the most recent exchange are kept (lowercased)
        in ``self.last_headers`` for tests asserting on header echo.
        """
        body = raw_body
        if payload is not None:
            body = json.dumps(payload)
        self.connection.request(method, path, body=body, headers=headers or {})
        response = self.connection.getresponse()
        data = response.read()
        self.last_headers = {
            name.lower(): value for name, value in response.getheaders()
        }
        try:
            return response.status, json.loads(data)
        except (ValueError, UnicodeDecodeError):
            return response.status, data

    def admin(self, path: str, payload=None):
        return self.request("POST", path, payload, headers={"x-admin-token": ADMIN_TOKEN})

    def close(self) -> None:
        self.connection.close()


@pytest.fixture()
def client(running_server):
    _, handle = running_server
    test_client = ServerClient(handle.port)
    yield test_client
    test_client.close()


def parse_metrics_text(text: str) -> dict[str, float]:
    """Parse the flat ``/metrics`` exposition back into a name → value dict."""
    parsed: dict[str, float] = {}
    for line in text.splitlines():
        line = line.split(" # ", 1)[0]  # drop exemplar / comment suffixes
        if not line.strip():
            continue
        name, value = line.rsplit(" ", 1)
        parsed[name] = float(value)
    return parsed
