"""End-to-end request tracing through a live server.

A predict request must yield one trace — retrievable by the id echoed in
the ``X-Repro-Trace`` response header — whose span chain walks the whole
serving stack: ``server.request`` → ``gateway.route`` → ``service.*``.
"""

from __future__ import annotations

import pytest

from repro.server import ModelServer
from tests.server.conftest import ServerClient, make_gateway, parse_metrics_text

TRACE_HEADER = "x-repro-trace"


@pytest.fixture()
def traced_server(server_export_dir):
    server = ModelServer(make_gateway(server_export_dir), max_inflight=32)
    handle = server.start_in_thread()
    try:
        yield server, handle
    finally:
        try:
            handle.stop()
        except TimeoutError:
            pass


@pytest.fixture()
def traced_client(traced_server):
    _, handle = traced_server
    client = ServerClient(handle.port)
    yield client
    client.close()


def predict(client, sequence, key="user-1"):
    status, body = client.request(
        "POST", "/routes/cuisine/predict", {"sequence": list(sequence), "key": key}
    )
    assert status == 200, body
    return client.last_headers.get(TRACE_HEADER)


class TestTraceRetrieval:
    def test_predict_echoes_trace_id_and_serves_span_chain(
        self, traced_client, server_sequences
    ):
        trace_id = predict(traced_client, server_sequences[0])
        assert trace_id and len(trace_id) == 32
        status, trace = traced_client.request("GET", f"/debug/traces/{trace_id}")
        assert status == 200
        assert trace["trace_id"] == trace_id
        names = [span["name"] for span in trace["spans"]]
        assert names[:2] == ["server.request", "gateway.route"]
        assert "service.batch" in names
        # The per-stage service timings are children of the batch span.
        spans = {span["name"]: span for span in trace["spans"]}
        batch_id = spans["service.batch"]["span_id"]
        for stage in ("service.queue_wait", "service.featurize", "service.predict"):
            assert spans[stage]["parent_id"] == batch_id
            assert spans[stage]["duration_ms"] >= 0.0
        assert spans["gateway.route"]["attrs"]["variant"] == "v1"
        assert spans["server.request"]["parent_id"] is None

    def test_repeat_key_hits_cache_and_traces_it(
        self, traced_client, server_sequences
    ):
        predict(traced_client, server_sequences[0], key="user-7")
        trace_id = predict(traced_client, server_sequences[0], key="user-7")
        _, trace = traced_client.request("GET", f"/debug/traces/{trace_id}")
        assert "service.cache_hit" in [span["name"] for span in trace["spans"]]

    def test_listing_and_stats(self, traced_client, server_sequences):
        seen = {predict(traced_client, seq, key=f"user-{i}")
                for i, seq in enumerate(server_sequences[:3])}
        status, body = traced_client.request("GET", "/debug/traces")
        assert status == 200
        listed = {summary["trace_id"] for summary in body["traces"]}
        assert seen <= listed
        assert body["stats"]["offered"] >= 3

    def test_unknown_trace_is_404(self, traced_client):
        status, body = traced_client.request("GET", "/debug/traces/" + "f" * 32)
        assert status == 404
        assert body["error"]["code"] == "unknown_trace"

    def test_trace_ids_are_deterministic_across_servers(
        self, server_export_dir, server_sequences
    ):
        ids = []
        for _ in range(2):
            server = ModelServer(make_gateway(server_export_dir), max_inflight=32)
            handle = server.start_in_thread()
            try:
                client = ServerClient(handle.port)
                try:
                    ids.append(predict(client, server_sequences[0], key="user-1"))
                finally:
                    client.close()
            finally:
                handle.stop()
        assert ids[0] == ids[1]

    def test_upstream_header_is_adopted(self, traced_client, server_sequences):
        upstream_id = "ab" * 16
        status, _ = traced_client.request(
            "POST",
            "/routes/cuisine/predict",
            {"sequence": list(server_sequences[0]), "key": "user-1"},
            headers={"X-Repro-Trace": f"{upstream_id};sampled=1;parent=s1"},
        )
        assert status == 200
        assert traced_client.last_headers[TRACE_HEADER] == upstream_id
        _, trace = traced_client.request("GET", f"/debug/traces/{upstream_id}")
        root = trace["spans"][0]
        assert root["name"] == "server.request"
        assert root["parent_id"] == "s1"  # stitched under the upstream span


class TestSamplingBehaviour:
    def test_sampled_out_requests_keep_errors(self, server_export_dir):
        server = ModelServer(
            make_gateway(server_export_dir), max_inflight=32, trace_sample=0.0
        )
        handle = server.start_in_thread()
        try:
            client = ServerClient(handle.port)
            try:
                status, _ = client.request(
                    "POST", "/routes/cuisine/predict", {"sequence": ["x"], "key": "k"}
                )
                ok_id = client.last_headers.get(TRACE_HEADER)
                assert status == 200
                # clean + fast + sampled-out: dropped
                status, _ = client.request("GET", f"/debug/traces/{ok_id}")
                assert status == 404
                # an erroring request is captured regardless of the rate
                status, _ = client.request(
                    "POST", "/routes/nope/predict", {"sequence": ["x"], "key": "k"}
                )
                assert status == 404
                err_id = client.last_headers.get(TRACE_HEADER)
                status, trace = client.request("GET", f"/debug/traces/{err_id}")
                assert status == 200
                assert trace["error"] is True
            finally:
                client.close()
        finally:
            handle.stop()

    def test_disabled_tracing_has_no_header_and_empty_store(self, server_export_dir):
        server = ModelServer(
            make_gateway(server_export_dir), max_inflight=32, trace_sample=None
        )
        handle = server.start_in_thread()
        try:
            client = ServerClient(handle.port)
            try:
                status, _ = client.request(
                    "POST", "/routes/cuisine/predict", {"sequence": ["x"], "key": "k"}
                )
                assert status == 200
                assert TRACE_HEADER not in client.last_headers
                status, body = client.request("GET", "/debug/traces")
                assert status == 200
                assert body["traces"] == []
                status, health = client.request("GET", "/healthz")
                assert "trace" not in health
            finally:
                client.close()
        finally:
            handle.stop()


class TestMetricsExemplars:
    def test_latency_lines_carry_exemplar_trace_id(
        self, traced_client, server_sequences
    ):
        trace_id = predict(traced_client, server_sequences[0])
        status, text = traced_client.request("GET", "/metrics")
        assert status == 200
        text = text.decode() if isinstance(text, bytes) else text
        exemplar_lines = [
            line for line in text.splitlines() if "# exemplar trace_id=" in line
        ]
        assert exemplar_lines, "latency lines should carry an exemplar"
        assert all("repro_server_latency_" in line for line in exemplar_lines)
        assert any(line.endswith(trace_id) for line in exemplar_lines)
        # The exposition still parses cleanly with exemplars attached.
        parsed = parse_metrics_text(text)
        assert "repro_server_latency_p50_ms" in parsed

    def test_healthz_reports_trace_stats(self, traced_client, server_sequences):
        predict(traced_client, server_sequences[0])
        _, health = traced_client.request("GET", "/healthz")
        assert health["trace"]["offered"] >= 1
        assert health["trace"]["capacity"] == 256
