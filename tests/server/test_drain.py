"""Graceful-drain semantics: stop accepting, finish in-flight, close down.

The serving frontier's shutdown contract mirrors the prediction service's:
work that was accepted is completed (a 200 with a real prediction), work
that arrives after the drain began is refused at the socket, and the
underlying gateway/service are only torn down once the last in-flight
request has been answered.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time

import pytest

from repro.gateway import ModelGateway
from repro.serving import ModelBundle
from repro.server import ModelServer
from tests.server.conftest import ServerClient, make_gateway


def _slow_gateway(export_dir, delay: float) -> ModelGateway:
    """A gateway whose model sleeps *delay* seconds per prediction pass."""
    model = ModelBundle.load(export_dir / "logreg").model
    inner = model.predict_proba_tokens

    def sleepy(token_lists):
        time.sleep(delay)
        return inner(token_lists)

    model.predict_proba_tokens = sleepy
    gateway = ModelGateway(cache_size=0)
    gateway.deploy("cuisine", "v1", model)
    return gateway


def test_inflight_requests_finish_during_drain(server_export_dir, server_sequences):
    gateway = _slow_gateway(server_export_dir, delay=0.3)
    server = ModelServer(gateway, max_inflight=16)
    handle = server.start_in_thread()
    # Warm featurization so the in-flight window is dominated by the sleep.
    warm = ServerClient(handle.port)
    assert warm.request(
        "POST", "/routes/cuisine/predict", {"sequence": list(server_sequences[0])}
    )[0] == 200
    warm.close()

    results: list[tuple[int, dict]] = []
    errors: list[BaseException] = []

    def fire(index: int) -> None:
        test_client = ServerClient(handle.port)
        try:
            results.append(
                test_client.request(
                    "POST", "/routes/cuisine/predict",
                    {"sequence": list(server_sequences[index + 1])},
                )
            )
        except BaseException as exc:
            errors.append(exc)
        finally:
            test_client.close()

    threads = [threading.Thread(target=fire, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    time.sleep(0.1)  # let every request reach the server (model sleeps 0.3s)
    handle.stop(timeout=60.0)
    for thread in threads:
        thread.join(timeout=60.0)

    assert not errors, errors
    assert len(results) == 4
    assert all(status == 200 for status, _ in results)
    assert all("label" in payload for _, payload in results)
    # The drain closed the gateway and, transitively, the owned service.
    with pytest.raises(RuntimeError):
        gateway.service.predict_proba("cuisine@v1", list(server_sequences[0]))


def test_new_connections_refused_after_drain(server_export_dir, server_sequences):
    server = ModelServer(make_gateway(server_export_dir))
    handle = server.start_in_thread()
    test_client = ServerClient(handle.port)
    assert test_client.request("GET", "/healthz")[0] == 200
    test_client.close()
    handle.stop()

    with pytest.raises(OSError):
        with socket.create_connection(("127.0.0.1", handle.port), timeout=5):
            pass


def test_idle_keepalive_connection_closed_on_drain(server_export_dir):
    server = ModelServer(make_gateway(server_export_dir))
    handle = server.start_in_thread()
    connection = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=10)
    connection.request("GET", "/healthz")
    response = connection.getresponse()
    assert response.status == 200  # keep-alive: socket stays open
    assert json.loads(response.read())["status"] == "ok"

    handle.stop()
    # The parked connection was woken with EOF, not left hanging: the next
    # request on it fails fast instead of timing out.
    with pytest.raises((ConnectionError, http.client.HTTPException, OSError)):
        connection.request("GET", "/healthz")
        connection.getresponse()
    connection.close()


def test_unowned_gateway_survives_drain(server_export_dir, server_sequences):
    gateway = make_gateway(server_export_dir)
    server = ModelServer(gateway, owns_gateway=False)
    handle = server.start_in_thread()
    test_client = ServerClient(handle.port)
    assert test_client.request(
        "POST", "/routes/cuisine/predict", {"sequence": list(server_sequences[0])}
    )[0] == 200
    test_client.close()
    handle.stop()

    # The server is gone but the gateway (and its service) keep serving.
    assert gateway.predict("cuisine", server_sequences[0])
    gateway.close()


def test_gateway_owns_service_flag_controls_teardown(server_export_dir, server_sequences):
    # owns_service=False: a privately-created service outlives the gateway.
    gateway = ModelGateway(owns_service=False)
    gateway.deploy("cuisine", "v1", server_export_dir / "logreg")
    service = gateway.service
    gateway.close()
    assert service.predict_proba("cuisine@v1", list(server_sequences[0])) is not None
    service.close()

    # owns_service=True over an injected registry: the drain is terminal.
    from repro.gateway import DeploymentRegistry

    registry = DeploymentRegistry()
    registry.deploy("cuisine", "v1", str(server_export_dir / "logreg"))
    owning = ModelGateway(registry=registry, owns_service=True)
    owning.close()
    with pytest.raises(RuntimeError):
        registry.service.predict_proba("cuisine@v1", list(server_sequences[0]))
