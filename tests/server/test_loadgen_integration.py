"""The acceptance bar: loadgen vs. a live server, with a mid-run hot-swap.

One seeded open-loop scenario runs against a real ``repro.server`` process
(in-thread, real sockets) while the admin plane hot-swaps the route's
active version mid-run.  The bar:

* **zero dropped requests** — every scheduled request completes with a 200
  (no errors, no sheds, no connection drops) across the swap;
* **client and server agree on latency** — the loadgen-reported p50/p95/p99
  match the server's own ``/metrics`` quantiles within tolerance (the
  server measures parse→response, the client adds socket + event-loop
  overhead, so the two must bracket each other closely on localhost).
"""

from __future__ import annotations

import threading

import pytest

from repro.loadgen import HTTPTarget, build_workload, run_open_loop
from repro.server import ModelServer
from tests.server.conftest import ADMIN_TOKEN, ServerClient, make_gateway, parse_metrics_text

N_REQUESTS = 200
RATE = 250.0  # offered load (requests/second) — ~0.8s scheduled span
SEED = 42


@pytest.fixture()
def loadgen_server(server_export_dir):
    gateway = make_gateway(server_export_dir)
    server = ModelServer(gateway, admin_token=ADMIN_TOKEN, max_inflight=128)
    handle = server.start_in_thread()
    try:
        yield server, handle
    finally:
        try:
            handle.stop()
        except TimeoutError:
            pass


def test_open_loop_with_midrun_hot_swap(loadgen_server, server_sequences):
    server, handle = loadgen_server
    workload = build_workload(
        server_sequences,
        n_requests=N_REQUESTS,
        seed=SEED,
        rate=RATE,
        key_distribution="zipf",
        n_keys=50,
    )
    assert workload.duration > 0.3  # the swap genuinely lands mid-run

    # Warm featurization/worker so the measured window is steady-state.
    warm = ServerClient(handle.port)
    for sequence in server_sequences[:5]:
        assert warm.request(
            "POST", "/routes/cuisine/predict", {"sequence": list(sequence)}
        )[0] == 200

    swap_results: list[tuple[int, dict]] = []

    def hot_swap() -> None:
        admin = ServerClient(handle.port)
        swap_results.append(admin.admin("/admin/routes/cuisine/swap", {"version": "v2"}))
        admin.close()

    swapper = threading.Timer(workload.duration / 2, hot_swap)
    swapper.start()
    try:
        report = run_open_loop(HTTPTarget("127.0.0.1", handle.port, "cuisine"), workload)
    finally:
        swapper.join()

    # The swap really happened, mid-run, and answered 200.
    assert swap_results and swap_results[0][0] == 200
    assert server.gateway.registry.active_version("cuisine") == "v2"

    # Zero dropped in-flight requests across the swap.
    assert report.n_requests == N_REQUESTS
    assert report.ok == N_REQUESTS
    assert report.errors == 0
    assert report.shed == 0

    # Both versions actually served traffic (the swap landed mid-stream).
    by_variant = server.gateway.registry.metrics("cuisine").snapshot()["by_variant"]
    assert by_variant.get("v1", 0) > 0 and by_variant.get("v2", 0) > 0

    # Client-side quantiles bracket the server's own /metrics quantiles.
    status, body = warm.request("GET", "/metrics")
    warm.close()
    assert status == 200
    text = body.decode() if isinstance(body, bytes) else str(body)
    metrics = parse_metrics_text(text)
    assert metrics["repro_server_counters_predict_requests"] >= N_REQUESTS
    for quantile in ("p50_ms", "p95_ms", "p99_ms"):
        client_ms = report.latency[quantile]
        server_ms = metrics[f"repro_server_latency_{quantile}"]
        # The server's window also contains the warm-up requests, so the two
        # samples differ slightly even before adding socket overhead; demand
        # agreement within a generous absolute + relative envelope.
        tolerance = max(75.0, 0.75 * max(client_ms, server_ms))
        assert abs(client_ms - server_ms) <= tolerance, (
            f"{quantile}: client {client_ms:.2f}ms vs server {server_ms:.2f}ms "
            f"(tolerance {tolerance:.2f}ms)"
        )


def test_gateway_target_baseline_matches_http(loadgen_server, server_sequences):
    """The no-network GatewayTarget path completes the same seeded scenario."""
    from repro.loadgen import GatewayTarget, run_closed_loop

    server, _ = loadgen_server
    workload = build_workload(server_sequences, n_requests=60, seed=SEED)
    report = run_closed_loop(
        GatewayTarget(server.gateway, "cuisine"), workload, concurrency=4
    )
    assert report.ok == 60
    assert report.errors == 0
    assert report.throughput_rps > 0
