"""The ``/admin/routes/<route>/evaluate`` endpoint: run, store, apply."""

from __future__ import annotations

import pytest

from repro.eval import build_golden_set, save_golden_set
from tests.server.conftest import ADMIN_TOKEN, parse_metrics_text


@pytest.fixture(scope="session")
def golden_file(tiny_corpus, tmp_path_factory):
    golden = build_golden_set(tiny_corpus, "cuisine", version="g1", seed=11)
    return save_golden_set(
        golden, tmp_path_factory.mktemp("server-golden") / "golden_cuisine.jsonl"
    )


def evaluate(client, body):
    return client.admin("/admin/routes/cuisine/evaluate", body)


def get_verdict(client):
    return client.request(
        "GET",
        "/admin/routes/cuisine/evaluate",
        headers={"x-admin-token": ADMIN_TOKEN},
    )


class TestEvaluateEndpoint:
    def test_get_before_any_run_is_404(self, client):
        status, payload = get_verdict(client)
        assert status == 404
        assert payload["error"]["code"] == "no_verdict"

    def test_post_runs_gate_and_get_returns_stored_verdict(
        self, client, golden_file, server_export_dir
    ):
        # An identical copy of the active model always promotes.
        status, payload = client.admin(
            "/admin/routes/cuisine/deploy",
            {"version": "v3", "path": str(server_export_dir / "logreg"), "activate": False},
        )
        assert status == 200
        status, payload = evaluate(
            client, {"candidate": "v3", "golden": str(golden_file), "seed": 3}
        )
        assert status == 200
        verdict = payload["verdict"]
        assert verdict["decision"] == "promote"
        assert verdict["baseline"] == "v1"
        assert payload["applied"] == "none"
        assert payload["active"] == "v1"  # no apply requested

        status, stored = get_verdict(client)
        assert status == 200
        assert stored["verdict"] == verdict

    def test_apply_promotes_by_swapping(self, client, golden_file, server_export_dir):
        client.admin(
            "/admin/routes/cuisine/deploy",
            {"version": "v3", "path": str(server_export_dir / "logreg"), "activate": False},
        )
        status, payload = evaluate(
            client,
            {"candidate": "v3", "golden": str(golden_file), "seed": 3, "apply": True},
        )
        assert status == 200
        assert payload["verdict"]["decision"] == "promote"
        assert payload["applied"] == "swapped active to v3"
        assert payload["active"] == "v3"

    def test_verdict_surfaces_in_health_and_metrics(self, client, golden_file):
        # cuisine@v2 (naive_bayes) vs cuisine@v1 (logreg): whatever the
        # decision, the stored verdict must surface on every stats plane.
        status, payload = evaluate(
            client, {"candidate": "v2", "golden": str(golden_file), "seed": 3}
        )
        assert status == 200
        decision = payload["verdict"]["decision"]
        code = payload["verdict"]["code"]

        status, health = client.request("GET", "/healthz")
        assert status == 200
        summary = health["routes"]["cuisine"]["eval"]
        assert summary["decision"] == decision
        assert summary["candidate"] == "v2"
        assert summary["code"] == code

        status, text = client.request("GET", "/metrics")
        assert status == 200
        metrics = parse_metrics_text(
            text if isinstance(text, str) else text.decode("utf-8")
        )
        assert metrics["repro_routes_cuisine_eval_code"] == code

    def test_same_seed_same_verdict_bytes_over_http(self, client, golden_file):
        import json

        body = {"candidate": "v2", "golden": str(golden_file), "seed": 9}
        _, first = evaluate(client, body)
        _, second = evaluate(client, body)
        canonical = lambda v: json.dumps(v, sort_keys=True, separators=(",", ":"))
        assert canonical(first["verdict"]) == canonical(second["verdict"])

    def test_policy_override_travels_in_verdict(self, client, golden_file):
        status, payload = evaluate(
            client,
            {
                "candidate": "v2",
                "golden": str(golden_file),
                "policy": {"min_examples": 100000},
            },
        )
        assert status == 200
        assert payload["verdict"]["decision"] == "hold"
        assert payload["verdict"]["policy"]["min_examples"] == 100000

    def test_unknown_candidate_is_404(self, client, golden_file):
        status, payload = evaluate(
            client, {"candidate": "v99", "golden": str(golden_file)}
        )
        assert status == 404
        assert "v99" in payload["error"]["message"]

    def test_missing_golden_file_is_400_with_field(self, client, tmp_path):
        status, payload = evaluate(
            client, {"candidate": "v2", "golden": str(tmp_path / "absent.jsonl")}
        )
        assert status == 400
        assert payload["error"]["field"] == "golden"

    def test_bad_policy_is_400_with_field(self, client, golden_file):
        status, payload = evaluate(
            client,
            {"candidate": "v2", "golden": str(golden_file), "policy": {"nope": 1}},
        )
        assert status == 400
        assert payload["error"]["field"] == "policy"

    def test_bad_seed_is_400_with_field(self, client, golden_file):
        status, payload = evaluate(
            client, {"candidate": "v2", "golden": str(golden_file), "seed": "x"}
        )
        assert status == 400
        assert payload["error"]["field"] == "seed"

    def test_missing_candidate_is_400(self, client, golden_file):
        status, payload = evaluate(client, {"golden": str(golden_file)})
        assert status == 400
        assert payload["error"]["field"] == "candidate"

    def test_evaluate_requires_admin_token(self, client, golden_file):
        status, payload = client.request(
            "POST",
            "/admin/routes/cuisine/evaluate",
            {"candidate": "v2", "golden": str(golden_file)},
        )
        assert status == 401

    def test_put_is_method_not_allowed(self, client):
        status, payload = client.request(
            "PUT",
            "/admin/routes/cuisine/evaluate",
            {"candidate": "v2"},
            headers={"x-admin-token": ADMIN_TOKEN},
        )
        assert status == 405

    def test_other_admin_actions_still_reject_get(self, client):
        status, payload = client.request(
            "GET",
            "/admin/routes/cuisine/swap",
            headers={"x-admin-token": ADMIN_TOKEN},
        )
        assert status == 405
