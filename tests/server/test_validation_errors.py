"""Malformed-input hardening, end to end through the real server.

Satellite bar: empty sequence batches, non-list JSON bodies, oversized
batches and unknown routes must come back as *structured* errors — a JSON
``{"error": {code, message, field?}}`` body with the right status — never a
traceback or a dropped connection.
"""

from __future__ import annotations

import socket

import pytest

from repro.server import ModelServer
from tests.server.conftest import ServerClient, make_gateway


def _assert_structured(payload):
    assert isinstance(payload, dict), f"non-JSON error body: {payload!r}"
    assert set(payload) == {"error"}
    assert "code" in payload["error"] and "message" in payload["error"]
    assert "Traceback" not in str(payload)


# ----------------------------------------------------------------------
# body shape
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "raw_body, expected_code",
    [
        ("[1, 2, 3]", "bad_body"),        # non-object JSON body (list)
        ('"just a string"', "bad_body"),  # non-object JSON body (scalar)
        ("42", "bad_body"),
        ("{not json", "invalid_json"),
        ("", "empty_body"),
    ],
)
def test_non_object_bodies(client, raw_body, expected_code):
    status, payload = client.request(
        "POST", "/routes/cuisine/predict", raw_body=raw_body
    )
    assert status == 400
    _assert_structured(payload)
    assert payload["error"]["code"] == expected_code


def test_missing_and_ambiguous_sequence_fields(client, server_sequences):
    status, payload = client.request("POST", "/routes/cuisine/predict", {"key": "u1"})
    assert status == 400
    _assert_structured(payload)

    sequence = list(server_sequences[0])
    status, payload = client.request(
        "POST", "/routes/cuisine/predict",
        {"sequence": sequence, "sequences": [sequence]},
    )
    assert status == 400
    assert "exactly one" in payload["error"]["message"]


@pytest.mark.parametrize(
    "sequence, expected_field",
    [
        ("pasta", "sequence"),            # not a list
        ({"0": "pasta"}, "sequence"),     # not a list
        ([], "sequence"),                 # empty
        (["pasta", 7], "sequence[1]"),    # non-string item
        ([None], "sequence[0]"),
    ],
)
def test_bad_single_sequences(client, sequence, expected_field):
    status, payload = client.request(
        "POST", "/routes/cuisine/predict", {"sequence": sequence}
    )
    assert status == 400
    _assert_structured(payload)
    assert payload["error"]["field"] == expected_field


# ----------------------------------------------------------------------
# batches
# ----------------------------------------------------------------------
def test_empty_batch_rejected(client):
    status, payload = client.request(
        "POST", "/routes/cuisine/predict", {"sequences": []}
    )
    assert status == 400
    _assert_structured(payload)
    assert payload["error"]["field"] == "sequences"


def test_batch_with_empty_member_rejected(client, server_sequences):
    status, payload = client.request(
        "POST", "/routes/cuisine/predict",
        {"sequences": [list(server_sequences[0]), []]},
    )
    assert status == 400
    assert payload["error"]["field"] == "sequences[1]"


def test_batch_not_a_list_rejected(client):
    status, payload = client.request(
        "POST", "/routes/cuisine/predict", {"sequences": "pasta"}
    )
    assert status == 400
    assert payload["error"]["field"] == "sequences"


def test_keys_length_mismatch(client, server_sequences):
    status, payload = client.request(
        "POST", "/routes/cuisine/predict",
        {"sequences": [list(server_sequences[0])], "keys": ["a", "b"]},
    )
    assert status == 400
    assert payload["error"]["field"] == "keys"


def test_oversized_batch_rejected(server_export_dir, server_sequences):
    server = ModelServer(make_gateway(server_export_dir), max_batch_items=4)
    handle = server.start_in_thread()
    test_client = ServerClient(handle.port)
    try:
        sequences = [list(server_sequences[0])] * 5
        status, payload = test_client.request(
            "POST", "/routes/cuisine/predict", {"sequences": sequences}
        )
        assert status == 413
        _assert_structured(payload)
        assert payload["error"]["code"] == "batch_too_large"
        # Exactly at the limit is fine.
        status, payload = test_client.request(
            "POST", "/routes/cuisine/predict", {"sequences": sequences[:4]}
        )
        assert status == 200
    finally:
        test_client.close()
        handle.stop()


# ----------------------------------------------------------------------
# routing / protocol limits
# ----------------------------------------------------------------------
def test_unknown_route_and_version(client, server_sequences):
    sequence = list(server_sequences[0])
    status, payload = client.request(
        "POST", "/routes/nonexistent/predict", {"sequence": sequence}
    )
    assert status == 404
    _assert_structured(payload)
    assert "nonexistent" in payload["error"]["message"]

    status, payload = client.request(
        "POST", "/routes/cuisine/predict", {"sequence": sequence, "version": "v99"}
    )
    assert status == 404
    assert "v99" in payload["error"]["message"]


def test_unknown_path_and_wrong_method(client):
    status, payload = client.request("GET", "/definitely/not/here")
    assert status == 404
    _assert_structured(payload)

    status, payload = client.request("GET", "/routes/cuisine/predict")
    assert status == 405
    assert payload["error"]["code"] == "method_not_allowed"

    status, payload = client.request("POST", "/healthz", {})
    assert status == 405


def test_oversized_body_rejected(server_export_dir):
    server = ModelServer(make_gateway(server_export_dir), max_body_bytes=512)
    handle = server.start_in_thread()
    test_client = ServerClient(handle.port)
    try:
        status, payload = test_client.request(
            "POST", "/routes/cuisine/predict", {"sequence": ["x" * 2048]}
        )
        assert status == 413
        _assert_structured(payload)
        assert payload["error"]["code"] == "body_too_large"
    finally:
        test_client.close()
        handle.stop()


def test_oversized_headers_rejected(running_server):
    _, handle = running_server
    with socket.create_connection(("127.0.0.1", handle.port), timeout=30) as sock:
        sock.sendall(
            b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
            + b"X-Padding: " + b"p" * 40000 + b"\r\n\r\n"
        )
        sock.settimeout(30)
        response = b""
        while b"\r\n\r\n" not in response:
            chunk = sock.recv(65536)
            if not chunk:
                break
            response += chunk
    assert b"431" in response.split(b"\r\n", 1)[0]


def test_chunked_transfer_encoding_unsupported(running_server):
    _, handle = running_server
    with socket.create_connection(("127.0.0.1", handle.port), timeout=30) as sock:
        sock.sendall(
            b"POST /routes/cuisine/predict HTTP/1.1\r\nHost: t\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n"
        )
        sock.settimeout(30)
        response = sock.recv(65536)
    assert b"501" in response.split(b"\r\n", 1)[0]
    assert b"chunked_unsupported" in response
