"""End-to-end behaviour of the HTTP serving frontier (happy paths).

Everything here talks to a real server over real sockets — the in-thread
:meth:`ModelServer.start_in_thread` harness, stdlib ``http.client`` on the
other side.
"""

from __future__ import annotations

import json
import socket

import numpy as np
import pytest

from tests.server.conftest import ServerClient, parse_metrics_text

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


# ----------------------------------------------------------------------
# data plane
# ----------------------------------------------------------------------
def test_single_predict_matches_gateway(running_server, client, server_sequences):
    server, _ = running_server
    sequence = list(server_sequences[0])
    status, payload = client.request(
        "POST", "/routes/cuisine/predict", {"sequence": sequence}
    )
    assert status == 200
    expected = server.gateway.predict_proba("cuisine", sequence)
    assert payload["route"] == "cuisine"
    assert payload["label"] == server.gateway.predict("cuisine", sequence)
    assert np.allclose(payload["probabilities"], expected)


def test_batch_predict_with_keys(running_server, client, server_sequences):
    server, _ = running_server
    sequences = [list(s) for s in server_sequences[:5]]
    keys = [f"user-{i}" for i in range(5)]
    status, payload = client.request(
        "POST", "/routes/cuisine/predict", {"sequences": sequences, "keys": keys}
    )
    assert status == 200
    assert payload["count"] == 5
    assert len(payload["labels"]) == 5
    expected = server.gateway.predict_proba_batch("cuisine", sequences, keys=keys)
    assert np.allclose(payload["probabilities"], expected)


def test_version_pinned_predict(client, server_sequences):
    sequence = list(server_sequences[0])
    status_v1, payload_v1 = client.request(
        "POST", "/routes/cuisine/predict", {"sequence": sequence, "version": "v1"}
    )
    status_v2, payload_v2 = client.request(
        "POST", "/routes/cuisine/predict", {"sequence": sequence, "version": "v2"}
    )
    assert status_v1 == status_v2 == 200
    # Different model families: the pinned dark version really served.
    assert payload_v1["probabilities"] != payload_v2["probabilities"]


def test_keep_alive_reuses_one_connection(client, server_sequences):
    sequence = list(server_sequences[0])
    for _ in range(3):
        status, _ = client.request(
            "POST", "/routes/cuisine/predict", {"sequence": sequence}
        )
        assert status == 200
    # http.client would raise on a dropped connection between requests; also
    # check the server saw one connection for all three requests.
    status, health = client.request("GET", "/healthz")
    assert status == 200
    assert health["server"]["counters"]["connections"] == 1


def test_pipelined_requests_answered_in_order(running_server, server_sequences):
    _, handle = running_server
    body = json.dumps({"sequence": list(server_sequences[0])}).encode()
    request = (
        b"POST /routes/cuisine/predict HTTP/1.1\r\n"
        b"Host: t\r\nContent-Type: application/json\r\n"
        b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
    )
    with socket.create_connection(("127.0.0.1", handle.port), timeout=30) as sock:
        sock.sendall(request * 3)  # three pipelined requests in one write
        sock.settimeout(30)
        received = b""
        while received.count(b"HTTP/1.1 200 OK") < 3:
            chunk = sock.recv(65536)
            assert chunk, f"connection closed early after {received!r}"
            received += chunk
    assert received.count(b'"label"') == 3


# ----------------------------------------------------------------------
# observability endpoints
# ----------------------------------------------------------------------
def test_healthz_reports_routes_and_server_block(client):
    status, payload = client.request("GET", "/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["routes"]["cuisine"]["active"] == "v1"
    server_block = payload["server"]
    assert server_block["draining"] is False
    assert server_block["max_inflight"] == 32
    assert "latency" in server_block


def test_metrics_text_export(client, server_sequences):
    client.request("POST", "/routes/cuisine/predict", {"sequence": list(server_sequences[0])})
    status, body = client.request("GET", "/metrics")
    assert status == 200
    text = body.decode() if isinstance(body, bytes) else str(body)
    metrics = parse_metrics_text(text)
    assert metrics["repro_healthy"] == 1
    assert metrics["repro_server_counters_predict_requests"] >= 1
    assert metrics["repro_routes_cuisine_requests"] >= 1
    assert "repro_server_latency_p99_ms" in metrics
    # Byte-stable ordering: lines arrive sorted by metric name.
    names = [line.rsplit(" ", 1)[0] for line in text.splitlines() if line.strip()]
    assert names == sorted(names)


# ----------------------------------------------------------------------
# admin control plane
# ----------------------------------------------------------------------
def test_admin_requires_token(client):
    status, payload = client.request(
        "POST", "/admin/routes/cuisine/swap", {"version": "v2"}
    )
    assert status == 401
    assert payload["error"]["code"] == "unauthorized"
    status, _ = client.request(
        "POST", "/admin/routes/cuisine/swap", {"version": "v2"},
        headers={"x-admin-token": "wrong"},
    )
    assert status == 401


def test_admin_disabled_without_token(server_export_dir, server_sequences):
    from tests.server.conftest import make_gateway
    from repro.server import ModelServer

    server = ModelServer(make_gateway(server_export_dir), admin_token=None)
    handle = server.start_in_thread()
    test_client = ServerClient(handle.port)
    try:
        status, payload = test_client.request(
            "POST", "/admin/routes/cuisine/swap", {"version": "v2"},
            headers={"x-admin-token": "anything"},
        )
        assert status == 403
        assert payload["error"]["code"] == "admin_disabled"
        # The data plane is unaffected.
        status, _ = test_client.request(
            "POST", "/routes/cuisine/predict", {"sequence": list(server_sequences[0])}
        )
        assert status == 200
    finally:
        test_client.close()
        handle.stop()


def test_admin_swap_rollback_retire_policy(running_server, client, server_export_dir):
    server, _ = running_server
    status, payload = client.admin("/admin/routes/cuisine/swap", {"version": "v2"})
    assert (status, payload["active"]) == (200, "v2")
    assert server.gateway.registry.active_version("cuisine") == "v2"

    status, payload = client.admin("/admin/routes/cuisine/rollback")
    assert (status, payload["active"]) == (200, "v1")

    status, payload = client.admin(
        "/admin/routes/cuisine/policy",
        {"policy": {"kind": "canary", "candidate": "v2", "fraction": 0.25}},
    )
    assert status == 200
    assert payload["policy"]["kind"] == "canary"
    assert server.gateway.registry.policy("cuisine").fraction == 0.25

    status, payload = client.admin("/admin/routes/cuisine/policy", {"policy": {"kind": "active"}})
    assert status == 200
    assert payload["policy"]["kind"] == "active"

    status, payload = client.admin("/admin/routes/cuisine/retire", {"version": "v2"})
    assert status == 200
    assert payload["versions"] == ["v1"]


def test_admin_deploy_new_version(running_server, client, server_export_dir):
    server, _ = running_server
    status, payload = client.admin(
        "/admin/routes/cuisine/deploy",
        {"version": "v3", "path": str(server_export_dir / "naive_bayes")},
    )
    assert status == 200
    assert payload["version"] == "v3"
    assert payload["active"] == "v1"  # deployed dark by default
    assert "v3" in server.gateway.registry.versions("cuisine")


def test_admin_errors_are_structured(client):
    status, payload = client.admin("/admin/routes/cuisine/swap", {"version": "ghost"})
    assert status == 404
    assert "ghost" in payload["error"]["message"]

    status, payload = client.admin("/admin/routes/cuisine/swap", {})
    assert (status, payload["error"]["field"]) == (400, "version")

    status, payload = client.admin(
        "/admin/routes/cuisine/policy", {"policy": {"kind": "warp"}}
    )
    assert (status, payload["error"]["field"]) == (400, "policy.kind")

    status, payload = client.admin(
        "/admin/routes/cuisine/policy", {"policy": {"kind": "canary", "candidate": "v2"}}
    )
    assert (status, payload["error"]["field"]) == (400, "policy.fraction")

    status, payload = client.admin("/admin/routes/cuisine/teleport", {})
    assert status == 404
