"""Tests for corpus/config fingerprinting (the feature-store cache keys)."""

import pytest

from repro.core.experiment import shuffle_recipe_sequences
from repro.data.generator import GeneratorConfig, RecipeDBGenerator
from repro.data.recipedb import RecipeDB
from repro.pipeline.fingerprint import artifact_key, corpus_fingerprint, stable_hash
from repro.text.pipeline import PipelineConfig


class TestStableHash:
    def test_deterministic_across_calls(self):
        config = PipelineConfig(split_items=True)
        assert stable_hash(config) == stable_hash(PipelineConfig(split_items=True))

    def test_sensitive_to_any_field(self):
        base = PipelineConfig()
        assert stable_hash(base) != stable_hash(PipelineConfig(lemmatize=False))
        assert stable_hash(base) != stable_hash(PipelineConfig(item_separator="-"))

    def test_handles_plain_values_and_collections(self):
        assert stable_hash((1, "a")) == stable_hash([1, "a"])
        assert stable_hash({"b": 2, "a": 1}) == stable_hash({"a": 1, "b": 2})
        assert stable_hash(None) != stable_hash(0)

    def test_artifact_key_joins_parts(self):
        key = artifact_key("abc", PipelineConfig())
        assert key.startswith("abc-")
        assert key == artifact_key("abc", PipelineConfig())


class TestCorpusFingerprint:
    def test_equal_content_equal_fingerprint(self):
        a = RecipeDBGenerator(GeneratorConfig(scale=0.004, seed=5)).generate()
        b = RecipeDBGenerator(GeneratorConfig(scale=0.004, seed=5)).generate()
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

    def test_different_seed_different_fingerprint(self):
        a = RecipeDBGenerator(GeneratorConfig(scale=0.004, seed=5)).generate()
        b = RecipeDBGenerator(GeneratorConfig(scale=0.004, seed=6)).generate()
        assert a.fingerprint() != b.fingerprint()

    def test_shuffle_ablation_invalidates_fingerprint(self, tiny_corpus):
        shuffled = shuffle_recipe_sequences(tiny_corpus, seed=1)
        assert shuffled.fingerprint() != tiny_corpus.fingerprint()

    def test_drop_rare_cuisines_invalidates_fingerprint(self, small_corpus):
        reduced = small_corpus.drop_rare_cuisines(60)
        assert len(reduced) < len(small_corpus)
        assert reduced.fingerprint() != small_corpus.fingerprint()

    def test_subset_invalidates_fingerprint(self, tiny_corpus):
        subset = tiny_corpus.subset(range(len(tiny_corpus) // 2))
        assert subset.fingerprint() != tiny_corpus.fingerprint()

    def test_fingerprint_is_cached_per_instance(self, tiny_corpus):
        first = tiny_corpus.fingerprint()
        assert tiny_corpus.fingerprint() is first  # same cached string object

    def test_module_level_helper_delegates(self, tiny_corpus):
        assert corpus_fingerprint(tiny_corpus) == tiny_corpus.fingerprint()

    def test_fingerprint_covers_labels(self, handmade_corpus):
        relabelled = RecipeDB(
            recipes=[
                type(r)(
                    recipe_id=r.recipe_id,
                    cuisine="French" if i == 0 else r.cuisine,
                    continent=r.continent,
                    sequence=r.sequence,
                    kinds=r.kinds,
                )
                for i, r in enumerate(handmade_corpus)
            ]
        )
        assert relabelled.fingerprint() != handmade_corpus.fingerprint()
