"""Tests for the sharded corpus engine.

The two acceptance properties of the engine refactor:

* **Equivalence** — for every registry model's feature spec, featurizing
  through ``CorpusEngine(n_workers=4)`` yields bitwise-identical artifacts
  (same content digests) as the sequential feature-store path.
* **Incrementality** — after ``RecipeDB.extend``, refeaturizing recomputes
  only the shards whose fingerprints changed (verified through the store's
  per-shard hit/miss counters).
"""

import hashlib
from dataclasses import replace

import numpy as np
import pytest

from repro.data.recipedb import RecipeDB
from repro.models.registry import MODEL_NAMES, create_model
from repro.pipeline.engine import SHARD_KIND, CorpusEngine, EngineConfig
from repro.pipeline.fingerprint import stable_hash
from repro.pipeline.specs import SequenceSpec, TfidfSpec
from repro.pipeline.store import FeatureStore, _jsonable_state
from repro.text.pipeline import PipelineConfig

STAT_PIPELINE = PipelineConfig(split_items=True)


def array_digest(*arrays: np.ndarray) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for array in arrays:
        digest.update(np.ascontiguousarray(array).tobytes())
        digest.update(str(array.shape).encode())
    return digest.hexdigest()


def inputs_digests(store: FeatureStore, spec, corpus, train_corpus, label_space) -> dict:
    """Content digests of every artifact a model consumes under *spec*."""
    inputs = store.model_inputs(
        spec, corpus, train_corpus=train_corpus, label_space=label_space
    )
    digests = {
        "tokens": stable_hash(store.tokens(corpus, spec.pipeline)),
        "labels": array_digest(inputs.labels),
    }
    if isinstance(spec, TfidfSpec):
        matrix = inputs.features
        digests["features"] = array_digest(matrix.data, matrix.indices, matrix.indptr)
        digests["documents"] = stable_hash(store.documents(corpus, spec.pipeline))
        digests["vectorizer"] = stable_hash(_jsonable_state(inputs.vectorizer.get_state()))
    else:
        digests["features"] = array_digest(inputs.features.ids, inputs.features.mask)
        digests["vocabulary"] = stable_hash(_jsonable_state(inputs.vocabulary.get_state()))
    return digests


def renumbered(recipes, start_id):
    return [replace(r, recipe_id=start_id + i) for i, r in enumerate(recipes)]


@pytest.fixture(scope="module")
def registry_specs():
    label_space = ("Italian", "Mexican", "Japanese")
    return {name: create_model(name, label_space=label_space).feature_spec() for name in MODEL_NAMES}


class TestEngineConfig:
    def test_invalid_shard_size_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(shard_size=0)

    def test_invalid_n_workers_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(n_workers=0)

    def test_config_and_shortcuts_are_exclusive(self):
        with pytest.raises(ValueError):
            CorpusEngine(FeatureStore(), EngineConfig(), shard_size=8)


class TestSequentialEquivalence:
    def test_tokens_identical_to_store_path(self, tiny_corpus):
        sequential = FeatureStore().tokens(tiny_corpus, STAT_PIPELINE)
        engine = CorpusEngine(FeatureStore(), shard_size=16)
        assert engine.tokens(tiny_corpus, STAT_PIPELINE) == sequential

    def test_engine_and_store_paths_share_the_corpus_artifact(self, tiny_corpus):
        store = FeatureStore()
        engine = CorpusEngine(store, shard_size=16)
        via_engine = engine.tokens(tiny_corpus, STAT_PIPELINE)
        assert store.tokens(tiny_corpus, STAT_PIPELINE) is via_engine
        assert store.miss_count("tokens") == 1  # the store path was a pure hit

    def test_single_shard_covers_whole_corpus(self, tiny_corpus):
        engine = CorpusEngine(FeatureStore(), shard_size=10**6)
        sequential = FeatureStore().tokens(tiny_corpus, STAT_PIPELINE)
        assert engine.tokens(tiny_corpus, STAT_PIPELINE) == sequential
        assert engine.shard_stats()["misses"] == 1


class TestParallelEquivalence:
    def test_registry_specs_bitwise_identical_with_four_workers(
        self, tiny_corpus, registry_specs
    ):
        label_space = tiny_corpus.present_cuisines()
        train = tiny_corpus.subset(range(0, len(tiny_corpus), 2))
        evaluation = tiny_corpus.subset(range(1, len(tiny_corpus), 2))

        sequential_store = FeatureStore()
        engine_store = FeatureStore()
        with CorpusEngine(engine_store, shard_size=8, n_workers=4) as engine:
            for name, spec in registry_specs.items():
                for corpus in (train, evaluation):
                    engine.tokens(corpus, spec.pipeline)
                for corpus in (train, evaluation):
                    assert inputs_digests(
                        engine_store, spec, corpus, train, label_space
                    ) == inputs_digests(
                        sequential_store, spec, corpus, train, label_space
                    ), name
        assert engine_store.miss_count(SHARD_KIND) > 0

    def test_parallel_model_inputs_match_sequential(self, tiny_corpus):
        spec = SequenceSpec(max_length=24, add_cls=True)
        sequential = FeatureStore().model_inputs(
            spec, tiny_corpus, label_space=tiny_corpus.present_cuisines()
        )
        with CorpusEngine(FeatureStore(), shard_size=8, n_workers=2) as engine:
            parallel = engine.model_inputs(
                spec, tiny_corpus, label_space=tiny_corpus.present_cuisines()
            )
        np.testing.assert_array_equal(parallel.features.ids, sequential.features.ids)
        np.testing.assert_array_equal(parallel.features.mask, sequential.features.mask)
        np.testing.assert_array_equal(parallel.labels, sequential.labels)


class TestIncrementalFeaturization:
    def test_extend_recomputes_only_new_shards(self, tiny_corpus):
        base = tiny_corpus.subset(range(60))
        extra = renumbered(
            tiny_corpus.subset(range(60, 80)).recipes,
            start_id=10**6,
        )
        store = FeatureStore()
        engine = CorpusEngine(store, shard_size=20)

        engine.tokens(base, STAT_PIPELINE)
        assert store.miss_count(SHARD_KIND) == 3

        grown = base.extend(extra)
        assert grown.fingerprint() != base.fingerprint()
        store.reset_stats()
        tokens = engine.tokens(grown, STAT_PIPELINE)

        # 60 % 20 == 0: the three prefix shards are untouched cache hits and
        # only the appended shard is computed.
        assert store.hit_count(SHARD_KIND) == 3
        assert store.miss_count(SHARD_KIND) == 1
        assert tokens == FeatureStore().tokens(grown, STAT_PIPELINE)

    def test_partial_trailing_shard_is_recomputed_after_extend(self, tiny_corpus):
        base = tiny_corpus.subset(range(50))  # 50 % 20 != 0 -> partial tail
        extra = renumbered(tiny_corpus.subset(range(50, 60)).recipes, start_id=10**6)
        store = FeatureStore()
        engine = CorpusEngine(store, shard_size=20)
        engine.tokens(base, STAT_PIPELINE)
        store.reset_stats()

        engine.tokens(base.extend(extra), STAT_PIPELINE)
        # Two full prefix shards survive; the previously-partial third shard
        # changed content and is recomputed along with the rest of the tail.
        assert store.hit_count(SHARD_KIND) == 2
        assert store.miss_count(SHARD_KIND) == 1

    def test_shard_artifacts_persist_across_processes(self, tiny_corpus, tmp_path):
        warm = CorpusEngine(FeatureStore(cache_dir=tmp_path), shard_size=16)
        tokens = warm.tokens(tiny_corpus, STAT_PIPELINE)

        cold_store = FeatureStore(cache_dir=tmp_path)
        cold = CorpusEngine(cold_store, shard_size=16)
        # The corpus-level artifact itself is a disk hit; drop it to force
        # the shard path and show the per-shard artifacts also persisted.
        (tmp_path / next(p.name for p in tmp_path.iterdir() if p.name.startswith("tokens-"))).unlink()
        assert cold.tokens(tiny_corpus, STAT_PIPELINE) == tokens
        assert cold_store.miss_count(SHARD_KIND) == 0
        assert cold_store.disk_hits[SHARD_KIND] > 0


class TestEngineWarm:
    def test_warm_covers_every_downstream_artifact(self, tiny_corpus):
        specs = [TfidfSpec(), SequenceSpec()]
        label_space = tiny_corpus.present_cuisines()
        train = tiny_corpus.subset(range(0, len(tiny_corpus), 2))
        evaluation = tiny_corpus.subset(range(1, len(tiny_corpus), 2))
        store = FeatureStore()
        engine = CorpusEngine(store, shard_size=16)
        engine.warm([train, evaluation], specs, train_corpus=train, label_space=label_space)

        store.reset_stats()
        for spec in specs:
            for corpus in (train, evaluation):
                store.model_inputs(spec, corpus, train_corpus=train, label_space=label_space)
        assert store.miss_count() == 0  # everything was materialised up front

    def test_empty_corpus_is_skipped(self):
        engine = CorpusEngine(FeatureStore(), shard_size=4)
        empty = RecipeDB(recipes=[])
        engine.warm([empty], [TfidfSpec()])
        assert engine.tokens(empty, STAT_PIPELINE) == []
