"""Tests for FeatureStore semantics: hits/misses, invalidation, persistence."""

import numpy as np
import pytest

from repro.core.experiment import shuffle_recipe_sequences
from repro.pipeline.specs import ModelInputs, SequenceSpec, TfidfSpec
from repro.pipeline.store import FeatureStore
from repro.text.pipeline import PipelineConfig


STAT_PIPELINE = PipelineConfig(split_items=True)
SEQ_PIPELINE = PipelineConfig(split_items=False)


@pytest.fixture()
def store():
    return FeatureStore()


class TestHitMissCounters:
    def test_tokens_computed_once_per_corpus_and_config(self, store, tiny_corpus):
        first = store.tokens(tiny_corpus, STAT_PIPELINE)
        second = store.tokens(tiny_corpus, STAT_PIPELINE)
        assert first is second
        assert store.miss_count("tokens") == 1
        assert store.hit_count("tokens") == 1

    def test_distinct_pipeline_configs_are_distinct_artifacts(self, store, tiny_corpus):
        split = store.tokens(tiny_corpus, STAT_PIPELINE)
        whole = store.tokens(tiny_corpus, SEQ_PIPELINE)
        assert split != whole
        assert store.miss_count("tokens") == 2

    def test_documents_build_on_cached_tokens(self, store, tiny_corpus):
        store.tokens(tiny_corpus, STAT_PIPELINE)
        documents = store.documents(tiny_corpus, STAT_PIPELINE)
        assert len(documents) == len(tiny_corpus)
        assert store.miss_count("tokens") == 1  # reused, not recomputed
        assert store.miss_count("documents") == 1

    def test_mutated_corpus_misses(self, store, tiny_corpus):
        store.tokens(tiny_corpus, STAT_PIPELINE)
        shuffled = shuffle_recipe_sequences(tiny_corpus, seed=3)
        store.tokens(shuffled, STAT_PIPELINE)
        assert store.miss_count("tokens") == 2

    def test_stats_and_reset(self, store, tiny_corpus):
        store.tokens(tiny_corpus, STAT_PIPELINE)
        store.tokens(tiny_corpus, STAT_PIPELINE)
        stats = store.stats()
        assert stats["misses"]["tokens"] == 1
        assert stats["hits"]["tokens"] == 1
        assert stats["entries"] == 1
        store.reset_stats()
        assert store.hit_count() == 0 and store.miss_count() == 0
        assert len(store) == 1  # artifacts survive a stats reset

    def test_lru_eviction_is_bounded(self, tiny_corpus):
        store = FeatureStore(max_entries=1)
        store.tokens(tiny_corpus, STAT_PIPELINE)
        store.tokens(tiny_corpus, SEQ_PIPELINE)
        assert len(store) == 1
        store.tokens(tiny_corpus, STAT_PIPELINE)  # evicted -> recomputed
        assert store.miss_count("tokens") == 3

    def test_invalid_max_entries_rejected(self):
        with pytest.raises(ValueError):
            FeatureStore(max_entries=0)


class TestTfidfArtifacts:
    def test_vectorizer_fitted_once_and_shared(self, store, tiny_corpus):
        spec = TfidfSpec(pipeline=STAT_PIPELINE, min_df=2)
        first = store.tfidf_vectorizer(tiny_corpus, spec)
        second = store.tfidf_vectorizer(tiny_corpus, spec)
        assert first is second
        assert store.miss_count("tfidf_vectorizer") == 1

    def test_matrix_matches_direct_vectorization(self, store, tiny_corpus):
        spec = TfidfSpec(pipeline=STAT_PIPELINE, min_df=2)
        matrix = store.tfidf_matrix(tiny_corpus, spec)
        direct = spec.build_vectorizer().fit_transform(
            store.documents(tiny_corpus, STAT_PIPELINE)
        )
        assert matrix.shape == direct.shape
        assert np.allclose(matrix.toarray(), direct.toarray())

    def test_different_specs_do_not_share_vectorizers(self, store, tiny_corpus):
        a = store.tfidf_vectorizer(tiny_corpus, TfidfSpec(pipeline=STAT_PIPELINE, min_df=1))
        b = store.tfidf_vectorizer(tiny_corpus, TfidfSpec(pipeline=STAT_PIPELINE, min_df=2))
        assert a is not b

    def test_eval_corpus_uses_train_vectorizer(self, store, small_splits):
        spec = TfidfSpec(pipeline=STAT_PIPELINE, min_df=2)
        train_matrix = store.tfidf_matrix(small_splits.train, spec)
        test_matrix = store.tfidf_matrix(
            small_splits.test, spec, train_corpus=small_splits.train
        )
        assert test_matrix.shape[1] == train_matrix.shape[1]
        assert store.miss_count("tfidf_vectorizer") == 1


class TestSequenceArtifacts:
    def test_vocabulary_shared_across_max_length_variants(self, store, tiny_corpus):
        short = SequenceSpec(pipeline=SEQ_PIPELINE, max_length=16, add_cls=False)
        long = SequenceSpec(pipeline=SEQ_PIPELINE, max_length=48, add_cls=True)
        assert store.vocabulary(tiny_corpus, short) is store.vocabulary(tiny_corpus, long)
        assert store.miss_count("vocabulary") == 1

    def test_encoded_batch_shapes(self, store, tiny_corpus):
        spec = SequenceSpec(pipeline=SEQ_PIPELINE, max_length=24, add_cls=True)
        batch = store.encoded_batch(tiny_corpus, spec)
        assert batch.ids.shape == (len(tiny_corpus), 24)
        assert batch.ids[:, 0].tolist() == [
            store.vocabulary(tiny_corpus, spec).cls_id
        ] * len(tiny_corpus)


class TestModelInputs:
    def test_tfidf_inputs(self, store, tiny_corpus):
        spec = TfidfSpec(pipeline=STAT_PIPELINE, min_df=2)
        inputs = store.model_inputs(
            spec, tiny_corpus, label_space=tiny_corpus.present_cuisines()
        )
        assert isinstance(inputs, ModelInputs)
        assert inputs.features.shape[0] == len(tiny_corpus)
        assert inputs.labels is not None and len(inputs.labels) == len(tiny_corpus)
        assert inputs.vectorizer is not None
        assert len(inputs) == len(tiny_corpus)

    def test_sequence_inputs_without_labels(self, store, tiny_corpus):
        spec = SequenceSpec(pipeline=SEQ_PIPELINE, max_length=16)
        inputs = store.model_inputs(spec, tiny_corpus, with_labels=False)
        assert inputs.labels is None
        assert inputs.vocabulary is not None
        assert len(inputs) == len(tiny_corpus)

    def test_labels_require_label_space(self, store, tiny_corpus):
        with pytest.raises(ValueError):
            store.model_inputs(TfidfSpec(pipeline=STAT_PIPELINE), tiny_corpus)

    def test_unknown_spec_rejected(self, store, tiny_corpus):
        with pytest.raises(TypeError):
            store.model_inputs(object(), tiny_corpus, with_labels=False)


class TestDiskPersistence:
    def test_tfidf_matrix_round_trips_equal(self, tmp_path, tiny_corpus):
        spec = TfidfSpec(pipeline=STAT_PIPELINE, min_df=2)
        warm_store = FeatureStore(cache_dir=tmp_path)
        original = warm_store.tfidf_matrix(tiny_corpus, spec)

        cold_store = FeatureStore(cache_dir=tmp_path)  # fresh process, same dir
        reloaded = cold_store.tfidf_matrix(tiny_corpus, spec)
        assert cold_store.miss_count("tfidf_matrix") == 0
        assert cold_store.disk_hits["tfidf_matrix"] == 1
        assert reloaded.shape == original.shape
        assert np.array_equal(reloaded.toarray(), original.toarray())

    def test_tokens_and_documents_persist(self, tmp_path, tiny_corpus):
        warm_store = FeatureStore(cache_dir=tmp_path)
        tokens = warm_store.tokens(tiny_corpus, STAT_PIPELINE)
        documents = warm_store.documents(tiny_corpus, STAT_PIPELINE)

        cold_store = FeatureStore(cache_dir=tmp_path)
        assert cold_store.tokens(tiny_corpus, STAT_PIPELINE) == tokens
        assert cold_store.documents(tiny_corpus, STAT_PIPELINE) == documents
        assert cold_store.miss_count() == 0

    def test_disk_survives_lru_eviction(self, tmp_path, tiny_corpus):
        store = FeatureStore(cache_dir=tmp_path, max_entries=1)
        tokens = store.tokens(tiny_corpus, STAT_PIPELINE)
        store.tokens(tiny_corpus, SEQ_PIPELINE)  # evicts the first artifact
        assert store.tokens(tiny_corpus, STAT_PIPELINE) == tokens
        assert store.miss_count("tokens") == 2  # reloaded from disk, not recomputed
        assert store.disk_hits["tokens"] == 1

    def test_fitted_vectorizer_persists_without_refitting(self, tmp_path, tiny_corpus):
        spec = TfidfSpec(pipeline=STAT_PIPELINE, min_df=2)
        warm_store = FeatureStore(cache_dir=tmp_path)
        original = warm_store.tfidf_vectorizer(tiny_corpus, spec)

        cold_store = FeatureStore(cache_dir=tmp_path)
        reloaded = cold_store.tfidf_vectorizer(tiny_corpus, spec)
        assert cold_store.miss_count("tfidf_vectorizer") == 0
        assert cold_store.disk_hits["tfidf_vectorizer"] == 1
        assert reloaded.vocabulary_ == original.vocabulary_
        np.testing.assert_array_equal(reloaded.idf_, original.idf_)
        documents = warm_store.documents(tiny_corpus, STAT_PIPELINE)
        np.testing.assert_array_equal(
            reloaded.transform(documents).toarray(),
            original.transform(documents).toarray(),
        )

    def test_vocabulary_persists_with_identical_ids(self, tmp_path, tiny_corpus):
        spec = SequenceSpec(pipeline=SEQ_PIPELINE, min_token_freq=2)
        warm_store = FeatureStore(cache_dir=tmp_path)
        original = warm_store.vocabulary(tiny_corpus, spec)

        cold_store = FeatureStore(cache_dir=tmp_path)
        reloaded = cold_store.vocabulary(tiny_corpus, spec)
        assert cold_store.miss_count("vocabulary") == 0
        assert cold_store.disk_hits["vocabulary"] == 1
        assert reloaded.tokens() == original.tokens()
        assert reloaded.special_ids == original.special_ids
        sample = original.tokens()[-1]
        assert reloaded.token_to_id(sample) == original.token_to_id(sample)
        assert reloaded.frequency(sample) == original.frequency(sample)


class TestConcurrentMaterialization:
    def test_concurrent_same_key_writers_compute_once(self, tmp_path, tiny_corpus):
        """Two threads materializing the same disk-backed artifact must not
        race: the per-key lock elects one writer, the other gets a hit."""
        import threading

        store = FeatureStore(cache_dir=tmp_path)
        results: list = []
        barrier = threading.Barrier(4)

        def materialize():
            barrier.wait()
            results.append(store.tokens(tiny_corpus, STAT_PIPELINE))

        threads = [threading.Thread(target=materialize) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(results) == 4
        assert all(r == results[0] for r in results)
        assert store.miss_count("tokens") == 1
        assert store.hit_count("tokens") == 3
        # Exactly one complete artifact file, no leftover temp files.
        artifacts = [p.name for p in tmp_path.iterdir()]
        assert len([n for n in artifacts if n.startswith("tokens-")]) == 1
        assert not [n for n in artifacts if n.endswith(".tmp")]

    def test_concurrent_distinct_keys_all_materialize(self, tmp_path, tiny_corpus):
        import threading

        store = FeatureStore(cache_dir=tmp_path)
        configs = [STAT_PIPELINE, SEQ_PIPELINE, PipelineConfig(lemmatize=False),
                   PipelineConfig(lowercase=False)]
        barrier = threading.Barrier(len(configs))

        def materialize(config):
            barrier.wait()
            store.tokens(tiny_corpus, config)

        threads = [threading.Thread(target=materialize, args=(c,)) for c in configs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.miss_count("tokens") == len(configs)

    def test_lookup_and_insert_round_trip(self, tmp_path):
        from repro.pipeline.store import _load_json, _save_json

        store = FeatureStore(cache_dir=tmp_path)
        found, value = store.lookup("shard_tokens", "k1", suffix=".json", load=_load_json)
        assert not found and value is None
        assert store.miss_count("shard_tokens") == 0  # lookup misses count nothing

        store.insert("shard_tokens", "k1", [["a"]], suffix=".json", save=_save_json)
        assert store.miss_count("shard_tokens") == 1
        found, value = store.lookup("shard_tokens", "k1")
        assert found and value == [["a"]]
        assert store.hit_count("shard_tokens") == 1

        # A fresh store sees the persisted artifact as a disk hit.
        cold = FeatureStore(cache_dir=tmp_path)
        found, value = cold.lookup("shard_tokens", "k1", suffix=".json", load=_load_json)
        assert found and value == [["a"]]
        assert cold.disk_hits["shard_tokens"] == 1

    def test_insert_can_seed_without_counting_misses(self):
        store = FeatureStore()
        store.insert("sequence_tokens", "seeded", ["a"], count_miss=False)
        assert store.miss_count("sequence_tokens") == 0
        found, value = store.lookup("sequence_tokens", "seeded")
        assert found and value == ["a"]

    def test_key_locks_are_released_after_materialization(self, tiny_corpus):
        """The per-key lock table is refcounted: it must drain back to empty
        once no thread is computing, even across LRU eviction churn."""
        import threading

        store = FeatureStore(max_entries=2)  # constant eviction pressure
        configs = [STAT_PIPELINE, SEQ_PIPELINE, PipelineConfig(lemmatize=False)]
        barrier = threading.Barrier(6)

        def materialize(config):
            barrier.wait()
            for _ in range(3):
                store.tokens(tiny_corpus, config)

        threads = [
            threading.Thread(target=materialize, args=(configs[i % len(configs)],))
            for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store._key_locks == {}
