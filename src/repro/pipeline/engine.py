"""Sharded corpus-execution engine: parallel + incremental featurization.

The engine replaces the monolithic "preprocess the whole corpus in one
pure-Python loop" step with a partitioned execution model:

1. The corpus is cut into deterministic, content-fingerprinted
   :class:`~repro.data.recipedb.CorpusShard` chunks
   (:meth:`RecipeDB.shards`).
2. Each shard's token artifact is resolved independently through the
   :class:`~repro.pipeline.store.FeatureStore` (kind ``shard_tokens``, keyed
   by shard content + pipeline config).  Shards missing from the cache are
   computed by mapping the picklable :class:`~repro.text.stages.StageChain`
   over them — in a ``ProcessPoolExecutor`` when ``n_workers > 1``, inline
   otherwise.
3. Shard outputs are reassembled in corpus order and published under the
   exact corpus-level ``tokens`` key the sequential
   :meth:`FeatureStore.tokens` path uses, so every downstream artifact
   (documents, vectorizers, vocabularies, matrices, encoded batches) is
   byte-identical and shared between both paths.

Because shard fingerprints depend only on shard content, appending recipes to
a corpus (:meth:`RecipeDB.extend`) leaves every full prefix shard's artifact
valid — refeaturizing the grown corpus recomputes only the appended tail
(**incremental featurization**).  The same per-shard cache serves training
(the experiment runner warms through the engine) and inference (the serving
layer's corpus warm-up seeds per-sequence artifacts from shard outputs).
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.data.recipedb import CorpusShard, RecipeDB
from repro.data.schema import Recipe
from repro.pipeline.fingerprint import artifact_key, sequence_key
from repro.pipeline.specs import FeatureSpec, ModelInputs, pipeline_configs
from repro.pipeline.store import FeatureStore, _load_json, _save_json
from repro.text.pipeline import PipelineConfig
from repro.text.stages import StageChain

#: FeatureStore artifact kind of per-shard token lists.
SHARD_KIND = "shard_tokens"


def _process_shard(recipes: tuple[Recipe, ...], chain: StageChain) -> list[list[str]]:
    """Worker entry point: run the stage chain over one shard's recipes.

    Module-level (and operating only on picklable arguments) so it can be
    shipped to ``ProcessPoolExecutor`` workers under any start method.
    """
    return chain.run_recipes(recipes)


@dataclass(frozen=True)
class EngineConfig:
    """Execution configuration of the corpus engine.

    Attributes:
        shard_size: Recipes per shard.  Smaller shards recompute less after
            an append but carry more scheduling/caching overhead; the default
            keeps shards large enough that stage work dominates.
        n_workers: Worker processes mapping the stage chain over shards.
            ``1`` (the default) runs shards sequentially in-process — the
            output is identical either way.
    """

    shard_size: int = 512
    n_workers: int = 1

    def __post_init__(self) -> None:
        if self.shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {self.shard_size}")
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")


class CorpusEngine:
    """Maps stage chains over corpus shards, through the feature store.

    Args:
        store: The feature store holding per-shard and corpus-level
            artifacts.  Sharing one store between an engine, an experiment
            runner and a prediction service makes every layer consume the
            same cache.
        config: Execution configuration; ``shard_size=...`` / ``n_workers=...``
            keyword shortcuts construct one implicitly.
    """

    def __init__(
        self,
        store: FeatureStore | None = None,
        config: EngineConfig | None = None,
        *,
        shard_size: int | None = None,
        n_workers: int | None = None,
    ) -> None:
        if config is not None and (shard_size is not None or n_workers is not None):
            raise ValueError("pass either config or shard_size/n_workers, not both")
        if config is None:
            config = EngineConfig(
                shard_size=shard_size if shard_size is not None else 512,
                n_workers=n_workers if n_workers is not None else 1,
            )
        self.store = store if store is not None else FeatureStore()
        self.config = config
        self._pool: Executor | None = None

    # ------------------------------------------------------------------
    # worker pool lifecycle
    # ------------------------------------------------------------------
    def _executor(self) -> Executor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.config.n_workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; the engine stays usable)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "CorpusEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # sharded tokenization
    # ------------------------------------------------------------------
    def shard_tokens(
        self, shard: CorpusShard, pipeline_config: PipelineConfig
    ) -> list[list[str]]:
        """Token sequences of a single shard (cached by shard content)."""
        key = artifact_key(shard.fingerprint(), pipeline_config)
        found, value = self.store.lookup(SHARD_KIND, key, suffix=".json", load=_load_json)
        if found:
            return value
        value = _process_shard(shard.recipes, StageChain.from_config(pipeline_config))
        return self.store.insert(SHARD_KIND, key, value, suffix=".json", save=_save_json)

    def _assemble_tokens(
        self, shards: Sequence[CorpusShard], pipeline_config: PipelineConfig
    ) -> list[list[str]]:
        """Resolve every shard (parallelising the misses) and concatenate."""
        resolved: dict[int, list[list[str]]] = {}
        missing: list[CorpusShard] = []
        for shard in shards:
            key = artifact_key(shard.fingerprint(), pipeline_config)
            found, value = self.store.lookup(
                SHARD_KIND, key, suffix=".json", load=_load_json
            )
            if found:
                resolved[shard.index] = value
            else:
                missing.append(shard)
        if missing:
            chain = StageChain.from_config(pipeline_config)
            if self.config.n_workers > 1 and len(missing) > 1:
                outputs = list(
                    self._executor().map(
                        _process_shard,
                        [shard.recipes for shard in missing],
                        [chain] * len(missing),
                    )
                )
            else:
                outputs = [_process_shard(shard.recipes, chain) for shard in missing]
            for shard, output in zip(missing, outputs):
                key = artifact_key(shard.fingerprint(), pipeline_config)
                self.store.insert(SHARD_KIND, key, output, suffix=".json", save=_save_json)
                resolved[shard.index] = output
        tokens: list[list[str]] = []
        for shard in shards:
            tokens.extend(resolved[shard.index])
        return tokens

    def tokens(self, corpus: RecipeDB, pipeline_config: PipelineConfig) -> list[list[str]]:
        """Preprocessed token sequences of *corpus*, computed shard-wise.

        The corpus-level artifact lives under the same ``tokens`` kind and
        key as :meth:`FeatureStore.tokens`, so the sequential and sharded
        paths hit each other's cache entries and produce byte-identical
        results; only the *computation* of a cold corpus differs (per-shard,
        optionally process-parallel, incrementally reusing shard artifacts).
        """
        key = artifact_key(corpus.fingerprint(), pipeline_config)
        return self.store._get_or_compute(
            "tokens",
            key,
            lambda: self._assemble_tokens(corpus.shards(self.config.shard_size), pipeline_config),
            suffix=".json",
            save=_save_json,
            load=_load_json,
        )

    def documents(self, corpus: RecipeDB, pipeline_config: PipelineConfig) -> list[str]:
        """Document strings of *corpus*, built on sharded tokens."""
        self.tokens(corpus, pipeline_config)
        return self.store.documents(corpus, pipeline_config)

    # ------------------------------------------------------------------
    # store-facing passthroughs
    # ------------------------------------------------------------------
    def model_inputs(
        self,
        spec: FeatureSpec,
        corpus: RecipeDB,
        train_corpus: RecipeDB | None = None,
        label_space: Sequence[str] | None = None,
        with_labels: bool = True,
    ) -> ModelInputs:
        """Resolve *spec* with the preprocessing step routed through shards."""
        self.tokens(corpus, spec.pipeline)
        if train_corpus is not None and train_corpus is not corpus:
            self.tokens(train_corpus, spec.pipeline)
        return self.store.model_inputs(
            spec,
            corpus,
            train_corpus=train_corpus,
            label_space=label_space,
            with_labels=with_labels,
        )

    def warm(
        self,
        corpora: Sequence[RecipeDB],
        specs: Sequence[FeatureSpec],
        train_corpus: RecipeDB | None = None,
        label_space: Sequence[str] | None = None,
    ) -> None:
        """Sharded-parallel counterpart of :meth:`FeatureStore.warm`.

        The preprocessing pass — the dominant cost — runs through the
        sharded engine; every downstream artifact is then materialised by
        the store's own warm-up, resolving the token artifacts as pure
        cache hits.
        """
        populated = [corpus for corpus in corpora if len(corpus) > 0]
        for config in pipeline_configs(specs):
            for corpus in populated:
                self.tokens(corpus, config)
        self.store.warm(
            corpora, specs, train_corpus=train_corpus, label_space=label_space
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def shard_stats(self) -> dict:
        """Hit/miss counters of the per-shard token artifacts."""
        return {
            "hits": self.store.hit_count(SHARD_KIND),
            "misses": self.store.miss_count(SHARD_KIND),
        }
