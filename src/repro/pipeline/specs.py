"""Feature specifications: what a model needs from the feature store.

A :class:`FeatureSpec` is a frozen, hashable description of the artifacts a
model consumes.  Two models declaring equal specs share every artifact — the
preprocessing run, the fitted vectorizer or vocabulary, and each transformed
corpus — which is what makes the two-phase model API
(:meth:`~repro.models.base.CuisineModel.fit_features`) compute-once.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence, Union

import numpy as np

from repro.text.pipeline import PipelineConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.features.tfidf import TfidfVectorizer
    from repro.text.sequences import EncodedBatch
    from repro.text.vocabulary import Vocabulary


@dataclass(frozen=True)
class TfidfSpec:
    """Artifacts of a TF-IDF (statistical) model.

    Attributes:
        pipeline: Preprocessing configuration (word-split for TF-IDF).
        ngram_range / min_df / max_df / max_features: Vocabulary construction
            of the underlying count vectorizer.
        sublinear_tf / smooth_idf / norm: TF-IDF weighting options.
    """

    pipeline: PipelineConfig = field(default_factory=lambda: PipelineConfig(split_items=True))
    ngram_range: tuple[int, int] = (1, 1)
    min_df: int = 2
    max_df: float = 1.0
    max_features: int | None = 20000
    sublinear_tf: bool = True
    smooth_idf: bool = True
    norm: str | None = "l2"

    def build_vectorizer(self) -> "TfidfVectorizer":
        """An unfitted vectorizer configured to this spec."""
        from repro.features.tfidf import TfidfVectorizer

        return TfidfVectorizer(
            ngram_range=self.ngram_range,
            min_df=self.min_df,
            max_df=self.max_df,
            max_features=self.max_features,
            sublinear_tf=self.sublinear_tf,
            smooth_idf=self.smooth_idf,
            norm=self.norm,
        )


@dataclass(frozen=True)
class SequenceSpec:
    """Artifacts of a sequential (LSTM / transformer) model.

    Attributes:
        pipeline: Preprocessing configuration (items kept whole).
        min_token_freq / max_vocab_size: Vocabulary construction.
        max_length: Padded/truncated sequence length.
        add_cls: Prepend a ``[CLS]`` token (transformers).
    """

    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    min_token_freq: int = 2
    max_vocab_size: int | None = 20000
    max_length: int = 48
    add_cls: bool = False


FeatureSpec = Union[TfidfSpec, SequenceSpec]


def pipeline_configs(specs: "Sequence[FeatureSpec] | Iterable[FeatureSpec]") -> set[PipelineConfig]:
    """The distinct preprocessing configurations declared by *specs*.

    Both the feature store's warm-up and the corpus engine iterate the
    preprocessing work per distinct config — models sharing a config share
    one pipeline pass.
    """
    return {spec.pipeline for spec in specs}


def spec_to_dict(spec: FeatureSpec) -> dict:
    """JSON-able representation of a feature spec (for bundle manifests)."""
    if not isinstance(spec, (TfidfSpec, SequenceSpec)):
        raise TypeError(f"unsupported feature spec {type(spec).__name__}")
    payload = dataclasses.asdict(spec)
    payload["kind"] = type(spec).__name__
    return payload


def spec_from_dict(payload: dict) -> FeatureSpec:
    """Inverse of :func:`spec_to_dict`."""
    payload = dict(payload)
    kind = payload.pop("kind")
    pipeline = PipelineConfig(**payload.pop("pipeline"))
    if kind == "TfidfSpec":
        payload["ngram_range"] = tuple(payload["ngram_range"])
        return TfidfSpec(pipeline=pipeline, **payload)
    if kind == "SequenceSpec":
        return SequenceSpec(pipeline=pipeline, **payload)
    raise ValueError(f"unknown feature spec kind {kind!r}")


@dataclass
class ModelInputs:
    """Precomputed artifacts handed to a model's two-phase methods.

    Attributes:
        features: The feature artifact — a CSR TF-IDF matrix for
            :class:`TfidfSpec`, an :class:`~repro.text.sequences.EncodedBatch`
            for :class:`SequenceSpec`.
        labels: Integer labels under the model's label space (``None`` for
            prediction-only inputs).
        vocabulary: The train-corpus vocabulary (sequence specs only).
        vectorizer: The fitted TF-IDF vectorizer (tfidf specs only).
    """

    features: Any
    labels: np.ndarray | None = None
    vocabulary: "Vocabulary | None" = None
    vectorizer: "TfidfVectorizer | None" = None

    def __len__(self) -> int:
        if hasattr(self.features, "shape"):
            return int(self.features.shape[0])
        return len(self.features)
