"""Stable content fingerprints for corpora and configurations.

The feature store keys every artifact by *what produced it*: the corpus
content, the preprocessing configuration and the vectorizer/vocabulary
configuration.  Fingerprints must therefore be deterministic across processes
(no ``id()``/``hash()`` randomisation) and sensitive to any change that could
alter the artifact — a shuffled sequence, a dropped cuisine, a different
``min_df`` all yield new fingerprints.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Sequence

from repro.data.recipedb import CorpusShard, RecipeDB


def _jsonable(value: Any) -> Any:
    """Reduce *value* to a JSON-serialisable structure, deterministically."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {
                f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in sorted(value.items())}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_jsonable(item) for item in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return items
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def stable_hash(value: Any, digest_size: int = 16) -> str:
    """Deterministic hex digest of an arbitrary (mostly-JSON-able) value.

    Dataclasses (e.g. :class:`~repro.text.pipeline.PipelineConfig`) are hashed
    field by field, so two equal configurations always collide and any changed
    field produces a new digest.
    """
    payload = json.dumps(_jsonable(value), sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=digest_size).hexdigest()


def corpus_fingerprint(corpus: RecipeDB | CorpusShard) -> str:
    """Content fingerprint of a corpus or corpus shard.

    Delegates to :meth:`RecipeDB.fingerprint` / :meth:`CorpusShard.fingerprint`;
    shard fingerprints are content-only, so equal shard content always shares
    an artifact regardless of which corpus the shard was cut from.
    """
    return corpus.fingerprint()


def artifact_key(*parts: Any) -> str:
    """Join fingerprint parts into one flat cache key."""
    resolved = [
        part if isinstance(part, str) else stable_hash(part) for part in parts
    ]
    return "-".join(resolved)


def sequence_key(sequence: Sequence[str], pipeline_config: Any) -> str:
    """Cache key of a single raw item sequence under a pipeline config.

    Shared by :meth:`~repro.pipeline.store.FeatureStore.sequence_tokens` and
    the corpus engine's serving warm-up, so a sequence featurized as part of
    a corpus shard and the same sequence arriving as a prediction request
    resolve to the same artifact.
    """
    return artifact_key(stable_hash(tuple(sequence)), pipeline_config)
