"""Stable content fingerprints for corpora and configurations.

The feature store keys every artifact by *what produced it*: the corpus
content, the preprocessing configuration and the vectorizer/vocabulary
configuration.  Fingerprints must therefore be deterministic across processes
(no ``id()``/``hash()`` randomisation) and sensitive to any change that could
alter the artifact — a shuffled sequence, a dropped cuisine, a different
``min_df`` all yield new fingerprints.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from repro.data.recipedb import RecipeDB


def _jsonable(value: Any) -> Any:
    """Reduce *value* to a JSON-serialisable structure, deterministically."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {
                f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in sorted(value.items())}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_jsonable(item) for item in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return items
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def stable_hash(value: Any, digest_size: int = 16) -> str:
    """Deterministic hex digest of an arbitrary (mostly-JSON-able) value.

    Dataclasses (e.g. :class:`~repro.text.pipeline.PipelineConfig`) are hashed
    field by field, so two equal configurations always collide and any changed
    field produces a new digest.
    """
    payload = json.dumps(_jsonable(value), sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=digest_size).hexdigest()


def corpus_fingerprint(corpus: RecipeDB) -> str:
    """Content fingerprint of a corpus (delegates to :meth:`RecipeDB.fingerprint`)."""
    return corpus.fingerprint()


def artifact_key(*parts: Any) -> str:
    """Join fingerprint parts into one flat cache key."""
    resolved = [
        part if isinstance(part, str) else stable_hash(part) for part in parts
    ]
    return "-".join(resolved)
