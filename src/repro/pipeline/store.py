"""Content-addressed feature store: compute every corpus artifact once.

Every preprocessing product — token sequences, document strings, fitted
TF-IDF vectorizers, vocabulary objects, transformed matrices, encoded
batches — is keyed by the fingerprints of the corpus and configuration that
produce it.  Repeated requests (from other models in the same experiment,
from ablation reruns, from benchmarks) hit the in-memory LRU layer or, when a
cache directory is configured, reload the artifact from disk instead of
re-running the pure-Python pipeline.

The store is thread-safe: the experiment runner trains independent models
concurrently and hands them all the same store.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import Counter, OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np
from scipy import sparse

from repro.data.recipedb import RecipeDB
from repro.features.tfidf import TfidfVectorizer
from repro.pipeline.fingerprint import artifact_key, sequence_key, stable_hash
from repro.pipeline.specs import (
    FeatureSpec,
    ModelInputs,
    SequenceSpec,
    TfidfSpec,
    pipeline_configs,
)
from repro.text.pipeline import PipelineConfig, PreprocessingPipeline
from repro.text.sequences import EncodedBatch, SequenceEncoder
from repro.text.vocabulary import Vocabulary


def atomic_replace(path: Path, write: Callable[[Path], None]) -> None:
    """Write through a sibling temp file + atomic rename.

    Concurrent processes may share a cache dir (or a bundle export dir); a
    reader that sees the file exist must never observe a half-written
    artifact.
    """
    handle, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    os.close(handle)
    tmp_path = Path(tmp_name)
    try:
        write(tmp_path)
        os.replace(tmp_path, path)
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise


def _save_json(path: Path, value: Any) -> None:
    atomic_replace(path, lambda tmp: tmp.write_text(json.dumps(value), encoding="utf-8"))


def _load_json(path: Path) -> Any:
    return json.loads(path.read_text(encoding="utf-8"))


def _save_csr(path: Path, matrix: sparse.csr_matrix) -> None:
    def write(tmp: Path) -> None:
        with open(tmp, "wb") as stream:
            np.savez_compressed(
                stream,
                data=matrix.data,
                indices=matrix.indices,
                indptr=matrix.indptr,
                shape=np.asarray(matrix.shape, dtype=np.int64),
            )

    atomic_replace(path, write)


def _load_csr(path: Path) -> sparse.csr_matrix:
    with np.load(path) as payload:
        return sparse.csr_matrix(
            (payload["data"], payload["indices"], payload["indptr"]),
            shape=tuple(payload["shape"]),
        )


def _jsonable_state(value: Any) -> Any:
    """Recursively convert an artifact-protocol state to pure-JSON values.

    Arrays become lists; JSON float round-trips are exact, so states restored
    with ``np.asarray`` reproduce the original arrays bitwise.
    """
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {key: _jsonable_state(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable_state(item) for item in value]
    if isinstance(value, np.generic):
        return value.item()
    return value


class FeatureStore:
    """Compute-once cache of corpus-derived artifacts.

    Args:
        cache_dir: Optional directory for on-disk persistence.  Token lists
            and documents are stored as JSON, TF-IDF matrices as ``.npz``;
            artifacts found on disk are loaded instead of recomputed (and
            still count as cache hits).
        max_entries: Bound on the in-memory LRU layer.  The least recently
            used artifact is evicted first; disk copies survive eviction.
    """

    def __init__(self, cache_dir: str | Path | None = None, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[str, str], Any] = OrderedDict()
        self._lock = threading.RLock()
        #: Per-key locks serialize concurrent materialization of the *same*
        #: artifact (so exactly one writer computes and persists it) while
        #: letting distinct artifacts compute in parallel — the global lock
        #: is only ever held for bookkeeping, never across a computation.
        #: Entries are refcounted ``[lock, holders]`` pairs: the mapping
        #: lives exactly as long as some thread holds or waits on the lock,
        #: so same-key threads always share one lock (even across LRU
        #: eviction of the entry) and the dict stays bounded by concurrency.
        self._key_locks: dict[tuple[str, str], list] = {}
        self.hits: Counter = Counter()
        self.disk_hits: Counter = Counter()
        self.misses: Counter = Counter()
        self._pipelines: dict[str, PreprocessingPipeline] = {}

    # ------------------------------------------------------------------
    # cache machinery
    # ------------------------------------------------------------------
    def _disk_path(self, kind: str, key: str, suffix: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{kind}-{key}{suffix}"

    def _memory_get(self, full_key: tuple[str, str]) -> tuple[bool, Any]:
        """(found, value) from the LRU layer, counting a hit when found."""
        with self._lock:
            if full_key in self._entries:
                self.hits[full_key[0]] += 1
                self._entries.move_to_end(full_key)
                return True, self._entries[full_key]
        return False, None

    def _memory_put(self, full_key: tuple[str, str], value: Any) -> None:
        with self._lock:
            self._entries[full_key] = value
            self._entries.move_to_end(full_key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    @contextmanager
    def _key_lock(self, full_key: tuple[str, str]):
        with self._lock:
            entry = self._key_locks.get(full_key)
            if entry is None:
                entry = [threading.RLock(), 0]
                self._key_locks[full_key] = entry
            entry[1] += 1
        try:
            with entry[0]:
                yield
        finally:
            with self._lock:
                entry[1] -= 1
                if entry[1] <= 0:
                    self._key_locks.pop(full_key, None)

    def _get_or_compute(
        self,
        kind: str,
        key: str,
        compute: Callable[[], Any],
        suffix: str | None = None,
        save: Callable[[Path, Any], None] | None = None,
        load: Callable[[Path], Any] | None = None,
    ) -> Any:
        full_key = (kind, key)
        found, value = self._memory_get(full_key)
        if found:
            return value
        with self._key_lock(full_key):
            # Re-check: another thread may have materialised the artifact
            # while this one waited on the key lock.
            found, value = self._memory_get(full_key)
            if found:
                return value
            path = self._disk_path(kind, key, suffix) if suffix else None
            if path is not None and load is not None and path.exists():
                value = load(path)
                with self._lock:
                    self.disk_hits[kind] += 1
            else:
                value = compute()
                with self._lock:
                    self.misses[kind] += 1
                if path is not None and save is not None:
                    save(path, value)
            self._memory_put(full_key, value)
            return value

    # ------------------------------------------------------------------
    # raw artifact access (the corpus engine's interface)
    # ------------------------------------------------------------------
    def lookup(
        self,
        kind: str,
        key: str,
        suffix: str | None = None,
        load: Callable[[Path], Any] | None = None,
    ) -> tuple[bool, Any]:
        """(found, value) for an artifact, without computing it.

        Checks the in-memory LRU first, then (when *suffix*/*load* are given
        and a cache directory is configured) the disk layer, promoting disk
        finds into memory.  Hits are counted; a miss counts nothing — the
        caller is expected to compute the artifact itself and record it via
        :meth:`insert`.
        """
        full_key = (kind, key)
        found, value = self._memory_get(full_key)
        if found:
            return True, value
        path = self._disk_path(kind, key, suffix) if suffix else None
        if path is not None and load is not None and path.exists():
            with self._key_lock(full_key):
                found, value = self._memory_get(full_key)
                if found:
                    return True, value
                value = load(path)
                with self._lock:
                    self.disk_hits[kind] += 1
                self._memory_put(full_key, value)
                return True, value
        return False, None

    def insert(
        self,
        kind: str,
        key: str,
        value: Any,
        suffix: str | None = None,
        save: Callable[[Path, Any], None] | None = None,
        count_miss: bool = True,
    ) -> Any:
        """Record an externally computed artifact.

        Counted as a miss by default (the artifact *was* computed, just not
        inside the store); pass ``count_miss=False`` for pure cache seeding
        (e.g. the serving layer republishing shard outputs under per-sequence
        keys).  Persists to disk when *suffix*/*save* are given.
        """
        full_key = (kind, key)
        with self._key_lock(full_key):
            if count_miss:
                with self._lock:
                    self.misses[kind] += 1
            path = self._disk_path(kind, key, suffix) if suffix else None
            if path is not None and save is not None:
                save(path, value)
            self._memory_put(full_key, value)
        return value

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Hit/miss counters and current residency, per artifact kind."""
        with self._lock:
            return {
                "hits": dict(self.hits),
                "disk_hits": dict(self.disk_hits),
                "misses": dict(self.misses),
                "entries": len(self._entries),
            }

    def hit_count(self, kind: str | None = None) -> int:
        """Total (memory + disk) hits, optionally for one artifact kind."""
        if kind is None:
            return sum(self.hits.values()) + sum(self.disk_hits.values())
        return self.hits[kind] + self.disk_hits[kind]

    def miss_count(self, kind: str | None = None) -> int:
        """Number of artifact computations, optionally for one kind."""
        if kind is None:
            return sum(self.misses.values())
        return self.misses[kind]

    def reset_stats(self) -> None:
        """Zero all counters (cached artifacts are kept)."""
        with self._lock:
            self.hits.clear()
            self.disk_hits.clear()
            self.misses.clear()

    def clear(self) -> None:
        """Drop every in-memory artifact (disk copies are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # preprocessing artifacts
    # ------------------------------------------------------------------
    def _pipeline_for(self, config: PipelineConfig) -> PreprocessingPipeline:
        key = stable_hash(config)
        pipeline = self._pipelines.get(key)
        if pipeline is None:
            with self._lock:
                pipeline = self._pipelines.setdefault(key, PreprocessingPipeline(config))
        return pipeline

    def tokens(self, corpus: RecipeDB, pipeline_config: PipelineConfig) -> list[list[str]]:
        """Preprocessed token sequences of *corpus* under *pipeline_config*."""
        key = artifact_key(corpus.fingerprint(), pipeline_config)
        return self._get_or_compute(
            "tokens",
            key,
            lambda: self._pipeline_for(pipeline_config).process_corpus(corpus),
            suffix=".json",
            save=_save_json,
            load=_load_json,
        )

    def sequence_tokens(
        self, sequence: Sequence[str], pipeline_config: PipelineConfig
    ) -> list[str]:
        """Preprocessed tokens of a single raw item sequence (no corpus).

        Keyed by the sequence content alone, so the serving layer reuses
        preprocessing across arbitrary request-batch compositions: a sequence
        seen in any earlier batch (or via :meth:`~FeatureStore.sequence_tokens`
        warm-up) is a pure cache hit regardless of which model or batch asks.
        """
        key = sequence_key(sequence, pipeline_config)
        return self._get_or_compute(
            "sequence_tokens",
            key,
            lambda: self._pipeline_for(pipeline_config).process_sequence(list(sequence)),
            suffix=".json",
            save=_save_json,
            load=_load_json,
        )

    def documents(self, corpus: RecipeDB, pipeline_config: PipelineConfig) -> list[str]:
        """Whitespace-joined document strings (the TF-IDF input form)."""
        key = artifact_key(corpus.fingerprint(), pipeline_config)
        return self._get_or_compute(
            "documents",
            key,
            lambda: [" ".join(tokens) for tokens in self.tokens(corpus, pipeline_config)],
            suffix=".json",
            save=_save_json,
            load=_load_json,
        )

    def labels(self, corpus: RecipeDB, label_space: Sequence[str]) -> np.ndarray:
        """Integer labels of *corpus* under *label_space*."""
        key = artifact_key(corpus.fingerprint(), tuple(label_space))
        return self._get_or_compute(
            "labels",
            key,
            lambda: np.asarray(corpus.labels(tuple(label_space)), dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # TF-IDF artifacts
    # ------------------------------------------------------------------
    def tfidf_vectorizer(self, train_corpus: RecipeDB, spec: TfidfSpec):
        """The TF-IDF vectorizer of *spec*, fitted on *train_corpus* once.

        Fitted vectorizers persist to the disk cache (as JSON artifact-protocol
        state) like every other artifact, so a warm ``cache_dir`` restores them
        across processes without re-fitting.
        """
        key = artifact_key(train_corpus.fingerprint(), spec)

        def fit() -> Any:
            vectorizer = spec.build_vectorizer()
            vectorizer.fit(self.documents(train_corpus, spec.pipeline))
            return vectorizer

        return self._get_or_compute(
            "tfidf_vectorizer",
            key,
            fit,
            suffix=".json",
            save=lambda path, vectorizer: _save_json(path, _jsonable_state(vectorizer.get_state())),
            load=lambda path: TfidfVectorizer.from_state(_load_json(path)),
        )

    def tfidf_matrix(
        self, corpus: RecipeDB, spec: TfidfSpec, train_corpus: RecipeDB | None = None
    ) -> sparse.csr_matrix:
        """TF-IDF matrix of *corpus* under the vectorizer fitted on *train_corpus*."""
        train_corpus = train_corpus if train_corpus is not None else corpus
        key = artifact_key(corpus.fingerprint(), train_corpus.fingerprint(), spec)
        return self._get_or_compute(
            "tfidf_matrix",
            key,
            lambda: self.tfidf_vectorizer(train_corpus, spec).transform(
                self.documents(corpus, spec.pipeline)
            ),
            suffix=".npz",
            save=_save_csr,
            load=_load_csr,
        )

    # ------------------------------------------------------------------
    # sequence artifacts
    # ------------------------------------------------------------------
    def vocabulary(self, train_corpus: RecipeDB, spec: SequenceSpec) -> Vocabulary:
        """Token vocabulary of *spec* built from *train_corpus* once.

        Keyed on the vocabulary-relevant parts of the spec only, so models
        that differ just in ``max_length``/``add_cls`` still share it.
        """
        key = artifact_key(
            train_corpus.fingerprint(),
            (spec.pipeline, spec.min_token_freq, spec.max_vocab_size),
        )
        return self._get_or_compute(
            "vocabulary",
            key,
            lambda: Vocabulary.build(
                self.tokens(train_corpus, spec.pipeline),
                min_freq=spec.min_token_freq,
                max_size=spec.max_vocab_size,
            ),
            suffix=".json",
            save=lambda path, vocabulary: _save_json(path, vocabulary.get_state()),
            load=lambda path: Vocabulary.from_state(_load_json(path)),
        )

    def encoded_batch(
        self, corpus: RecipeDB, spec: SequenceSpec, train_corpus: RecipeDB | None = None
    ) -> EncodedBatch:
        """Padded id/mask batch of *corpus* under the *train_corpus* vocabulary."""
        train_corpus = train_corpus if train_corpus is not None else corpus
        key = artifact_key(corpus.fingerprint(), train_corpus.fingerprint(), spec)

        def encode() -> EncodedBatch:
            encoder = SequenceEncoder(
                self.vocabulary(train_corpus, spec),
                max_length=spec.max_length,
                add_cls=spec.add_cls,
            )
            return encoder.encode(self.tokens(corpus, spec.pipeline))

        return self._get_or_compute("encoded", key, encode)

    # ------------------------------------------------------------------
    # model-facing dispatch
    # ------------------------------------------------------------------
    def model_inputs(
        self,
        spec: FeatureSpec,
        corpus: RecipeDB,
        train_corpus: RecipeDB | None = None,
        label_space: Sequence[str] | None = None,
        with_labels: bool = True,
    ) -> ModelInputs:
        """Resolve *spec* into the artifacts a model's two-phase API consumes."""
        train_corpus = train_corpus if train_corpus is not None else corpus
        labels = None
        if with_labels:
            if label_space is None:
                raise ValueError("label_space is required when with_labels is true")
            labels = self.labels(corpus, label_space)
        if isinstance(spec, TfidfSpec):
            return ModelInputs(
                features=self.tfidf_matrix(corpus, spec, train_corpus),
                labels=labels,
                vectorizer=self.tfidf_vectorizer(train_corpus, spec),
            )
        if isinstance(spec, SequenceSpec):
            return ModelInputs(
                features=self.encoded_batch(corpus, spec, train_corpus),
                labels=labels,
                vocabulary=self.vocabulary(train_corpus, spec),
            )
        raise TypeError(f"unsupported feature spec {type(spec).__name__}")

    def warm(
        self,
        corpora: Sequence[RecipeDB],
        specs: Sequence[FeatureSpec],
        train_corpus: RecipeDB | None = None,
        label_space: Sequence[str] | None = None,
    ) -> None:
        """Precompute every artifact for *corpora* under *specs*.

        Called by the experiment runner before spawning worker threads: the
        pure-Python pipeline runs exactly once per (corpus, pipeline
        configuration) pair and, when *train_corpus* is given, every
        downstream artifact (fitted vectorizers/vocabularies, transformed
        matrices, encoded batches, labels when *label_space* is given) is
        materialised too — the concurrent training phase then resolves
        artifacts as pure cache hits instead of contending on the store lock.
        """
        populated = [corpus for corpus in corpora if len(corpus) > 0]
        for config in pipeline_configs(specs):
            for corpus in populated:
                self.tokens(corpus, config)
        if train_corpus is None:
            return
        for spec in specs:
            for corpus in populated:
                self.model_inputs(
                    spec,
                    corpus,
                    train_corpus=train_corpus,
                    label_space=label_space,
                    with_labels=label_space is not None,
                )
