"""Shared feature pipeline: content-addressed, compute-once corpus artifacts.

The subsystem has four parts:

* :mod:`repro.pipeline.fingerprint` — stable content hashes for corpora,
  shards and configurations (the cache keys);
* :mod:`repro.pipeline.specs` — :class:`FeatureSpec` declarations a model
  publishes to describe what it consumes, and the :class:`ModelInputs`
  bundles it receives back;
* :mod:`repro.pipeline.store` — the :class:`FeatureStore` that materialises
  each (corpus, pipeline config, vectorizer/vocabulary config) artifact
  exactly once, with an in-memory LRU layer and optional disk persistence;
* :mod:`repro.pipeline.engine` — the :class:`CorpusEngine` that executes the
  preprocessing stage chain over content-fingerprinted corpus shards,
  process-parallel and incrementally (only shards whose fingerprints changed
  are recomputed).
"""

from repro.pipeline.engine import CorpusEngine, EngineConfig
from repro.pipeline.fingerprint import (
    artifact_key,
    corpus_fingerprint,
    sequence_key,
    stable_hash,
)
from repro.pipeline.specs import (
    FeatureSpec,
    ModelInputs,
    SequenceSpec,
    TfidfSpec,
    pipeline_configs,
)
from repro.pipeline.store import FeatureStore

__all__ = [
    "CorpusEngine",
    "EngineConfig",
    "FeatureSpec",
    "FeatureStore",
    "ModelInputs",
    "SequenceSpec",
    "TfidfSpec",
    "artifact_key",
    "corpus_fingerprint",
    "pipeline_configs",
    "sequence_key",
    "stable_hash",
]
