"""Shared feature pipeline: content-addressed, compute-once corpus artifacts.

The subsystem has three parts:

* :mod:`repro.pipeline.fingerprint` — stable content hashes for corpora and
  configurations (the cache keys);
* :mod:`repro.pipeline.specs` — :class:`FeatureSpec` declarations a model
  publishes to describe what it consumes, and the :class:`ModelInputs`
  bundles it receives back;
* :mod:`repro.pipeline.store` — the :class:`FeatureStore` that materialises
  each (corpus, pipeline config, vectorizer/vocabulary config) artifact
  exactly once, with an in-memory LRU layer and optional disk persistence.
"""

from repro.pipeline.fingerprint import artifact_key, corpus_fingerprint, stable_hash
from repro.pipeline.specs import FeatureSpec, ModelInputs, SequenceSpec, TfidfSpec
from repro.pipeline.store import FeatureStore

__all__ = [
    "FeatureSpec",
    "FeatureStore",
    "ModelInputs",
    "SequenceSpec",
    "TfidfSpec",
    "artifact_key",
    "corpus_fingerprint",
    "stable_hash",
]
