"""Feature extraction substrate.

Implements the two vectorization strategies of Section IV of the paper:

* TF-IDF vectorization (plus plain counts and feature hashing) for the
  statistical models, producing ``scipy.sparse`` CSR matrices;
* word embeddings, trained with a from-scratch skip-gram word2vec with
  negative sampling, for initializing the sequential models.
"""

from repro.features.counts import CountVectorizer
from repro.features.embeddings import SkipGramConfig, SkipGramEmbeddings
from repro.features.hashing import HashingVectorizer
from repro.features.tfidf import TfidfVectorizer

__all__ = [
    "CountVectorizer",
    "TfidfVectorizer",
    "HashingVectorizer",
    "SkipGramConfig",
    "SkipGramEmbeddings",
]
