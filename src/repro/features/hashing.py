"""Feature hashing vectorizer.

A stateless alternative to :class:`~repro.features.counts.CountVectorizer`
that maps tokens into a fixed number of buckets with a signed hash.  Useful
for memory-bounded experiments at full RecipeDB scale where the 20k-term
vocabulary plus n-grams would be expensive to materialize.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np
from scipy import sparse


def _stable_hash(term: str) -> int:
    """Deterministic 64-bit hash of *term* (Python's ``hash`` is salted per run)."""
    digest = hashlib.blake2b(term.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashingVectorizer:
    """Convert documents to a fixed-width sparse matrix using the hashing trick."""

    def __init__(
        self,
        n_features: int = 4096,
        ngram_range: tuple[int, int] = (1, 1),
        alternate_sign: bool = True,
        binary: bool = False,
    ) -> None:
        if n_features < 1:
            raise ValueError("n_features must be positive")
        if ngram_range[0] < 1 or ngram_range[1] < ngram_range[0]:
            raise ValueError(f"invalid ngram_range {ngram_range}")
        self.n_features = n_features
        self.ngram_range = ngram_range
        self.alternate_sign = alternate_sign
        self.binary = binary

    def _analyze(self, document: str | Sequence[str]) -> list[str]:
        tokens = document.split() if isinstance(document, str) else list(document)
        lo, hi = self.ngram_range
        if lo == 1 and hi == 1:
            return tokens
        features: list[str] = []
        for n in range(lo, hi + 1):
            if n == 1:
                features.extend(tokens)
            else:
                features.extend(
                    " ".join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)
                )
        return features

    def transform(self, documents: Iterable[str | Sequence[str]]) -> sparse.csr_matrix:
        """Vectorize *documents*; no fitting is required."""
        indptr = [0]
        indices: list[int] = []
        data: list[float] = []
        for document in documents:
            row: dict[int, float] = {}
            for feature in self._analyze(document):
                h = _stable_hash(feature)
                bucket = h % self.n_features
                sign = 1.0
                if self.alternate_sign and (h >> 63) & 1:
                    sign = -1.0
                row[bucket] = row.get(bucket, 0.0) + sign
            for bucket, value in sorted(row.items()):
                if value == 0.0:
                    continue
                indices.append(bucket)
                data.append(np.sign(value) if self.binary else value)
            indptr.append(len(indices))
        return sparse.csr_matrix(
            (data, indices, indptr),
            shape=(len(indptr) - 1, self.n_features),
            dtype=np.float64,
        )

    # fit/fit_transform provided for interface parity with the other vectorizers.
    def fit(self, documents: Iterable[str | Sequence[str]]) -> "HashingVectorizer":
        """No-op; the hashing vectorizer is stateless."""
        return self

    def fit_transform(self, documents: Iterable[str | Sequence[str]]) -> sparse.csr_matrix:
        """Equivalent to :meth:`transform`."""
        return self.transform(documents)
