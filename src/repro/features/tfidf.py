"""TF-IDF vectorization (Section IV of the paper).

The paper uses TF-IDF "because of its weighted function which reduces the
effect of high frequency yet less meaningful words" — exactly the situation in
RecipeDB where ``add`` occurs 188,004 times.  The implementation mirrors
scikit-learn's smoothed idf with L2 normalisation:

    idf(t) = ln((1 + n) / (1 + df(t))) + 1
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
from scipy import sparse

from repro.features.counts import CountVectorizer


class TfidfVectorizer:
    """Convert documents to L2-normalised TF-IDF vectors."""

    def __init__(
        self,
        ngram_range: tuple[int, int] = (1, 1),
        min_df: int = 1,
        max_df: float = 1.0,
        max_features: int | None = None,
        sublinear_tf: bool = False,
        smooth_idf: bool = True,
        norm: str | None = "l2",
    ) -> None:
        if norm not in (None, "l1", "l2"):
            raise ValueError(f"norm must be None, 'l1' or 'l2', got {norm!r}")
        self._counter = CountVectorizer(
            ngram_range=ngram_range,
            min_df=min_df,
            max_df=max_df,
            max_features=max_features,
        )
        self.sublinear_tf = sublinear_tf
        self.smooth_idf = smooth_idf
        self.norm = norm
        self.idf_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, documents: Iterable[str | Sequence[str]]) -> "TfidfVectorizer":
        """Learn vocabulary and idf weights from *documents*."""
        documents = list(documents)
        counts = self._counter.fit_transform(documents)
        self._fit_idf(counts)
        return self

    def _fit_idf(self, counts: sparse.csr_matrix) -> None:
        n_docs = counts.shape[0]
        df = np.asarray((counts > 0).sum(axis=0)).ravel().astype(np.float64)
        if self.smooth_idf:
            idf = np.log((1.0 + n_docs) / (1.0 + df)) + 1.0
        else:
            with np.errstate(divide="ignore"):
                idf = np.log(n_docs / np.maximum(df, 1.0)) + 1.0
        self.idf_ = idf

    def transform(self, documents: Iterable[str | Sequence[str]]) -> sparse.csr_matrix:
        """Vectorize *documents* into TF-IDF space."""
        if self.idf_ is None:
            raise RuntimeError("vectorizer is not fitted; call fit() first")
        counts = self._counter.transform(documents).astype(np.float64)
        if self.sublinear_tf:
            counts.data = 1.0 + np.log(counts.data)
        tfidf = counts.multiply(sparse.csr_matrix(self.idf_)).tocsr()
        return self._normalize(tfidf)

    def fit_transform(self, documents: Iterable[str | Sequence[str]]) -> sparse.csr_matrix:
        """Fit and transform in one pass over *documents*."""
        documents = list(documents)
        counts = self._counter.fit_transform(documents).astype(np.float64)
        self._fit_idf(counts)
        if self.sublinear_tf:
            counts.data = 1.0 + np.log(counts.data)
        tfidf = counts.multiply(sparse.csr_matrix(self.idf_)).tocsr()
        return self._normalize(tfidf)

    # ------------------------------------------------------------------
    def _normalize(self, matrix: sparse.csr_matrix) -> sparse.csr_matrix:
        if self.norm is None:
            return matrix
        if self.norm == "l2":
            norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1)).ravel())
        else:
            norms = np.asarray(np.abs(matrix).sum(axis=1)).ravel()
        norms[norms == 0.0] = 1.0
        inverse = sparse.diags(1.0 / norms)
        return (inverse @ matrix).tocsr()

    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Fitted vocabulary and idf weights (artifact protocol).

        ``idf_`` is returned as a NumPy array; persist it through JSON (where
        floats round-trip exactly) or ``.npz`` as the caller prefers —
        :meth:`from_state` accepts both forms.
        """
        if self.idf_ is None:
            raise RuntimeError("vectorizer is not fitted; call fit() first")
        return {
            "counter": self._counter.get_state(),
            "sublinear_tf": self.sublinear_tf,
            "smooth_idf": self.smooth_idf,
            "norm": self.norm,
            "idf": np.asarray(self.idf_, dtype=np.float64),
        }

    @classmethod
    def from_state(cls, state: dict) -> "TfidfVectorizer":
        """Rebuild a fitted vectorizer from :meth:`get_state`."""
        counter_state = state["counter"]
        vectorizer = cls(
            ngram_range=tuple(counter_state["ngram_range"]),
            min_df=counter_state["min_df"],
            max_df=counter_state["max_df"],
            max_features=counter_state["max_features"],
            sublinear_tf=state["sublinear_tf"],
            smooth_idf=state["smooth_idf"],
            norm=state["norm"],
        )
        vectorizer._counter = CountVectorizer.from_state(counter_state)
        vectorizer.idf_ = np.asarray(state["idf"], dtype=np.float64)
        return vectorizer

    # ------------------------------------------------------------------
    def get_feature_names(self) -> list[str]:
        """Feature names in column order."""
        return self._counter.get_feature_names()

    @property
    def vocabulary_(self) -> dict[str, int]:
        """Learned term -> column index mapping."""
        return self._counter.vocabulary_

    @property
    def n_features(self) -> int:
        """Number of learned features."""
        return self._counter.n_features
