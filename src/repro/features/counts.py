"""Bag-of-words count vectorizer producing scipy CSR matrices.

The statistical baselines of the paper consume vectorized recipe documents.
This vectorizer mirrors the semantics of scikit-learn's ``CountVectorizer``
restricted to what the experiments need: whitespace-token documents (the
preprocessing pipeline already did the real tokenization), optional n-grams,
document-frequency pruning and a vocabulary cap.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np
from scipy import sparse


class CountVectorizer:
    """Convert documents to a sparse matrix of token counts."""

    def __init__(
        self,
        ngram_range: tuple[int, int] = (1, 1),
        min_df: int = 1,
        max_df: float = 1.0,
        max_features: int | None = None,
        binary: bool = False,
    ) -> None:
        if ngram_range[0] < 1 or ngram_range[1] < ngram_range[0]:
            raise ValueError(f"invalid ngram_range {ngram_range}")
        if min_df < 1:
            raise ValueError("min_df must be >= 1 (absolute document count)")
        if not 0.0 < max_df <= 1.0:
            raise ValueError("max_df must be in (0, 1]")
        self.ngram_range = ngram_range
        self.min_df = min_df
        self.max_df = max_df
        self.max_features = max_features
        self.binary = binary
        self.vocabulary_: dict[str, int] = {}

    # ------------------------------------------------------------------
    def _analyze(self, document: str | Sequence[str]) -> list[str]:
        """Turn a document into the n-gram feature list."""
        tokens = document.split() if isinstance(document, str) else list(document)
        lo, hi = self.ngram_range
        if lo == 1 and hi == 1:
            return tokens
        features: list[str] = []
        for n in range(lo, hi + 1):
            if n == 1:
                features.extend(tokens)
            else:
                features.extend(
                    " ".join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)
                )
        return features

    # ------------------------------------------------------------------
    def fit(self, documents: Iterable[str | Sequence[str]]) -> "CountVectorizer":
        """Learn the vocabulary from *documents*."""
        documents = list(documents)
        if not documents:
            raise ValueError("cannot fit a vectorizer on an empty document collection")
        doc_freq: Counter = Counter()
        total_freq: Counter = Counter()
        for document in documents:
            features = self._analyze(document)
            total_freq.update(features)
            doc_freq.update(set(features))
        n_docs = len(documents)
        max_doc_count = self.max_df * n_docs
        eligible = [
            term
            for term, df in doc_freq.items()
            if df >= self.min_df and df <= max_doc_count
        ]
        eligible.sort(key=lambda term: (-total_freq[term], term))
        if self.max_features is not None:
            eligible = eligible[: self.max_features]
        self.vocabulary_ = {term: idx for idx, term in enumerate(sorted(eligible))}
        if not self.vocabulary_:
            raise ValueError("pruning removed every feature; relax min_df/max_df")
        return self

    def transform(self, documents: Iterable[str | Sequence[str]]) -> sparse.csr_matrix:
        """Vectorize *documents* using the learned vocabulary."""
        if not self.vocabulary_:
            raise RuntimeError("vectorizer is not fitted; call fit() first")
        indptr = [0]
        indices: list[int] = []
        data: list[float] = []
        for document in documents:
            counts: Counter = Counter()
            for feature in self._analyze(document):
                idx = self.vocabulary_.get(feature)
                if idx is not None:
                    counts[idx] += 1
            for idx, count in sorted(counts.items()):
                indices.append(idx)
                data.append(1.0 if self.binary else float(count))
            indptr.append(len(indices))
        matrix = sparse.csr_matrix(
            (data, indices, indptr),
            shape=(len(indptr) - 1, len(self.vocabulary_)),
            dtype=np.float64,
        )
        return matrix

    def fit_transform(self, documents: Iterable[str | Sequence[str]]) -> sparse.csr_matrix:
        """Fit on *documents* and return their vectorization."""
        documents = list(documents)
        self.fit(documents)
        return self.transform(documents)

    # ------------------------------------------------------------------
    def get_feature_names(self) -> list[str]:
        """Feature names in column order."""
        return [term for term, _ in sorted(self.vocabulary_.items(), key=lambda kv: kv[1])]

    @property
    def n_features(self) -> int:
        """Number of learned features."""
        return len(self.vocabulary_)
