"""Bag-of-words count vectorizer producing scipy CSR matrices.

The statistical baselines of the paper consume vectorized recipe documents.
This vectorizer mirrors the semantics of scikit-learn's ``CountVectorizer``
restricted to what the experiments need: whitespace-token documents (the
preprocessing pipeline already did the real tokenization), optional n-grams,
document-frequency pruning and a vocabulary cap.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np
from scipy import sparse


def ngram_features(
    document: str | Sequence[str], ngram_range: tuple[int, int]
) -> list[str]:
    """Turn a document into its n-gram feature list.

    Shared analyzer of :class:`CountVectorizer` and
    :class:`~repro.features.tfidf.TfidfVectorizer`: a document is either a
    whitespace-joined string or an already-tokenized sequence; n-grams join
    consecutive tokens with single spaces.
    """
    tokens = document.split() if isinstance(document, str) else list(document)
    lo, hi = ngram_range
    if lo == 1 and hi == 1:
        return tokens
    features: list[str] = []
    for n in range(lo, hi + 1):
        if n == 1:
            features.extend(tokens)
        else:
            features.extend(
                " ".join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)
            )
    return features


class CountVectorizer:
    """Convert documents to a sparse matrix of token counts."""

    def __init__(
        self,
        ngram_range: tuple[int, int] = (1, 1),
        min_df: int = 1,
        max_df: float = 1.0,
        max_features: int | None = None,
        binary: bool = False,
    ) -> None:
        if ngram_range[0] < 1 or ngram_range[1] < ngram_range[0]:
            raise ValueError(f"invalid ngram_range {ngram_range}")
        if min_df < 1:
            raise ValueError("min_df must be >= 1 (absolute document count)")
        if not 0.0 < max_df <= 1.0:
            raise ValueError("max_df must be in (0, 1]")
        self.ngram_range = ngram_range
        self.min_df = min_df
        self.max_df = max_df
        self.max_features = max_features
        self.binary = binary
        self.vocabulary_: dict[str, int] = {}

    # ------------------------------------------------------------------
    def _analyze(self, document: str | Sequence[str]) -> list[str]:
        """Turn a document into the n-gram feature list."""
        return ngram_features(document, self.ngram_range)

    # ------------------------------------------------------------------
    def fit(self, documents: Iterable[str | Sequence[str]]) -> "CountVectorizer":
        """Learn the vocabulary from *documents*."""
        documents = list(documents)
        if not documents:
            raise ValueError("cannot fit a vectorizer on an empty document collection")
        doc_freq: Counter = Counter()
        total_freq: Counter = Counter()
        for document in documents:
            features = self._analyze(document)
            total_freq.update(features)
            doc_freq.update(set(features))
        n_docs = len(documents)
        max_doc_count = self.max_df * n_docs
        eligible = [
            term
            for term, df in doc_freq.items()
            if df >= self.min_df and df <= max_doc_count
        ]
        eligible.sort(key=lambda term: (-total_freq[term], term))
        if self.max_features is not None:
            eligible = eligible[: self.max_features]
        self.vocabulary_ = {term: idx for idx, term in enumerate(sorted(eligible))}
        if not self.vocabulary_:
            raise ValueError("pruning removed every feature; relax min_df/max_df")
        return self

    def transform(self, documents: Iterable[str | Sequence[str]]) -> sparse.csr_matrix:
        """Vectorize *documents* using the learned vocabulary.

        The CSR arrays are assembled with NumPy: token occurrences become one
        flat column-index array, duplicates within a document are merged by a
        single ``np.unique`` over ``row * n_features + column`` keys (which
        also yields CSR-sorted order), and the row pointer comes from
        ``np.bincount`` — no per-document ``Counter``/``sorted`` passes.
        """
        if not self.vocabulary_:
            raise RuntimeError("vectorizer is not fitted; call fit() first")
        vocabulary_get = self.vocabulary_.get
        n_features = len(self.vocabulary_)
        column_chunks: list[list[int]] = []
        for document in documents:
            column_chunks.append(
                [
                    idx
                    for idx in map(vocabulary_get, self._analyze(document))
                    if idx is not None
                ]
            )
        n_docs = len(column_chunks)
        occurrence_rows = np.repeat(
            np.arange(n_docs, dtype=np.int64),
            [len(chunk) for chunk in column_chunks],
        )
        occurrence_columns = np.asarray(
            [idx for chunk in column_chunks for idx in chunk], dtype=np.int64
        )
        # One key per occurrence; np.unique merges duplicates, counts them,
        # and returns keys sorted — exactly the canonical CSR layout.
        keys, counts = np.unique(
            occurrence_rows * n_features + occurrence_columns, return_counts=True
        )
        rows = keys // n_features
        indices = keys % n_features
        data = (
            np.ones(len(keys), dtype=np.float64)
            if self.binary
            else counts.astype(np.float64)
        )
        indptr = np.zeros(n_docs + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n_docs), out=indptr[1:])
        return sparse.csr_matrix(
            (data, indices, indptr), shape=(n_docs, n_features), dtype=np.float64
        )

    def fit_transform(self, documents: Iterable[str | Sequence[str]]) -> sparse.csr_matrix:
        """Fit on *documents* and return their vectorization."""
        documents = list(documents)
        self.fit(documents)
        return self.transform(documents)

    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Fitted vocabulary plus configuration, JSON-able (artifact protocol)."""
        if not self.vocabulary_:
            raise RuntimeError("vectorizer is not fitted; call fit() first")
        return {
            "ngram_range": list(self.ngram_range),
            "min_df": self.min_df,
            "max_df": self.max_df,
            "max_features": self.max_features,
            "binary": self.binary,
            "feature_names": self.get_feature_names(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "CountVectorizer":
        """Rebuild a fitted vectorizer from :meth:`get_state`."""
        vectorizer = cls(
            ngram_range=tuple(state["ngram_range"]),
            min_df=state["min_df"],
            max_df=state["max_df"],
            max_features=state["max_features"],
            binary=state["binary"],
        )
        vectorizer.vocabulary_ = {
            term: index for index, term in enumerate(state["feature_names"])
        }
        return vectorizer

    # ------------------------------------------------------------------
    def get_feature_names(self) -> list[str]:
        """Feature names in column order."""
        return [term for term, _ in sorted(self.vocabulary_.items(), key=lambda kv: kv[1])]

    @property
    def n_features(self) -> int:
        """Number of learned features."""
        return len(self.vocabulary_)
