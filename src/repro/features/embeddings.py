"""Skip-gram word2vec embeddings with negative sampling.

Section IV of the paper contrasts TF-IDF with word embeddings ("word
representation as vectors such that semantically similar words have similar
vectors").  The sequential models can be initialized from embeddings trained
on the recipe corpus itself; this module provides that training from scratch
on NumPy (no gensim available offline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.text.vocabulary import Vocabulary


@dataclass(frozen=True)
class SkipGramConfig:
    """Hyper-parameters of the skip-gram trainer.

    Attributes:
        dim: Embedding dimensionality.
        window: Context window radius.
        negatives: Negative samples per positive pair.
        epochs: Passes over the corpus.
        learning_rate: Initial SGD learning rate (linearly decayed).
        min_learning_rate: Floor of the decay schedule.
        subsample_threshold: Frequent-word subsampling threshold (0 disables).
        seed: PRNG seed.
    """

    dim: int = 32
    window: int = 3
    negatives: int = 5
    epochs: int = 2
    learning_rate: float = 0.05
    min_learning_rate: float = 1e-4
    subsample_threshold: float = 1e-3
    seed: int = 11


class SkipGramEmbeddings:
    """Skip-gram with negative sampling trained on tokenized documents."""

    def __init__(self, vocabulary: Vocabulary, config: SkipGramConfig | None = None) -> None:
        self.vocabulary = vocabulary
        self.config = config or SkipGramConfig()
        rng = np.random.default_rng(self.config.seed)
        n, d = len(vocabulary), self.config.dim
        self.input_vectors = (rng.random((n, d)) - 0.5) / d
        self.output_vectors = np.zeros((n, d))
        self._rng = rng
        self._trained = False

    # ------------------------------------------------------------------
    def train(self, documents: Sequence[Sequence[str]]) -> "SkipGramEmbeddings":
        """Train the embeddings on tokenized *documents*."""
        cfg = self.config
        encoded = [self.vocabulary.encode(tokens) for tokens in documents if tokens]
        if not encoded:
            raise ValueError("cannot train embeddings on an empty corpus")

        counts = np.zeros(len(self.vocabulary), dtype=np.float64)
        for ids in encoded:
            for token_id in ids:
                counts[token_id] += 1
        total = counts.sum()

        # Negative-sampling distribution: unigram^0.75, excluding specials.
        noise = counts ** 0.75
        noise[list(self.vocabulary.special_ids)] = 0.0
        if noise.sum() == 0:
            raise ValueError("no regular tokens to train on")
        noise /= noise.sum()

        # Frequent-word subsampling keep-probabilities.
        keep = np.ones_like(counts)
        if cfg.subsample_threshold > 0:
            freq = counts / max(total, 1.0)
            with np.errstate(divide="ignore", invalid="ignore"):
                keep = np.sqrt(cfg.subsample_threshold / np.maximum(freq, 1e-12))
            keep = np.clip(keep, 0.0, 1.0)

        pairs = self._build_pairs(encoded, keep)
        if pairs.shape[0] == 0:
            raise ValueError("no training pairs were produced; corpus too small")

        n_pairs = pairs.shape[0]
        total_steps = cfg.epochs * n_pairs
        step = 0
        for _ in range(cfg.epochs):
            order = self._rng.permutation(n_pairs)
            for idx in order:
                center, context = pairs[idx]
                lr = max(
                    cfg.min_learning_rate,
                    cfg.learning_rate * (1.0 - step / max(total_steps, 1)),
                )
                self._train_pair(int(center), int(context), noise, lr)
                step += 1
        self._trained = True
        return self

    def _build_pairs(
        self, encoded: list[list[int]], keep: np.ndarray
    ) -> np.ndarray:
        cfg = self.config
        pairs: list[tuple[int, int]] = []
        special = set(self.vocabulary.special_ids)
        for ids in encoded:
            kept = [
                token_id
                for token_id in ids
                if token_id not in special and self._rng.random() < keep[token_id]
            ]
            for i, center in enumerate(kept):
                window = int(self._rng.integers(1, cfg.window + 1))
                lo = max(0, i - window)
                hi = min(len(kept), i + window + 1)
                for j in range(lo, hi):
                    if j != i:
                        pairs.append((center, kept[j]))
        return np.asarray(pairs, dtype=np.int64).reshape(-1, 2)

    def _train_pair(self, center: int, context: int, noise: np.ndarray, lr: float) -> None:
        cfg = self.config
        v = self.input_vectors[center]
        grad_v = np.zeros_like(v)
        targets = [context] + list(
            self._rng.choice(len(noise), size=cfg.negatives, p=noise)
        )
        labels = [1.0] + [0.0] * cfg.negatives
        for target, label in zip(targets, labels):
            u = self.output_vectors[target]
            score = 1.0 / (1.0 + np.exp(-np.clip(v @ u, -30.0, 30.0)))
            gradient = (score - label) * lr
            grad_v += gradient * u
            self.output_vectors[target] -= gradient * v
        self.input_vectors[center] -= grad_v

    # ------------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """The trained embedding matrix, shape (vocab, dim)."""
        return self.input_vectors

    def vector(self, token: str) -> np.ndarray:
        """Embedding of *token* (UNK vector if out of vocabulary)."""
        return self.input_vectors[self.vocabulary.token_to_id(token)]

    def similarity(self, token_a: str, token_b: str) -> float:
        """Cosine similarity between two token embeddings."""
        a = self.vector(token_a)
        b = self.vector(token_b)
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        if denom == 0:
            return 0.0
        return float(a @ b / denom)

    def most_similar(self, token: str, top_k: int = 10) -> list[tuple[str, float]]:
        """Tokens most similar to *token* by cosine similarity."""
        query = self.vector(token)
        norms = np.linalg.norm(self.input_vectors, axis=1) * np.linalg.norm(query)
        norms[norms == 0.0] = 1e-12
        scores = self.input_vectors @ query / norms
        query_id = self.vocabulary.token_to_id(token)
        order = np.argsort(scores)[::-1]
        results = []
        for idx in order:
            if int(idx) == query_id or int(idx) in self.vocabulary.special_ids:
                continue
            results.append((self.vocabulary.id_to_token(int(idx)), float(scores[idx])))
            if len(results) >= top_k:
                break
        return results
