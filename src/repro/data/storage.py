"""On-disk persistence of RecipeDB corpora.

Three interchange formats are supported:

* **JSONL** — one JSON object per recipe, lossless (keeps the per-item
  substructure kinds).  This is the native format of the reproduction.
* **Sharded JSONL** — a directory of per-shard JSONL files plus a
  ``shards.json`` manifest carrying every shard's content fingerprint.
  Corpora too large to materialise can be streamed shard-by-shard
  (:func:`iter_shards_jsonl`) straight into the sharded corpus engine.
* **CSV** — the flat ``Recipe ID / Continent / Cuisine / Recipe`` layout shown
  in Table I of the paper, convenient for inspection in a spreadsheet.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.data.recipedb import CorpusShard, RecipeDB
from repro.data.schema import Recipe

SHARD_MANIFEST_NAME = "shards.json"


def save_recipes_jsonl(corpus: RecipeDB | Iterable[Recipe], path: str | Path) -> int:
    """Write recipes to *path* as JSON lines.

    Returns the number of recipes written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for recipe in corpus:
            handle.write(json.dumps(recipe.to_dict(), ensure_ascii=False))
            handle.write("\n")
            count += 1
    return count


def load_recipes_jsonl(path: str | Path) -> RecipeDB:
    """Load a corpus previously written by :func:`save_recipes_jsonl`."""
    path = Path(path)
    recipes: list[Recipe] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: invalid JSON: {exc}") from exc
            recipes.append(Recipe.from_dict(payload))
    return RecipeDB(recipes=recipes)


def save_shards_jsonl(
    corpus: RecipeDB, directory: str | Path, shard_size: int = 512
) -> list[Path]:
    """Write *corpus* as a directory of per-shard JSONL files.

    Each shard of :meth:`RecipeDB.shards` becomes ``shard-<index>.jsonl``;
    a ``shards.json`` manifest records the file names, recipe counts and
    per-shard content fingerprints, so readers can stream, validate or skip
    shards without touching the recipe payloads.

    Returns the shard file paths, in corpus order.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    manifest: list[dict] = []
    for shard in corpus.shards(shard_size):
        path = directory / f"shard-{shard.index:05d}.jsonl"
        save_recipes_jsonl(shard, path)
        paths.append(path)
        manifest.append(
            {
                "file": path.name,
                "start": shard.start,
                "count": len(shard),
                "fingerprint": shard.fingerprint(),
            }
        )
    (directory / SHARD_MANIFEST_NAME).write_text(
        json.dumps({"shard_size": shard_size, "shards": manifest}, indent=2),
        encoding="utf-8",
    )
    return paths


def iter_shards_jsonl(directory: str | Path) -> Iterator[CorpusShard]:
    """Stream the shards of a directory written by :func:`save_shards_jsonl`.

    Shards are yielded one at a time in corpus order — only one shard's
    recipes are materialised at once, so arbitrarily large corpora can be
    fed to the corpus engine without loading them fully.  Every shard's
    content is verified against its manifest fingerprint.
    """
    directory = Path(directory)
    manifest_path = directory / SHARD_MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(f"no shard manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    for index, entry in enumerate(manifest["shards"]):
        recipes = load_recipes_jsonl(directory / entry["file"]).recipes
        shard = CorpusShard(index=index, start=entry["start"], recipes=tuple(recipes))
        if shard.fingerprint() != entry["fingerprint"]:
            raise ValueError(
                f"shard {entry['file']} content does not match its manifest "
                f"fingerprint {entry['fingerprint']}"
            )
        yield shard


def load_shards_jsonl(directory: str | Path) -> RecipeDB:
    """Assemble a full corpus from a sharded directory."""
    recipes: list[Recipe] = []
    for shard in iter_shards_jsonl(directory):
        recipes.extend(shard.recipes)
    return RecipeDB(recipes=recipes)


def save_recipes_csv(corpus: RecipeDB | Iterable[Recipe], path: str | Path) -> int:
    """Write recipes to *path* in the Table I CSV layout.

    The sequence is serialized as a Python-style list literal, mirroring the
    presentation in the paper.  The substructure kinds are not preserved; use
    JSONL for lossless round-trips.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["Recipe ID", "Continent", "Cuisine", "Recipe"])
        for recipe in corpus:
            writer.writerow(
                [
                    recipe.recipe_id,
                    recipe.continent,
                    recipe.cuisine,
                    json.dumps(list(recipe.sequence), ensure_ascii=False),
                ]
            )
            count += 1
    return count


def load_recipes_csv(path: str | Path) -> RecipeDB:
    """Load a corpus previously written by :func:`save_recipes_csv`.

    Substructure kinds are not recoverable from the CSV layout, so the loaded
    recipes have empty ``kinds``.
    """
    from repro.data.cuisines import CONTINENT_OF_CUISINE

    path = Path(path)
    recipes: list[Recipe] = []
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            cuisine = row["Cuisine"]
            continent = row.get("Continent") or CONTINENT_OF_CUISINE.get(cuisine, "Unknown")
            recipes.append(
                Recipe(
                    recipe_id=int(row["Recipe ID"]),
                    cuisine=cuisine,
                    continent=continent,
                    sequence=tuple(json.loads(row["Recipe"])),
                )
            )
    return RecipeDB(recipes=recipes)
