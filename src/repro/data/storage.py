"""On-disk persistence of RecipeDB corpora.

Two interchange formats are supported:

* **JSONL** — one JSON object per recipe, lossless (keeps the per-item
  substructure kinds).  This is the native format of the reproduction.
* **CSV** — the flat ``Recipe ID / Continent / Cuisine / Recipe`` layout shown
  in Table I of the paper, convenient for inspection in a spreadsheet.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.data.recipedb import RecipeDB
from repro.data.schema import Recipe


def save_recipes_jsonl(corpus: RecipeDB | Iterable[Recipe], path: str | Path) -> int:
    """Write recipes to *path* as JSON lines.

    Returns the number of recipes written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for recipe in corpus:
            handle.write(json.dumps(recipe.to_dict(), ensure_ascii=False))
            handle.write("\n")
            count += 1
    return count


def load_recipes_jsonl(path: str | Path) -> RecipeDB:
    """Load a corpus previously written by :func:`save_recipes_jsonl`."""
    path = Path(path)
    recipes: list[Recipe] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: invalid JSON: {exc}") from exc
            recipes.append(Recipe.from_dict(payload))
    return RecipeDB(recipes=recipes)


def save_recipes_csv(corpus: RecipeDB | Iterable[Recipe], path: str | Path) -> int:
    """Write recipes to *path* in the Table I CSV layout.

    The sequence is serialized as a Python-style list literal, mirroring the
    presentation in the paper.  The substructure kinds are not preserved; use
    JSONL for lossless round-trips.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["Recipe ID", "Continent", "Cuisine", "Recipe"])
        for recipe in corpus:
            writer.writerow(
                [
                    recipe.recipe_id,
                    recipe.continent,
                    recipe.cuisine,
                    json.dumps(list(recipe.sequence), ensure_ascii=False),
                ]
            )
            count += 1
    return count


def load_recipes_csv(path: str | Path) -> RecipeDB:
    """Load a corpus previously written by :func:`save_recipes_csv`.

    Substructure kinds are not recoverable from the CSV layout, so the loaded
    recipes have empty ``kinds``.
    """
    from repro.data.cuisines import CONTINENT_OF_CUISINE

    path = Path(path)
    recipes: list[Recipe] = []
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            cuisine = row["Cuisine"]
            continent = row.get("Continent") or CONTINENT_OF_CUISINE.get(cuisine, "Unknown")
            recipes.append(
                Recipe(
                    recipe_id=int(row["Recipe ID"]),
                    cuisine=cuisine,
                    continent=continent,
                    sequence=tuple(json.loads(row["Recipe"])),
                )
            )
    return RecipeDB(recipes=recipes)
