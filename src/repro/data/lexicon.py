"""Base culinary lexicon used by the synthetic RecipeDB generator.

RecipeDB contains 20,280 unique ingredients, 256 unique processes and 69
unique utensils mined from real recipe text.  The generator reconstructs a
vocabulary of comparable size and shape by combining the base ingredient
nouns below with modifiers (``"red" + "lentil"``, ``"smoked" + "paprika"``)
the same way real ingredient phrases are built, while processes and utensils
are drawn from fixed lists of realistic terms padded with derived variants.

The specific words do not need to match RecipeDB item-for-item — what matters
for the experiments is the vocabulary size, the Zipf-like frequency profile
(Table III) and the fact that different cuisines prefer different subsets.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Ingredients
# ---------------------------------------------------------------------------

#: Core ingredient nouns.  Every cuisine draws from these, with
#: cuisine-specific preference weights assigned by the generator.
BASE_INGREDIENTS: tuple[str, ...] = (
    "onion", "garlic", "tomato", "olive oil", "butter", "salt", "pepper",
    "sugar", "flour", "egg", "milk", "cream", "cheese", "chicken", "beef",
    "pork", "lamb", "fish", "shrimp", "rice", "pasta", "noodle", "potato",
    "carrot", "celery", "bell pepper", "chili", "ginger", "lemon", "lime",
    "orange", "apple", "banana", "coconut", "peanut", "almond", "walnut",
    "cashew", "soy sauce", "vinegar", "wine", "beer", "stock", "broth",
    "yogurt", "honey", "maple syrup", "cinnamon", "cumin", "coriander",
    "turmeric", "paprika", "oregano", "basil", "thyme", "rosemary", "parsley",
    "cilantro", "mint", "dill", "bay leaf", "clove", "cardamom", "nutmeg",
    "vanilla", "chocolate", "cocoa", "coffee", "tea", "lentil", "chickpea",
    "black bean", "kidney bean", "tofu", "mushroom", "spinach", "kale",
    "cabbage", "broccoli", "cauliflower", "zucchini", "eggplant", "cucumber",
    "lettuce", "avocado", "corn", "pea", "green bean", "asparagus", "beet",
    "radish", "turnip", "squash", "pumpkin", "sweet potato", "yam", "okra",
    "plantain", "mango", "pineapple", "papaya", "date", "fig", "raisin",
    "apricot", "peach", "pear", "plum", "cherry", "strawberry", "blueberry",
    "raspberry", "cranberry", "pomegranate", "sesame", "sunflower seed",
    "quinoa", "barley", "oat", "buckwheat", "couscous", "bulgur", "semolina",
    "cornmeal", "breadcrumb", "tortilla", "pita", "baguette", "mozzarella",
    "parmesan", "cheddar", "feta", "ricotta", "goat cheese", "blue cheese",
    "bacon", "ham", "sausage", "chorizo", "salami", "prosciutto", "anchovy",
    "sardine", "tuna", "salmon", "cod", "trout", "mackerel", "crab",
    "lobster", "mussel", "clam", "oyster", "squid", "octopus", "scallop",
    "duck", "turkey", "quail", "rabbit", "venison", "veal", "liver",
    "gelatin", "yeast", "baking powder", "baking soda", "cornstarch",
    "molasses", "brown sugar", "powdered sugar", "condensed milk",
    "buttermilk", "sour cream", "mayonnaise", "mustard", "ketchup",
    "worcestershire sauce", "fish sauce", "oyster sauce", "hoisin sauce",
    "miso", "wasabi", "seaweed", "nori", "kimchi", "sauerkraut", "pickle",
    "olive", "caper", "sun dried tomato", "artichoke", "fennel", "leek",
    "shallot", "scallion", "chive", "horseradish", "tamarind", "saffron",
    "star anise", "fenugreek", "mustard seed", "poppy seed", "caraway",
    "juniper berry", "lemongrass", "galangal", "kaffir lime", "curry leaf",
    "curry powder", "garam masala", "five spice", "allspice", "sumac",
    "za'atar", "harissa", "tahini", "peanut butter", "almond butter",
    "coconut milk", "coconut oil", "sesame oil", "canola oil", "vegetable oil",
    "sunflower oil", "lard", "ghee", "margarine", "shortening", "red lentil",
    "basmati rice", "jasmine rice", "arborio rice", "wild rice", "brown rice",
    "white sugar", "red onion", "white onion", "spring onion", "rom tomato",
    "cherry tomato", "tomato paste", "tomato sauce", "chunky salsa",
    "green chili", "red chili", "jalapeno", "habanero", "chipotle",
    "cayenne", "black pepper", "white pepper", "pink salt", "sea salt",
    "kosher salt", "water", "ice", "apple cider", "orange juice",
    "lemon juice", "lime juice", "rose water", "almond extract",
    "vanilla extract", "dark chocolate", "white chocolate", "heavy cream",
    "whipping cream", "half and half", "evaporated milk", "skim milk",
    "whole milk", "oven buttermilk biscuit",
)

#: Modifiers combined with base ingredients to build the long tail of rare,
#: highly specific ingredient phrases (e.g. ``"lasagna noodle wheat"``).
INGREDIENT_MODIFIERS: tuple[str, ...] = (
    "fresh", "dried", "frozen", "canned", "smoked", "roasted", "toasted",
    "ground", "whole", "chopped", "minced", "sliced", "diced", "crushed",
    "grated", "shredded", "peeled", "seedless", "boneless", "skinless",
    "organic", "wild", "baby", "large", "small", "medium", "extra virgin",
    "low fat", "fat free", "reduced sodium", "unsalted", "salted", "sweet",
    "sour", "spicy", "hot", "mild", "ripe", "green", "red", "yellow",
    "white", "black", "purple", "golden", "dark", "light", "aged", "raw",
    "cooked", "pickled", "fermented", "cured", "stuffed", "marinated",
    "glazed", "candied", "crystallized", "instant", "quick cooking",
    "long grain", "short grain", "stone ground", "gluten free", "whole wheat",
    "multigrain", "sprouted", "blanched", "slivered", "flaked", "crumbled",
    "julienned", "thick cut", "thin cut", "center cut", "lean", "free range",
    "grass fed", "pasture raised", "heirloom", "vine ripened", "sun dried",
    "double", "triple", "premium", "imported", "homemade", "artisan",
    "rustic", "country style", "lasagna", "wheat",
)

# ---------------------------------------------------------------------------
# Processes
# ---------------------------------------------------------------------------

#: Cooking processes (verbs) as mined by RecipeDB.  The paper reports 256
#: unique processes with "add" being the most frequent (188,004 occurrences).
BASE_PROCESSES: tuple[str, ...] = (
    "add", "stir", "mix", "heat", "cook", "boil", "simmer", "fry", "saute",
    "bake", "roast", "grill", "broil", "steam", "poach", "braise", "stew",
    "blanch", "sear", "toast", "melt", "whisk", "beat", "whip", "fold",
    "knead", "roll", "cut", "chop", "slice", "dice", "mince", "grate",
    "shred", "peel", "core", "pit", "seed", "trim", "crush", "mash",
    "puree", "blend", "strain", "drain", "rinse", "wash", "soak", "marinate",
    "season", "sprinkle", "drizzle", "pour", "spread", "brush", "coat",
    "dredge", "bread", "batter", "stuff", "fill", "layer", "arrange",
    "garnish", "serve", "chill", "refrigerate", "freeze", "thaw", "rest",
    "cool", "warm", "reheat", "preheat", "reduce", "thicken", "dissolve",
    "caramelize", "deglaze", "flambe", "baste", "glaze", "score", "skewer",
    "wrap", "cover", "uncover", "flip", "turn", "toss", "shake", "press",
    "flatten", "pound", "tenderize", "cure", "smoke", "ferment", "pickle",
    "proof", "rise", "punch", "shape", "form", "divide", "portion",
    "measure", "weigh", "sift", "combine", "incorporate", "emulsify",
    "temper", "scald", "simmer gently", "bring", "remove", "transfer",
    "discard", "reserve", "set aside", "let stand", "scrape", "skim",
    "taste", "adjust", "finish", "top", "dust", "line", "grease", "oil",
    "butter", "flour", "crimp", "seal", "pierce", "prick", "vent", "carve",
    "slice thinly", "julienne", "cube", "quarter", "halve", "smooth",
    "crisp", "brown", "char", "toast lightly", "stir fry", "deep fry",
    "pan fry", "shallow fry", "air dry", "sun dry", "dehydrate", "infuse",
    "steep", "brew", "muddle", "zest", "juice", "squeeze", "grind",
    "pulverize", "cream", "rub", "massage", "truss", "tie", "roll out",
    "stretch", "fold in", "swirl", "ripple", "pipe", "spoon", "ladle",
    "scoop", "pack", "tamp", "chill thoroughly", "plate", "assemble",
)

# ---------------------------------------------------------------------------
# Utensils
# ---------------------------------------------------------------------------

#: Kitchen utensils/vessels; the paper reports 69 unique utensils.
BASE_UTENSILS: tuple[str, ...] = (
    "pan", "pot", "saucepan", "skillet", "wok", "stockpot", "dutch oven",
    "frying pan", "griddle", "baking sheet", "baking dish", "casserole dish",
    "roasting pan", "loaf pan", "cake pan", "muffin tin", "pie dish",
    "springform pan", "ramekin", "bowl", "mixing bowl", "salad bowl",
    "serving bowl", "plate", "platter", "cutting board", "knife",
    "chef knife", "paring knife", "bread knife", "spoon", "wooden spoon",
    "slotted spoon", "ladle", "spatula", "tongs", "whisk", "fork", "peeler",
    "grater", "zester", "colander", "strainer", "sieve", "funnel",
    "measuring cup", "measuring spoon", "scale", "rolling pin", "pastry brush",
    "blender", "food processor", "processor", "mixer", "stand mixer",
    "hand mixer", "mortar and pestle", "grill", "oven", "microwave",
    "steamer", "pressure cooker", "slow cooker", "rice cooker", "toaster",
    "thermometer", "timer", "foil", "parchment paper",
)

#: Real-corpus target sizes from the paper (used as generator defaults).
PAPER_UNIQUE_INGREDIENTS = 20_280
PAPER_UNIQUE_PROCESSES = 256
PAPER_UNIQUE_UTENSILS = 69
PAPER_MOST_FREQUENT_PROCESS = "add"
PAPER_MOST_FREQUENT_PROCESS_COUNT = 188_004
