"""Cuisine taxonomy and per-cuisine recipe counts from the paper.

Table II of the paper lists 26 cuisines and the number of RecipeDB recipes in
each.  These constants drive the synthetic generator so that the reproduced
corpus has exactly the class distribution the paper evaluates on, and they are
also what the Table II benchmark checks against.
"""

from __future__ import annotations

# Table II of the paper: cuisine -> number of recipes.
CUISINE_RECIPE_COUNTS: dict[str, int] = {
    "Australian": 5823,
    "Belgian": 1060,
    "Canadian": 6700,
    "Caribbean": 3026,
    "Central American": 460,
    "Chinese and Mongolian": 5896,
    "Deutschland": 4323,
    "Eastern European": 2503,
    "French": 6381,
    "Greek": 4185,
    "Indian Subcontinent": 6464,
    "Irish": 2532,
    "Italian": 16582,
    "Japanese": 2041,
    "Korean": 668,
    "Mexican": 14463,
    "Middle Eastern": 3905,
    "Northern Africa": 1611,
    "Rest Africa": 2740,
    "Scandinavian": 2811,
    "South American": 7176,
    "Southeast Asian": 1940,
    "Spanish and Portuguese": 2844,
    "Thai": 2605,
    "UK": 4401,
    "US": 5031,
}

#: Cuisine names in a stable, alphabetical order (the label space).
CUISINES: tuple[str, ...] = tuple(sorted(CUISINE_RECIPE_COUNTS))

#: Total number of recipes in RecipeDB as reported by the paper.  Note that
#: the paper's own Table II sums to 118,171 — 100 recipes more than the total
#: the text quotes; we keep both values verbatim.
PAPER_TOTAL_RECIPES: int = 118_071
TABLE_II_TOTAL_RECIPES: int = sum(CUISINE_RECIPE_COUNTS.values())

# Mapping from cuisine to the continent label used in Table I of the paper.
CONTINENT_OF_CUISINE: dict[str, str] = {
    "Australian": "Australasian",
    "Belgian": "European",
    "Canadian": "North American",
    "Caribbean": "Latin American",
    "Central American": "Latin American",
    "Chinese and Mongolian": "Asian",
    "Deutschland": "European",
    "Eastern European": "European",
    "French": "European",
    "Greek": "European",
    "Indian Subcontinent": "Asian",
    "Irish": "European",
    "Italian": "European",
    "Japanese": "Asian",
    "Korean": "Asian",
    "Mexican": "Latin American",
    "Middle Eastern": "African",
    "Northern Africa": "African",
    "Rest Africa": "African",
    "Scandinavian": "European",
    "South American": "Latin American",
    "Southeast Asian": "Asian",
    "Spanish and Portuguese": "European",
    "Thai": "Asian",
    "UK": "European",
    "US": "North American",
}


def continent_of(cuisine: str) -> str:
    """Return the continent label for *cuisine*.

    Raises ``KeyError`` for unknown cuisines so typos surface immediately.
    """
    return CONTINENT_OF_CUISINE[cuisine]


def cuisine_index(cuisine: str) -> int:
    """Return the integer label of *cuisine* in the canonical label space."""
    try:
        return CUISINES.index(cuisine)
    except ValueError as exc:  # pragma: no cover - defensive
        raise KeyError(f"unknown cuisine: {cuisine!r}") from exc


def scaled_cuisine_counts(scale: float, min_per_cuisine: int = 4) -> dict[str, int]:
    """Scale the Table II counts by *scale*, keeping every cuisine represented.

    The reproduction runs most experiments on a fraction of the full corpus
    size (pure-NumPy transformers are slow); this helper keeps the class
    *proportions* of Table II while ensuring each cuisine retains at least
    ``min_per_cuisine`` recipes so stratified 7:1:2 splits remain possible.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if min_per_cuisine < 1:
        raise ValueError(f"min_per_cuisine must be >= 1, got {min_per_cuisine}")
    return {
        cuisine: max(min_per_cuisine, round(count * scale))
        for cuisine, count in CUISINE_RECIPE_COUNTS.items()
    }
