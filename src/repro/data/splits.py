"""Train/validation/test splitting.

The paper splits RecipeDB 7:1:2 into training, validation and test sets
(82,650 / 12,021 / 23,380 recipes out of 118,071).  The reproduction uses a
stratified split so every cuisine keeps its Table II proportion in each split,
which is what a 7:1:2 random split achieves in expectation on a corpus this
size.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.recipedb import RecipeDB

#: The split ratios used by the paper (train : validation : test).
PAPER_SPLIT_RATIOS: tuple[float, float, float] = (0.7, 0.1, 0.2)


@dataclass
class DatasetSplits:
    """The three corpus splits used for every experiment."""

    train: RecipeDB
    validation: RecipeDB
    test: RecipeDB

    def __post_init__(self) -> None:
        train_ids = {r.recipe_id for r in self.train}
        val_ids = {r.recipe_id for r in self.validation}
        test_ids = {r.recipe_id for r in self.test}
        if train_ids & val_ids or train_ids & test_ids or val_ids & test_ids:
            raise ValueError("splits overlap: the same recipe appears in two splits")

    @property
    def sizes(self) -> tuple[int, int, int]:
        """(train, validation, test) sizes."""
        return len(self.train), len(self.validation), len(self.test)

    def summary(self) -> dict[str, int]:
        """Split sizes keyed by split name."""
        return {
            "train": len(self.train),
            "validation": len(self.validation),
            "test": len(self.test),
        }


def train_val_test_split(
    corpus: RecipeDB,
    ratios: Sequence[float] = PAPER_SPLIT_RATIOS,
    stratify: bool = True,
    seed: int = 13,
) -> DatasetSplits:
    """Split *corpus* into train/validation/test subsets.

    Args:
        corpus: The corpus to split.
        ratios: Three positive floats summing (approximately) to 1, in the
            order train, validation, test.  Defaults to the paper's 7:1:2.
        stratify: If true (default) the split preserves per-cuisine
            proportions; every cuisine with at least three recipes gets at
            least one recipe in each split.
        seed: PRNG seed controlling the shuffle.

    Returns:
        A :class:`DatasetSplits` with disjoint subsets covering the corpus.

    Raises:
        ValueError: If the ratios are malformed or the corpus is too small to
            populate all three splits.
    """
    if len(ratios) != 3:
        raise ValueError(f"expected 3 ratios, got {len(ratios)}")
    if any(r <= 0 for r in ratios):
        raise ValueError(f"ratios must be positive, got {ratios}")
    total = float(sum(ratios))
    if not np.isclose(total, 1.0, atol=1e-6):
        ratios = tuple(r / total for r in ratios)
    if len(corpus) < 3:
        raise ValueError("corpus too small to split into three parts")

    rng = np.random.default_rng(seed)
    train_idx: list[int] = []
    val_idx: list[int] = []
    test_idx: list[int] = []

    if stratify:
        by_cuisine: dict[str, list[int]] = defaultdict(list)
        for i, recipe in enumerate(corpus):
            by_cuisine[recipe.cuisine].append(i)
        for indices in by_cuisine.values():
            _assign(indices, ratios, rng, train_idx, val_idx, test_idx)
    else:
        _assign(list(range(len(corpus))), ratios, rng, train_idx, val_idx, test_idx)

    return DatasetSplits(
        train=corpus.subset(sorted(train_idx)),
        validation=corpus.subset(sorted(val_idx)),
        test=corpus.subset(sorted(test_idx)),
    )


def _assign(
    indices: list[int],
    ratios: Sequence[float],
    rng: np.random.Generator,
    train_idx: list[int],
    val_idx: list[int],
    test_idx: list[int],
) -> None:
    """Shuffle *indices* and distribute them across the three splits."""
    shuffled = [indices[i] for i in rng.permutation(len(indices))]
    n = len(shuffled)
    n_train = int(round(n * ratios[0]))
    n_val = int(round(n * ratios[1]))
    # Guarantee non-empty validation/test whenever the group is large enough.
    if n >= 3:
        n_train = min(max(n_train, 1), n - 2)
        n_val = min(max(n_val, 1), n - n_train - 1)
    train_idx.extend(shuffled[:n_train])
    val_idx.extend(shuffled[n_train : n_train + n_val])
    test_idx.extend(shuffled[n_train + n_val :])
