"""Recipe data substrate.

This package provides the data layer of the reproduction: the recipe and
cuisine schema, the synthetic RecipeDB generator calibrated to the statistics
reported in the paper (Tables I-III), corpus statistics, stratified splitting
and on-disk storage.

The real RecipeDB corpus (118,071 recipes scraped from AllRecipes, Epicurious,
Food Network and TarlaDalal) is not redistributable and is served from an
online resource, so the reproduction ships a generator that produces a corpus
with the same cuisine distribution, vocabulary sizes, sparsity and sequential
structure.  See ``DESIGN.md`` for the substitution rationale.
"""

from repro.data.cuisines import (
    CONTINENT_OF_CUISINE,
    CUISINE_RECIPE_COUNTS,
    CUISINES,
    PAPER_TOTAL_RECIPES,
    continent_of,
)
from repro.data.generator import GeneratorConfig, RecipeDBGenerator, generate_recipedb
from repro.data.recipedb import CorpusShard, RecipeDB
from repro.data.schema import Recipe, TokenKind
from repro.data.splits import DatasetSplits, train_val_test_split
from repro.data.statistics import (
    CorpusStatistics,
    compute_corpus_statistics,
    cumulative_frequency_table,
    sparsity_ratio,
)
from repro.data.storage import (
    iter_shards_jsonl,
    load_recipes_jsonl,
    load_shards_jsonl,
    save_recipes_jsonl,
    save_shards_jsonl,
)

__all__ = [
    "CorpusShard",
    "iter_shards_jsonl",
    "load_shards_jsonl",
    "save_shards_jsonl",
    "CONTINENT_OF_CUISINE",
    "CUISINE_RECIPE_COUNTS",
    "CUISINES",
    "PAPER_TOTAL_RECIPES",
    "continent_of",
    "GeneratorConfig",
    "RecipeDBGenerator",
    "generate_recipedb",
    "RecipeDB",
    "Recipe",
    "TokenKind",
    "DatasetSplits",
    "train_val_test_split",
    "CorpusStatistics",
    "compute_corpus_statistics",
    "cumulative_frequency_table",
    "sparsity_ratio",
    "load_recipes_jsonl",
    "save_recipes_jsonl",
]
