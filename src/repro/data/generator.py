"""Synthetic RecipeDB generator.

The real RecipeDB corpus is only available online; this module generates a
stand-in corpus calibrated to every statistic the paper reports:

* 26 cuisines with the per-cuisine recipe counts of Table II (scalable),
* a long-tail vocabulary of ~20k ingredients / 256 processes / 69 utensils,
* ``add`` as the dominant process, a large hapax-legomena tail of ingredients
  (Table III / the 99.5 % sparsity figure),
* recipes shaped like Table I: ingredients first, then cooking processes in
  order, then utensils,
* and — crucially for the paper's hypothesis — **cuisine-specific sequential
  structure**: each cuisine has signature ingredients (bag-of-words signal)
  *and* signature process-order motifs whose token *set* is shared across
  cuisines but whose *order* is cuisine-specific, so sequence-aware models
  have access to signal that TF-IDF models cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data import lexicon
from repro.data.cuisines import (
    CONTINENT_OF_CUISINE,
    CUISINE_RECIPE_COUNTS,
    CUISINES,
    scaled_cuisine_counts,
)
from repro.data.recipedb import RecipeDB
from repro.data.schema import Recipe, TokenKind


@dataclass(frozen=True)
class GeneratorConfig:
    """Configuration of the synthetic RecipeDB generator.

    Attributes:
        scale: Fraction of the Table II per-cuisine recipe counts to
            generate.  ``scale=1.0`` yields the full 118,071-recipe corpus;
            the benchmark defaults use a small fraction so that pure-NumPy
            transformers finish in minutes.
        n_ingredients: Target size of the ingredient vocabulary.  The paper
            reports 20,280 unique ingredients; smaller corpora use a
            proportionally smaller vocabulary so the sparsity profile holds.
        n_processes: Target number of unique cooking processes (paper: 256).
        n_utensils: Target number of unique utensils (paper: 69).
        zipf_exponent: Exponent of the Zipf law governing global ingredient
            popularity.
        signature_fraction: Fraction of the common-ingredient pool that each
            cuisine boosts as its signature ingredients.
        signature_boost: Multiplicative preference boost for signature
            ingredients (bag-of-words signal strength).
        n_motifs: Number of process-order motif slots shared across cuisines.
        motifs_per_recipe: How many of the cuisine's ordered motifs each
            recipe embeds (order signal strength).
        hapax_probability: Probability that a recipe includes one
            never-seen-before rare ingredient (creates the hapax tail of
            Table III).
        min_ingredients / max_ingredients: Ingredient-count range per recipe.
        min_processes / max_processes: Process-count range per recipe
            (excluding motif tokens).
        min_utensils / max_utensils: Utensil-count range per recipe.
        noise: Probability of swapping adjacent process tokens, which keeps
            the order signal from being trivially separable.
        seed: PRNG seed; the generator is fully deterministic given the
            configuration.
    """

    scale: float = 0.05
    n_ingredients: int | None = None
    n_processes: int = lexicon.PAPER_UNIQUE_PROCESSES
    n_utensils: int = lexicon.PAPER_UNIQUE_UTENSILS
    zipf_exponent: float = 1.35
    signature_fraction: float = 0.10
    signature_boost: float = 12.0
    n_motifs: int = 24
    motifs_per_recipe: int = 6
    hapax_probability: float = 0.10
    min_ingredients: int = 4
    max_ingredients: int = 14
    min_processes: int = 4
    max_processes: int = 12
    min_utensils: int = 1
    max_utensils: int = 3
    noise: float = 0.06
    seed: int = 7

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if not 0.0 <= self.hapax_probability <= 1.0:
            raise ValueError("hapax_probability must be in [0, 1]")
        if self.min_ingredients < 1 or self.max_ingredients < self.min_ingredients:
            raise ValueError("invalid ingredient count range")
        if self.min_processes < 1 or self.max_processes < self.min_processes:
            raise ValueError("invalid process count range")
        if self.min_utensils < 0 or self.max_utensils < self.min_utensils:
            raise ValueError("invalid utensil count range")
        if self.n_motifs < 1 or self.motifs_per_recipe < 0:
            raise ValueError("invalid motif configuration")

    @property
    def resolved_n_ingredients(self) -> int:
        """Ingredient vocabulary size, defaulting to a scale-proportional value."""
        if self.n_ingredients is not None:
            return self.n_ingredients
        # At full scale match the paper's 20,280 unique ingredients; shrink
        # proportionally (but never below the base lexicon) for small corpora
        # so the hapax/sparsity profile stays comparable.
        target = int(lexicon.PAPER_UNIQUE_INGREDIENTS * min(1.0, self.scale * 4))
        return max(len(lexicon.BASE_INGREDIENTS) * 2, min(lexicon.PAPER_UNIQUE_INGREDIENTS, target))


@dataclass
class _CuisineProfile:
    """Per-cuisine sampling parameters derived from the configuration."""

    name: str
    ingredient_probs: np.ndarray
    motif_orders: list[tuple[int, int]] = field(default_factory=list)
    utensil_probs: np.ndarray | None = None


class RecipeDBGenerator:
    """Generates a synthetic, statistically calibrated RecipeDB corpus."""

    def __init__(self, config: GeneratorConfig | None = None) -> None:
        self.config = config or GeneratorConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._ingredient_vocab = self._build_ingredient_vocab()
        self._process_vocab = self._build_process_vocab()
        self._utensil_vocab = self._build_utensil_vocab()
        self._global_ingredient_probs = self._zipf_probs(len(self._ingredient_vocab))
        self._process_probs = self._process_frequency_profile()
        self._motif_tokens = self._pick_motif_tokens()
        self._profiles = self._build_cuisine_profiles()
        self._hapax_cursor = 0

    # ------------------------------------------------------------------
    # vocabulary construction
    # ------------------------------------------------------------------
    @property
    def ingredient_vocabulary(self) -> tuple[str, ...]:
        """All ingredient phrases the generator can emit (excluding hapaxes)."""
        return tuple(self._ingredient_vocab)

    @property
    def process_vocabulary(self) -> tuple[str, ...]:
        """All cooking-process tokens."""
        return tuple(self._process_vocab)

    @property
    def utensil_vocabulary(self) -> tuple[str, ...]:
        """All utensil tokens."""
        return tuple(self._utensil_vocab)

    def _build_ingredient_vocab(self) -> list[str]:
        target = self.config.resolved_n_ingredients
        vocab: list[str] = list(lexicon.BASE_INGREDIENTS)
        seen = set(vocab)
        bases = lexicon.BASE_INGREDIENTS
        mods = lexicon.INGREDIENT_MODIFIERS
        # Deterministic enumeration of modifier+base phrases, shuffled so the
        # long tail is not ordered by base-ingredient popularity.
        combos: list[str] = []
        for mod_idx, mod in enumerate(mods):
            for base_idx, base in enumerate(bases):
                phrase = f"{mod} {base}"
                if phrase not in seen:
                    combos.append(phrase)
        # Two-modifier phrases extend the pool if a single pass is not enough.
        if len(vocab) + len(combos) < target:
            for first in mods[: len(mods) // 2]:
                for second in mods[len(mods) // 2 :]:
                    for base in bases[:60]:
                        phrase = f"{first} {second} {base}"
                        if phrase not in seen:
                            combos.append(phrase)
                        if len(vocab) + len(combos) >= target * 2:
                            break
                    if len(vocab) + len(combos) >= target * 2:
                        break
                if len(vocab) + len(combos) >= target * 2:
                    break
        order = self._rng.permutation(len(combos))
        for idx in order:
            if len(vocab) >= target:
                break
            phrase = combos[idx]
            if phrase not in seen:
                vocab.append(phrase)
                seen.add(phrase)
        return vocab

    def _build_process_vocab(self) -> list[str]:
        vocab = list(dict.fromkeys(lexicon.BASE_PROCESSES))
        target = self.config.n_processes
        suffixes = ("well", "gently", "thoroughly", "briefly", "again", "evenly")
        idx = 0
        while len(vocab) < target:
            base = lexicon.BASE_PROCESSES[idx % len(lexicon.BASE_PROCESSES)]
            suffix = suffixes[(idx // len(lexicon.BASE_PROCESSES)) % len(suffixes)]
            candidate = f"{base} {suffix}"
            if candidate not in vocab:
                vocab.append(candidate)
            idx += 1
        return vocab[:target]

    def _build_utensil_vocab(self) -> list[str]:
        vocab = list(dict.fromkeys(lexicon.BASE_UTENSILS))
        return vocab[: self.config.n_utensils]

    def _zipf_probs(self, n: int) -> np.ndarray:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-self.config.zipf_exponent)
        return weights / weights.sum()

    def _process_frequency_profile(self) -> np.ndarray:
        """Zipf profile over processes with ``add`` pinned as the most frequent."""
        n = len(self._process_vocab)
        probs = self._zipf_probs(n)
        add_idx = self._process_vocab.index(lexicon.PAPER_MOST_FREQUENT_PROCESS)
        # Move the largest probability mass onto "add".
        order = np.argsort(probs)[::-1]
        reordered = np.empty_like(probs)
        reordered[add_idx] = probs[order[0]]
        remaining = [i for i in range(n) if i != add_idx]
        for prob, idx in zip(probs[order[1:]], remaining):
            reordered[idx] = prob
        return reordered / reordered.sum()

    def _pick_motif_tokens(self) -> list[tuple[int, int]]:
        """Pairs of frequent process indices used as order motifs."""
        common = np.argsort(self._process_probs)[::-1][: self.config.n_motifs * 2]
        pairs = []
        for i in range(self.config.n_motifs):
            a = int(common[2 * i])
            b = int(common[2 * i + 1])
            pairs.append((a, b))
        return pairs

    def _build_cuisine_profiles(self) -> dict[str, _CuisineProfile]:
        profiles: dict[str, _CuisineProfile] = {}
        n_ing = len(self._ingredient_vocab)
        n_signature = max(3, int(len(lexicon.BASE_INGREDIENTS) * self.config.signature_fraction))
        continent_signature: dict[str, np.ndarray] = {}
        for cuisine in CUISINES:
            continent = CONTINENT_OF_CUISINE[cuisine]
            if continent not in continent_signature:
                continent_signature[continent] = self._rng.choice(
                    len(lexicon.BASE_INGREDIENTS), size=n_signature, replace=False
                )
            cuisine_sig = self._rng.choice(
                len(lexicon.BASE_INGREDIENTS), size=n_signature, replace=False
            )
            probs = self._global_ingredient_probs.copy()
            probs[continent_signature[continent]] *= self.config.signature_boost * 0.5
            probs[cuisine_sig] *= self.config.signature_boost
            probs /= probs.sum()

            # Cuisine-specific utensil preferences (mild).
            utensil_probs = self._zipf_probs(len(self._utensil_vocab)).copy()
            preferred = self._rng.choice(len(self._utensil_vocab), size=4, replace=False)
            utensil_probs[preferred] *= 3.0
            utensil_probs /= utensil_probs.sum()

            # Order motifs: for each motif slot the cuisine deterministically
            # chooses a direction; different cuisines choose different (near
            # independent) direction patterns, so the *set* of motif tokens is
            # identical across cuisines while the *order* is discriminative.
            cuisine_idx = CUISINES.index(cuisine)
            direction_rng = np.random.default_rng(self.config.seed * 1009 + cuisine_idx)
            directions = direction_rng.integers(0, 2, size=len(self._motif_tokens))
            motif_orders = [
                (a, b) if forward else (b, a)
                for (a, b), forward in zip(self._motif_tokens, directions)
            ]

            profiles[cuisine] = _CuisineProfile(
                name=cuisine,
                ingredient_probs=probs,
                motif_orders=motif_orders,
                utensil_probs=utensil_probs,
            )
        _ = n_ing
        return profiles

    # ------------------------------------------------------------------
    # recipe generation
    # ------------------------------------------------------------------
    def generate(self) -> RecipeDB:
        """Generate the corpus and return it as a :class:`RecipeDB`."""
        counts = scaled_cuisine_counts(self.config.scale)
        recipes: list[Recipe] = []
        recipe_id = 1
        for cuisine in CUISINES:
            profile = self._profiles[cuisine]
            for _ in range(counts[cuisine]):
                recipes.append(self._generate_recipe(recipe_id, profile))
                recipe_id += 1
        order = self._rng.permutation(len(recipes))
        shuffled = [recipes[i] for i in order]
        return RecipeDB(recipes=shuffled, generator_config=self.config)

    def _generate_recipe(self, recipe_id: int, profile: _CuisineProfile) -> Recipe:
        cfg = self.config
        rng = self._rng

        n_ing = int(rng.integers(cfg.min_ingredients, cfg.max_ingredients + 1))
        ing_idx = rng.choice(
            len(self._ingredient_vocab), size=n_ing, replace=False, p=profile.ingredient_probs
        )
        ingredients = [self._ingredient_vocab[i] for i in ing_idx]
        if rng.random() < cfg.hapax_probability:
            ingredients.append(self._next_hapax())

        n_proc = int(rng.integers(cfg.min_processes, cfg.max_processes + 1))
        proc_idx = rng.choice(len(self._process_vocab), size=n_proc, p=self._process_probs)
        processes = [self._process_vocab[i] for i in proc_idx]

        # Embed the cuisine's ordered motifs at random positions.
        n_motifs = min(cfg.motifs_per_recipe, len(profile.motif_orders))
        if n_motifs:
            slots = rng.choice(len(profile.motif_orders), size=n_motifs, replace=False)
            for slot in slots:
                a, b = profile.motif_orders[slot]
                pos = int(rng.integers(0, len(processes) + 1))
                processes[pos:pos] = [self._process_vocab[a], self._process_vocab[b]]

        # Noise: swap a few adjacent process tokens.
        for i in range(len(processes) - 1):
            if rng.random() < cfg.noise:
                processes[i], processes[i + 1] = processes[i + 1], processes[i]

        n_uten = int(rng.integers(cfg.min_utensils, cfg.max_utensils + 1))
        if n_uten:
            uten_idx = rng.choice(
                len(self._utensil_vocab), size=n_uten, replace=False, p=profile.utensil_probs
            )
            utensils = [self._utensil_vocab[i] for i in uten_idx]
        else:
            utensils = []

        sequence = tuple(ingredients + processes + utensils)
        kinds = tuple(
            [TokenKind.INGREDIENT] * len(ingredients)
            + [TokenKind.PROCESS] * len(processes)
            + [TokenKind.UTENSIL] * len(utensils)
        )
        return Recipe(
            recipe_id=recipe_id,
            cuisine=profile.name,
            continent=CONTINENT_OF_CUISINE[profile.name],
            sequence=sequence,
            kinds=kinds,
        )

    def _next_hapax(self) -> str:
        """Return a unique, never-repeated rare ingredient phrase."""
        mods = lexicon.INGREDIENT_MODIFIERS
        bases = lexicon.BASE_INGREDIENTS
        i = self._hapax_cursor
        self._hapax_cursor += 1
        first = mods[i % len(mods)]
        second = mods[(i // len(mods) + 7) % len(mods)]
        base = bases[(i * 13) % len(bases)]
        return f"{first} {second} {base} {i}"


def generate_recipedb(
    scale: float = 0.05, seed: int = 7, **overrides
) -> RecipeDB:
    """Convenience wrapper: generate a corpus with the default configuration.

    Args:
        scale: Fraction of the Table II recipe counts to generate.
        seed: PRNG seed.
        **overrides: Any other :class:`GeneratorConfig` field.

    Returns:
        The generated :class:`repro.data.recipedb.RecipeDB` corpus.
    """
    config = GeneratorConfig(scale=scale, seed=seed, **overrides)
    return RecipeDBGenerator(config).generate()
