"""RecipeDB corpus container.

Holds a collection of :class:`~repro.data.schema.Recipe` objects together with
convenience accessors for labels, texts and per-cuisine grouping — the views
the preprocessing and modelling layers consume.  Corpora additionally expose a
partitioned view (:meth:`RecipeDB.shards`): deterministic, individually
fingerprinted :class:`CorpusShard` chunks that the sharded corpus engine
featurizes in parallel and caches independently.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.data.cuisines import CUISINES
from repro.data.schema import Recipe, TokenKind, validate_recipes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, type checking only
    from repro.data.generator import GeneratorConfig


def _update_recipe_digest(digest, recipe: Recipe) -> None:
    digest.update(
        f"{recipe.recipe_id}\x1e{recipe.cuisine}\x1e{recipe.continent}\x1e".encode("utf-8")
    )
    digest.update("\x1f".join(recipe.sequence).encode("utf-8"))
    digest.update(b"\x1e")
    digest.update("\x1f".join(kind.value for kind in recipe.kinds).encode("utf-8"))
    digest.update(b"\x1d")


def recipes_digest(recipes: Iterable[Recipe]) -> str:
    """Stable content hash of an ordered collection of recipes.

    Covers every recipe field; used for both corpus and shard fingerprints so
    any content change (shuffling, dropping, editing) produces a new digest
    while identical content always collides across processes.
    """
    digest = hashlib.blake2b(digest_size=16)
    for recipe in recipes:
        _update_recipe_digest(digest, recipe)
    return digest.hexdigest()


@dataclass(frozen=True)
class CorpusShard:
    """One deterministic, contiguous chunk of a corpus.

    Shards are the unit of parallel featurization and of incremental
    recomputation: a shard is identified purely by its recipe content
    (:meth:`fingerprint`), so appending recipes to a corpus leaves every
    already-full shard's fingerprint unchanged and only the new (or the
    previously partial trailing) shards miss the cache.

    Attributes:
        index: Position of the shard in the corpus partition.
        start: Corpus index of the shard's first recipe.
        recipes: The shard's recipes, in corpus order.
    """

    index: int
    start: int
    recipes: tuple[Recipe, ...]

    def __len__(self) -> int:
        return len(self.recipes)

    def __iter__(self) -> Iterator[Recipe]:
        return iter(self.recipes)

    @property
    def sequences(self) -> list[tuple[str, ...]]:
        """Raw item sequences of the shard, in corpus order."""
        return [recipe.sequence for recipe in self.recipes]

    def fingerprint(self) -> str:
        """Content-only hash of the shard (independent of corpus provenance)."""
        cached = self.__dict__.get("_fingerprint_cache")
        if cached is None:
            cached = recipes_digest(self.recipes)
            object.__setattr__(self, "_fingerprint_cache", cached)
        return cached


@dataclass
class RecipeDB:
    """An in-memory RecipeDB corpus.

    Attributes:
        recipes: The recipes, in corpus order.
        generator_config: The generator configuration that produced the
            corpus, if it is synthetic; ``None`` for corpora loaded from disk
            without provenance.
    """

    recipes: list[Recipe]
    generator_config: "GeneratorConfig | None" = None

    def __post_init__(self) -> None:
        validate_recipes(self.recipes)

    # ------------------------------------------------------------------
    # basic container behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.recipes)

    def __iter__(self) -> Iterator[Recipe]:
        return iter(self.recipes)

    def __getitem__(self, index: int) -> Recipe:
        return self.recipes[index]

    # ------------------------------------------------------------------
    # column views (cached)
    # ------------------------------------------------------------------
    def _column(self, name: str, build: Callable[[], list]) -> list:
        """Build *name* once and reuse it on every later access.

        Corpora are append-only — every transformation (``filter``,
        ``subset``, ``extend``) returns a *new* ``RecipeDB`` — so cached
        views never need invalidation; the recipe-count guard only protects
        against callers mutating ``recipes`` in place, which (as for
        :meth:`fingerprint`) is unsupported.  The cached list itself is
        shared between calls: treat it as read-only.
        """
        cache: dict[str, tuple[int, list]] = self.__dict__.setdefault("_column_cache", {})
        cached = cache.get(name)
        if cached is not None and cached[0] == len(self.recipes):
            return cached[1]
        value = build()
        cache[name] = (len(self.recipes), value)
        return value

    @property
    def cuisines(self) -> list[str]:
        """Cuisine label of each recipe, in corpus order."""
        return self._column("cuisines", lambda: [r.cuisine for r in self.recipes])

    @property
    def continents(self) -> list[str]:
        """Continent label of each recipe, in corpus order."""
        return self._column("continents", lambda: [r.continent for r in self.recipes])

    @property
    def sequences(self) -> list[tuple[str, ...]]:
        """Raw item sequences, in corpus order."""
        return self._column("sequences", lambda: [r.sequence for r in self.recipes])

    def texts(self) -> list[str]:
        """Whitespace-joined document form of every recipe."""
        return self._column("texts", lambda: [r.as_text() for r in self.recipes])

    def labels(self, label_space: Sequence[str] = CUISINES) -> list[int]:
        """Integer labels of every recipe under *label_space*."""
        index = {name: i for i, name in enumerate(label_space)}
        return [index[recipe.cuisine] for recipe in self.recipes]

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    def cuisine_counts(self) -> dict[str, int]:
        """Number of recipes per cuisine (Table II of the paper)."""
        counts = Counter(self.cuisines)
        return {cuisine: counts.get(cuisine, 0) for cuisine in sorted(counts)}

    def present_cuisines(self) -> tuple[str, ...]:
        """Cuisines that actually occur in the corpus, in canonical order."""
        present = set(self.cuisines)
        return tuple(c for c in CUISINES if c in present)

    def token_counts(self, kind: TokenKind | None = None) -> Counter:
        """Frequency of every item, optionally restricted to one substructure."""
        counts: Counter = Counter()
        for recipe in self.recipes:
            if kind is None or not recipe.kinds:
                counts.update(recipe.sequence)
            else:
                counts.update(
                    item for item, k in zip(recipe.sequence, recipe.kinds) if k is kind
                )
        return counts

    def vocabulary(self, kind: TokenKind | None = None) -> tuple[str, ...]:
        """Distinct items in the corpus, optionally per substructure."""
        return tuple(sorted(self.token_counts(kind)))

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash of the corpus.

        Covers every recipe field plus the generator configuration, so two
        corpora with identical content share a fingerprint across processes
        while any transformation (shuffling, dropping cuisines, subsetting)
        produces a new one.  The digest is cached per instance and
        recomputed when the recipe count changes; treat ``recipes`` as
        immutable after construction for the cache to stay truthful.
        """
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is not None and cached[0] == len(self.recipes):
            return cached[1]
        digest = hashlib.blake2b(digest_size=16)
        if self.generator_config is not None:
            digest.update(repr(self.generator_config).encode("utf-8"))
        for recipe in self.recipes:
            _update_recipe_digest(digest, recipe)
        value = digest.hexdigest()
        object.__setattr__(self, "_fingerprint_cache", (len(self.recipes), value))
        return value

    # ------------------------------------------------------------------
    # partitioned view
    # ------------------------------------------------------------------
    def shards(self, shard_size: int) -> list[CorpusShard]:
        """Partition the corpus into deterministic contiguous shards.

        Every shard except possibly the last holds exactly *shard_size*
        recipes.  The partition depends only on corpus order and
        *shard_size*, so two corpora sharing a prefix (e.g. before and after
        :meth:`extend`) share the fingerprints of every full prefix shard —
        the property the corpus engine's incremental featurization relies on.
        """
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        return [
            CorpusShard(
                index=index,
                start=start,
                recipes=tuple(self.recipes[start : start + shard_size]),
            )
            for index, start in enumerate(range(0, len(self.recipes), shard_size))
        ]

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def extend(self, recipes: Iterable[Recipe]) -> "RecipeDB":
        """Return a new corpus with *recipes* appended.

        Appending is the growth path of the sharded engine: the returned
        corpus has a new fingerprint, but shares every full prefix shard
        with this one (see :meth:`shards`), so refeaturizing it recomputes
        only the appended tail.  This corpus — and its cached column views
        and fingerprint — is left untouched.
        """
        return RecipeDB(
            recipes=[*self.recipes, *recipes],
            generator_config=self.generator_config,
        )

    def filter(self, predicate: Callable[[Recipe], bool]) -> "RecipeDB":
        """Return a new corpus containing the recipes matching *predicate*."""
        return RecipeDB(
            recipes=[r for r in self.recipes if predicate(r)],
            generator_config=self.generator_config,
        )

    def restrict_to_cuisines(self, cuisines: Sequence[str]) -> "RecipeDB":
        """Keep only recipes whose cuisine is in *cuisines*.

        This is the operation behind the class-imbalance ablation (the paper's
        §VII discusses dropping low-frequency cuisines).
        """
        allowed = set(cuisines)
        return self.filter(lambda recipe: recipe.cuisine in allowed)

    def drop_rare_cuisines(self, min_recipes: int) -> "RecipeDB":
        """Drop cuisines with fewer than *min_recipes* recipes."""
        counts = self.cuisine_counts()
        keep = [cuisine for cuisine, count in counts.items() if count >= min_recipes]
        return self.restrict_to_cuisines(keep)

    def subset(self, indices: Sequence[int]) -> "RecipeDB":
        """Return a new corpus containing the recipes at *indices*."""
        return RecipeDB(
            recipes=[self.recipes[i] for i in indices],
            generator_config=self.generator_config,
        )

    def sample(self, n: int, seed: int = 0) -> "RecipeDB":
        """Return a uniformly sampled sub-corpus of *n* recipes."""
        import numpy as np

        if n > len(self.recipes):
            raise ValueError(f"cannot sample {n} recipes from a corpus of {len(self.recipes)}")
        rng = np.random.default_rng(seed)
        indices = rng.choice(len(self.recipes), size=n, replace=False)
        return self.subset(sorted(int(i) for i in indices))
