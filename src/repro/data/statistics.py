"""Corpus statistics reported by the paper (Table III, sparsity, Table II).

The paper characterises RecipeDB by its sparsity ratio (99.50 %), the extreme
frequency skew of its features (11,738 of 20,400 entities occur in at most one
recipe while ``add`` occurs 188,004 times) and the cumulative frequency table
reproduced as Table III.  This module computes all of those statistics from a
:class:`~repro.data.recipedb.RecipeDB` corpus.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.data.recipedb import RecipeDB
from repro.data.schema import TokenKind

#: The ">N occurrences" thresholds of the left column of Table III.
TABLE_III_HIGH_THRESHOLDS: tuple[int, ...] = (
    1000, 5000, 10000, 15000, 20000, 25000, 30000, 35000, 40000, 45000,
)

#: The "<N occurrences" thresholds of the right column of Table III.
TABLE_III_LOW_THRESHOLDS: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8, 10, 15, 20)

#: Paper-reported values for Table III (features above / below thresholds).
PAPER_TABLE_III_HIGH: dict[int, int] = {
    1000: 304, 5000: 106, 10000: 57, 15000: 43, 20000: 34,
    25000: 24, 30000: 19, 35000: 17, 40000: 13, 45000: 12,
}
PAPER_TABLE_III_LOW: dict[int, int] = {
    2: 11738, 3: 14015, 4: 15002, 5: 15620, 6: 16073,
    7: 16394, 8: 16627, 10: 17016, 15: 17314, 20: 17519,
}

#: Sparsity ratio reported in the paper's Dataset section.
PAPER_SPARSITY_RATIO = 0.995


@dataclass(frozen=True)
class CorpusStatistics:
    """Summary statistics of a RecipeDB corpus.

    Attributes:
        n_recipes: Total number of recipes.
        n_cuisines: Number of distinct cuisines present.
        n_unique_features: Number of distinct items across all substructures.
        n_unique_ingredients: Distinct ingredients.
        n_unique_processes: Distinct processes.
        n_unique_utensils: Distinct utensils.
        sparsity: Sparsity ratio of the recipe x feature incidence matrix.
        most_frequent_feature: The single most frequent item.
        most_frequent_count: Its occurrence count.
        hapax_count: Number of features occurring in at most one recipe.
        mean_sequence_length: Mean number of items per recipe.
        cuisine_counts: Recipes per cuisine.
        high_frequency_table: Features with more than N occurrences, for the
            Table III thresholds.
        low_frequency_table: Features with fewer than N occurrences, for the
            Table III thresholds.
    """

    n_recipes: int
    n_cuisines: int
    n_unique_features: int
    n_unique_ingredients: int
    n_unique_processes: int
    n_unique_utensils: int
    sparsity: float
    most_frequent_feature: str
    most_frequent_count: int
    hapax_count: int
    mean_sequence_length: float
    cuisine_counts: dict[str, int]
    high_frequency_table: dict[int, int]
    low_frequency_table: dict[int, int]


def feature_occurrence_counts(corpus: RecipeDB) -> Counter:
    """Total occurrences of every feature across the corpus."""
    return corpus.token_counts()


def feature_document_counts(corpus: RecipeDB) -> Counter:
    """Number of *recipes* each feature occurs in (document frequency)."""
    counts: Counter = Counter()
    for recipe in corpus:
        counts.update(set(recipe.sequence))
    return counts


def sparsity_ratio(corpus: RecipeDB) -> float:
    """Sparsity of the recipe x feature incidence matrix.

    Defined as ``1 - nnz / (n_recipes * n_features)`` where ``nnz`` counts a
    cell as non-zero when the feature occurs in the recipe.  The paper reports
    99.50 % for the full RecipeDB.
    """
    n_recipes = len(corpus)
    if n_recipes == 0:
        return 0.0
    doc_counts = feature_document_counts(corpus)
    n_features = len(doc_counts)
    if n_features == 0:
        return 0.0
    nnz = sum(doc_counts.values())
    return 1.0 - nnz / (n_recipes * n_features)


def cumulative_frequency_table(
    corpus: RecipeDB,
    high_thresholds: tuple[int, ...] = TABLE_III_HIGH_THRESHOLDS,
    low_thresholds: tuple[int, ...] = TABLE_III_LOW_THRESHOLDS,
) -> tuple[dict[int, int], dict[int, int]]:
    """Compute both halves of Table III.

    Returns:
        ``(high, low)`` where ``high[N]`` is the number of features occurring
        more than ``N`` times and ``low[N]`` is the number occurring fewer
        than ``N`` times.
    """
    occurrence = feature_occurrence_counts(corpus)
    values = list(occurrence.values())
    high = {t: sum(1 for v in values if v > t) for t in high_thresholds}
    low = {t: sum(1 for v in values if v < t) for t in low_thresholds}
    return high, low


def compute_corpus_statistics(corpus: RecipeDB) -> CorpusStatistics:
    """Compute the full :class:`CorpusStatistics` summary for *corpus*."""
    occurrence = feature_occurrence_counts(corpus)
    doc_counts = feature_document_counts(corpus)
    high, low = cumulative_frequency_table(corpus)
    if occurrence:
        most_frequent_feature, most_frequent_count = occurrence.most_common(1)[0]
    else:
        most_frequent_feature, most_frequent_count = "", 0
    hapax = sum(1 for count in doc_counts.values() if count <= 1)
    lengths = [len(recipe) for recipe in corpus]
    mean_length = float(sum(lengths)) / len(lengths) if lengths else 0.0
    return CorpusStatistics(
        n_recipes=len(corpus),
        n_cuisines=len(corpus.present_cuisines()),
        n_unique_features=len(occurrence),
        n_unique_ingredients=len(corpus.vocabulary(TokenKind.INGREDIENT)),
        n_unique_processes=len(corpus.vocabulary(TokenKind.PROCESS)),
        n_unique_utensils=len(corpus.vocabulary(TokenKind.UTENSIL)),
        sparsity=sparsity_ratio(corpus),
        most_frequent_feature=most_frequent_feature,
        most_frequent_count=most_frequent_count,
        hapax_count=hapax,
        mean_sequence_length=mean_length,
        cuisine_counts=corpus.cuisine_counts(),
        high_frequency_table=high,
        low_frequency_table=low,
    )
