"""Recipe schema.

A RecipeDB recipe, as used by the paper, is a *sequence* of items drawn from
three substructures — ingredients, cooking processes and utensils — in the
order they occur in the instructions.  The paper's Table I shows examples such
as ``['water', 'red lentil', 'rom tomato', ..., 'smooth', 'stir', 'heat']``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator


class TokenKind(str, enum.Enum):
    """Which RecipeDB substructure a sequence item belongs to."""

    INGREDIENT = "ingredient"
    PROCESS = "process"
    UTENSIL = "utensil"


@dataclass(frozen=True, slots=True)
class Recipe:
    """A single sequentially structured recipe.

    Attributes:
        recipe_id: Unique integer identifier (RecipeDB "Recipe ID" column).
        cuisine: Cuisine label, one of :data:`repro.data.cuisines.CUISINES`.
        continent: Continent label (derived from the cuisine).
        sequence: Ordered list of items (ingredients, then interleaved
            processes/utensils as they occur while cooking).
        kinds: For each item in ``sequence``, which substructure it came
            from.  Always the same length as ``sequence``.
    """

    recipe_id: int
    cuisine: str
    continent: str
    sequence: tuple[str, ...]
    kinds: tuple[TokenKind, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kinds and len(self.kinds) != len(self.sequence):
            raise ValueError(
                "kinds must be empty or the same length as sequence "
                f"({len(self.kinds)} != {len(self.sequence)})"
            )

    def __len__(self) -> int:
        return len(self.sequence)

    def __iter__(self) -> Iterator[str]:
        return iter(self.sequence)

    @property
    def ingredients(self) -> tuple[str, ...]:
        """Items of the sequence tagged as ingredients."""
        return self._items_of_kind(TokenKind.INGREDIENT)

    @property
    def processes(self) -> tuple[str, ...]:
        """Items of the sequence tagged as cooking processes."""
        return self._items_of_kind(TokenKind.PROCESS)

    @property
    def utensils(self) -> tuple[str, ...]:
        """Items of the sequence tagged as utensils."""
        return self._items_of_kind(TokenKind.UTENSIL)

    def _items_of_kind(self, kind: TokenKind) -> tuple[str, ...]:
        if not self.kinds:
            return ()
        return tuple(
            item for item, item_kind in zip(self.sequence, self.kinds) if item_kind is kind
        )

    def as_text(self) -> str:
        """Render the sequence as a whitespace-joined document.

        Multi-word items (e.g. ``"red lentil"``) keep their internal spaces;
        the text form is what the statistical (TF-IDF) pipeline consumes.
        """
        return " ".join(self.sequence)

    def to_dict(self) -> dict:
        """Serialize to a plain dict suitable for JSON."""
        return {
            "recipe_id": self.recipe_id,
            "cuisine": self.cuisine,
            "continent": self.continent,
            "sequence": list(self.sequence),
            "kinds": [kind.value for kind in self.kinds],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Recipe":
        """Inverse of :meth:`to_dict`."""
        return cls(
            recipe_id=int(payload["recipe_id"]),
            cuisine=str(payload["cuisine"]),
            continent=str(payload["continent"]),
            sequence=tuple(payload["sequence"]),
            kinds=tuple(TokenKind(kind) for kind in payload.get("kinds", ())),
        )


def validate_recipes(recipes: Iterable[Recipe]) -> None:
    """Validate a collection of recipes, raising ``ValueError`` on problems.

    Checks for duplicate recipe ids and empty sequences — both would silently
    corrupt downstream statistics if allowed through.
    """
    seen: set[int] = set()
    for recipe in recipes:
        if recipe.recipe_id in seen:
            raise ValueError(f"duplicate recipe_id: {recipe.recipe_id}")
        seen.add(recipe.recipe_id)
        if not recipe.sequence:
            raise ValueError(f"recipe {recipe.recipe_id} has an empty sequence")
