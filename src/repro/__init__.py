"""repro — reproduction of "Classification of Cuisines from Sequentially
Structured Recipes" (Sharma, Upadhyay & Bagler, 2020).

The library treats cuisine classification as text classification over the
*sequential* structure of recipes (ingredients, cooking processes and utensils
in cooking order) and provides:

* a synthetic RecipeDB corpus generator calibrated to the paper's statistics
  (:mod:`repro.data`);
* the Section IV preprocessing and vectorization pipelines (:mod:`repro.text`,
  :mod:`repro.features`);
* the seven Table IV models — Logistic Regression, Naive Bayes, linear SVM,
  Random Forest+AdaBoost, a 2-layer LSTM and BERT/RoBERTa-style transformers
  with in-domain MLM pretraining — built on from-scratch NumPy substrates
  (:mod:`repro.ml`, :mod:`repro.nn`, :mod:`repro.models`);
* the experiment harness and metrics that regenerate the paper's tables and
  figures (:mod:`repro.core`, :mod:`repro.evaluation`).

Quickstart::

    from repro.data import generate_recipedb
    from repro.core import CuisineClassifier

    corpus = generate_recipedb(scale=0.02, seed=7)
    classifier = CuisineClassifier("logreg").fit(corpus)
    print(classifier.evaluate_holdout().as_dict())
    print(classifier.classify(["basmati rice", "turmeric", "simmer", "add", "pot"]))
"""

from repro.core.classifier import CuisineClassifier
from repro.core.experiment import ExperimentConfig, ExperimentRunner, run_table_iv_experiment
from repro.data.generator import generate_recipedb

__version__ = "1.0.0"

__all__ = [
    "CuisineClassifier",
    "ExperimentConfig",
    "ExperimentRunner",
    "run_table_iv_experiment",
    "generate_recipedb",
    "__version__",
]
