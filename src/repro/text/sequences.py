"""Sequence encoding and padding for the neural models.

The LSTM and transformer classifiers consume fixed-length integer id
sequences.  This module converts token sequences into padded id matrices plus
attention masks, optionally prepending a ``[CLS]`` token whose final hidden
state is used for classification (as in BERT/RoBERTa).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.text.vocabulary import Vocabulary


def pad_sequences(
    sequences: Sequence[Sequence[int]],
    max_length: int,
    pad_value: int = 0,
    truncate: str = "right",
) -> tuple[np.ndarray, np.ndarray]:
    """Pad/truncate integer sequences to *max_length*.

    Args:
        sequences: The id sequences.
        max_length: Output length.
        pad_value: Fill value for padding.
        truncate: ``"right"`` keeps the beginning of over-long sequences,
            ``"left"`` keeps the end.

    Returns:
        ``(ids, mask)`` where ``ids`` has shape ``(n, max_length)`` and
        ``mask`` is 1.0 over real tokens, 0.0 over padding.
    """
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length}")
    if truncate not in ("right", "left"):
        raise ValueError(f"truncate must be 'right' or 'left', got {truncate!r}")
    n = len(sequences)
    ids = np.full((n, max_length), pad_value, dtype=np.int64)
    mask = np.zeros((n, max_length), dtype=np.float64)
    for row, sequence in enumerate(sequences):
        seq = list(sequence)
        if len(seq) > max_length:
            seq = seq[:max_length] if truncate == "right" else seq[-max_length:]
        ids[row, : len(seq)] = seq
        mask[row, : len(seq)] = 1.0
    return ids, mask


@dataclass
class EncodedBatch:
    """A batch of encoded sequences ready for a neural model."""

    ids: np.ndarray
    mask: np.ndarray

    def __len__(self) -> int:
        return self.ids.shape[0]

    @property
    def max_length(self) -> int:
        return self.ids.shape[1]


class SequenceEncoder:
    """Encodes token sequences into padded id matrices using a vocabulary."""

    def __init__(
        self,
        vocabulary: Vocabulary,
        max_length: int = 64,
        add_cls: bool = False,
        truncate: str = "right",
    ) -> None:
        if max_length < 2:
            raise ValueError("max_length must be at least 2")
        self.vocabulary = vocabulary
        self.max_length = max_length
        self.add_cls = add_cls
        self.truncate = truncate

    def encode(self, documents: Sequence[Sequence[str]]) -> EncodedBatch:
        """Encode tokenized documents into a padded batch."""
        encoded: list[list[int]] = []
        for tokens in documents:
            ids = self.vocabulary.encode(tokens)
            if self.add_cls:
                ids = [self.vocabulary.cls_id] + ids
            encoded.append(ids)
        ids, mask = pad_sequences(
            encoded,
            max_length=self.max_length,
            pad_value=self.vocabulary.pad_id,
            truncate=self.truncate,
        )
        return EncodedBatch(ids=ids, mask=mask)

    def encode_one(self, tokens: Sequence[str]) -> EncodedBatch:
        """Encode a single tokenized document."""
        return self.encode([tokens])
