"""End-to-end preprocessing pipeline (Section IV of the paper).

Combines cleaning, tokenization and lemmatization into a single configurable
transformation from raw :class:`~repro.data.schema.Recipe` objects (or raw
item sequences) to token sequences and document strings.

The transformation itself lives in :mod:`repro.text.stages` as a chain of
composable, picklable stage objects — the form the sharded corpus engine
ships to worker processes.  :class:`PreprocessingPipeline` is a thin facade
over that chain with the original monolithic API and identical outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.data.recipedb import RecipeDB
from repro.data.schema import Recipe
from repro.text.stages import StageChain


@dataclass(frozen=True)
class PipelineConfig:
    """Configuration of the preprocessing pipeline.

    Attributes:
        lowercase: Lower-case all items.
        remove_digits_symbols: Apply the paper's digit/symbol removal.
        lemmatize: Apply the rule-based lemmatizer to every word.
        split_items: Whether multi-word items are split into word tokens
            (used by TF-IDF) or kept as single item tokens joined with
            ``item_separator`` (used by the sequential models).
        item_separator: Joiner for multi-word items when they are not split.
    """

    lowercase: bool = True
    remove_digits_symbols: bool = True
    lemmatize: bool = True
    split_items: bool = False
    item_separator: str = "_"

    def stage_chain(self) -> StageChain:
        """The equivalent composable stage chain (see :mod:`repro.text.stages`)."""
        return StageChain.from_config(self)


class PreprocessingPipeline:
    """Transforms recipes into cleaned, lemmatized token sequences.

    A facade over the compiled :class:`~repro.text.stages.StageChain`; the
    chain is built once per pipeline instance so its lemmatizer memoisation
    cache is shared across every recipe the pipeline processes.
    """

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config or PipelineConfig()
        self.chain = self.config.stage_chain()

    # ------------------------------------------------------------------
    # item / sequence level
    # ------------------------------------------------------------------
    def process_item(self, item: str) -> list[str]:
        """Clean, tokenize and lemmatize a single recipe item into words."""
        return self.chain.run_item(item)

    def process_sequence(self, sequence: Iterable[str]) -> list[str]:
        """Process a recipe item sequence into the final token sequence."""
        return self.chain.run_sequence(sequence)

    # ------------------------------------------------------------------
    # recipe / corpus level
    # ------------------------------------------------------------------
    def process_recipe(self, recipe: Recipe) -> list[str]:
        """Token sequence of a single recipe."""
        return self.chain.run_sequence(recipe.sequence)

    def process_corpus(self, corpus: RecipeDB | Sequence[Recipe]) -> list[list[str]]:
        """Token sequences for every recipe of a corpus, in order."""
        return self.chain.run_recipes(corpus)

    def documents(self, corpus: RecipeDB | Sequence[Recipe]) -> list[str]:
        """Whitespace-joined document strings (the TF-IDF input form)."""
        return [" ".join(tokens) for tokens in self.process_corpus(corpus)]


def default_statistical_pipeline() -> PreprocessingPipeline:
    """The pipeline configuration used for the statistical (TF-IDF) models."""
    return PreprocessingPipeline(PipelineConfig(split_items=True))


def default_sequential_pipeline() -> PreprocessingPipeline:
    """The pipeline configuration used for the sequential (LSTM/transformer) models."""
    return PreprocessingPipeline(PipelineConfig(split_items=False))
