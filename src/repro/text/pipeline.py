"""End-to-end preprocessing pipeline (Section IV of the paper).

Combines cleaning, tokenization and lemmatization into a single configurable
transformation from raw :class:`~repro.data.schema.Recipe` objects (or raw
item sequences) to token sequences and document strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.data.recipedb import RecipeDB
from repro.data.schema import Recipe
from repro.text.cleaning import clean_item
from repro.text.lemmatizer import Lemmatizer
from repro.text.tokenizer import tokenize


@dataclass(frozen=True)
class PipelineConfig:
    """Configuration of the preprocessing pipeline.

    Attributes:
        lowercase: Lower-case all items.
        remove_digits_symbols: Apply the paper's digit/symbol removal.
        lemmatize: Apply the rule-based lemmatizer to every word.
        split_items: Whether multi-word items are split into word tokens
            (used by TF-IDF) or kept as single item tokens joined with
            ``item_separator`` (used by the sequential models).
        item_separator: Joiner for multi-word items when they are not split.
    """

    lowercase: bool = True
    remove_digits_symbols: bool = True
    lemmatize: bool = True
    split_items: bool = False
    item_separator: str = "_"


class PreprocessingPipeline:
    """Transforms recipes into cleaned, lemmatized token sequences."""

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config or PipelineConfig()
        self._lemmatizer = Lemmatizer()

    # ------------------------------------------------------------------
    # item / sequence level
    # ------------------------------------------------------------------
    def process_item(self, item: str) -> list[str]:
        """Clean, tokenize and lemmatize a single recipe item into words."""
        cfg = self.config
        if cfg.remove_digits_symbols:
            item = clean_item(item, lowercase=cfg.lowercase)
        elif cfg.lowercase:
            item = item.lower()
        words = tokenize(item, lowercase=cfg.lowercase)
        if cfg.lemmatize:
            words = self._lemmatizer.lemmatize_all(words)
        return words

    def process_sequence(self, sequence: Iterable[str]) -> list[str]:
        """Process a recipe item sequence into the final token sequence."""
        cfg = self.config
        tokens: list[str] = []
        for item in sequence:
            words = self.process_item(item)
            if not words:
                continue
            if cfg.split_items:
                tokens.extend(words)
            else:
                tokens.append(cfg.item_separator.join(words))
        return tokens

    # ------------------------------------------------------------------
    # recipe / corpus level
    # ------------------------------------------------------------------
    def process_recipe(self, recipe: Recipe) -> list[str]:
        """Token sequence of a single recipe."""
        return self.process_sequence(recipe.sequence)

    def process_corpus(self, corpus: RecipeDB | Sequence[Recipe]) -> list[list[str]]:
        """Token sequences for every recipe of a corpus, in order."""
        return [self.process_recipe(recipe) for recipe in corpus]

    def documents(self, corpus: RecipeDB | Sequence[Recipe]) -> list[str]:
        """Whitespace-joined document strings (the TF-IDF input form)."""
        return [" ".join(tokens) for tokens in self.process_corpus(corpus)]


def default_statistical_pipeline() -> PreprocessingPipeline:
    """The pipeline configuration used for the statistical (TF-IDF) models."""
    return PreprocessingPipeline(PipelineConfig(split_items=True))


def default_sequential_pipeline() -> PreprocessingPipeline:
    """The pipeline configuration used for the sequential (LSTM/transformer) models."""
    return PreprocessingPipeline(PipelineConfig(split_items=False))
