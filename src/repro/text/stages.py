"""Composable preprocessing stages (the Section IV pipeline, decomposed).

The monolithic per-recipe loop of :class:`~repro.text.pipeline.PreprocessingPipeline`
is built from four small, picklable, fingerprintable stage objects:

* :class:`CleanStage` — digit/symbol removal (``clean_item``);
* :class:`TokenizeStage` — word extraction;
* :class:`LemmatizeStage` — suffix-rule lemmatization;
* :class:`JoinStage` — per-item word lists → the final token sequence
  (split into words for TF-IDF, or joined into single item tokens for the
  sequential models).

A :class:`StageChain` bundles an item-level stage sequence with a terminal
join stage.  Chains are plain frozen dataclasses: they pickle cheaply (the
lemmatizer's memoisation cache is transient and rebuilt in each worker), hash
deterministically through :func:`repro.pipeline.fingerprint.stable_hash`, and
produce **byte-identical** output to the original monolithic pipeline — the
equivalence contract the sharded corpus engine depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.text.cleaning import clean_item
from repro.text.lemmatizer import Lemmatizer
from repro.text.tokenizer import tokenize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.schema import Recipe
    from repro.text.pipeline import PipelineConfig


@dataclass(frozen=True)
class Stage:
    """An item-level transformation over a list of word strings.

    Every stage maps a list of strings to a list of strings; a recipe item
    enters the chain as the single-element list ``[item]`` and leaves it as
    the item's word tokens.  Subclasses are frozen dataclasses so that equal
    configurations are equal objects, pickle across process boundaries and
    fingerprint stably field by field.
    """

    def run(self, words: list[str]) -> list[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class CleanStage(Stage):
    """Digit/symbol removal and whitespace normalisation per string."""

    lowercase: bool = True

    def run(self, words: list[str]) -> list[str]:
        return [clean_item(word, lowercase=self.lowercase) for word in words]


@dataclass(frozen=True)
class LowercaseStage(Stage):
    """Plain lower-casing (the ``remove_digits_symbols=False`` path)."""

    def run(self, words: list[str]) -> list[str]:
        return [word.lower() for word in words]


@dataclass(frozen=True)
class TokenizeStage(Stage):
    """Split every string into word tokens, flattening the results."""

    lowercase: bool = True

    def run(self, words: list[str]) -> list[str]:
        tokens: list[str] = []
        for word in words:
            tokens.extend(tokenize(word, lowercase=self.lowercase))
        return tokens


@dataclass(frozen=True)
class LemmatizeStage(Stage):
    """Lemmatize every word with the rule-based lemmatizer.

    The :class:`~repro.text.lemmatizer.Lemmatizer` instance (which carries a
    memoisation cache) is created lazily and excluded from pickling, so a
    stage shipped to a worker process starts with a fresh cache — lemmas are
    pure functions of the word, so outputs are unaffected.
    """

    extra_exceptions: tuple[tuple[str, str], ...] = ()

    def _lemmatizer_instance(self) -> Lemmatizer:
        lemmatizer = self.__dict__.get("_lemmatizer")
        if lemmatizer is None:
            lemmatizer = Lemmatizer(extra_exceptions=dict(self.extra_exceptions) or None)
            object.__setattr__(self, "_lemmatizer", lemmatizer)
        return lemmatizer

    def run(self, words: list[str]) -> list[str]:
        return self._lemmatizer_instance().lemmatize_all(words)

    def __getstate__(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)


@dataclass(frozen=True)
class JoinStage:
    """Assemble per-item word lists into the final token sequence.

    Items whose word list came out empty are dropped; the rest either extend
    the sequence word by word (``split_items=True``, the TF-IDF form) or
    contribute one joined item token (the sequential-model form).
    """

    split_items: bool = False
    item_separator: str = "_"

    def assemble(self, item_words: Iterable[list[str]]) -> list[str]:
        tokens: list[str] = []
        for words in item_words:
            if not words:
                continue
            if self.split_items:
                tokens.extend(words)
            else:
                tokens.append(self.item_separator.join(words))
        return tokens


@dataclass(frozen=True)
class StageChain:
    """An ordered item-level stage sequence plus the terminal join stage.

    The chain is the shippable form of a preprocessing configuration: built
    once from a :class:`~repro.text.pipeline.PipelineConfig`
    (:meth:`from_config`), pickled to worker processes by the corpus engine,
    and fingerprinted (via ``stable_hash``) as part of artifact keys.
    """

    stages: tuple[Stage, ...] = field(default_factory=tuple)
    join: JoinStage = field(default_factory=JoinStage)

    @classmethod
    def from_config(cls, config: "PipelineConfig") -> "StageChain":
        """Compile *config* into the equivalent stage chain.

        The compilation mirrors the original monolithic ``process_item``
        exactly: cleaning only when ``remove_digits_symbols`` is set, the
        plain-lowercase fallback otherwise, tokenization always, and
        lemmatization when enabled.
        """
        stages: list[Stage] = []
        if config.remove_digits_symbols:
            stages.append(CleanStage(lowercase=config.lowercase))
        elif config.lowercase:
            stages.append(LowercaseStage())
        stages.append(TokenizeStage(lowercase=config.lowercase))
        if config.lemmatize:
            stages.append(LemmatizeStage())
        return cls(
            stages=tuple(stages),
            join=JoinStage(
                split_items=config.split_items, item_separator=config.item_separator
            ),
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_item(self, item: str) -> list[str]:
        """The word tokens of a single recipe item."""
        words = [item]
        for stage in self.stages:
            words = stage.run(words)
        return words

    def run_sequence(self, sequence: Iterable[str]) -> list[str]:
        """The final token sequence of one recipe item sequence."""
        return self.join.assemble(self.run_item(item) for item in sequence)

    def run_recipes(self, recipes: Iterable["Recipe"]) -> list[list[str]]:
        """Token sequences for an iterable of recipes, in order."""
        return [self.run_sequence(recipe.sequence) for recipe in recipes]
