"""Token vocabulary with frequency-based pruning and special tokens.

Used by the sequential models (LSTM, transformers) to map tokens to integer
ids, and by the MLM pretraining objective which needs ``[MASK]`` / ``[PAD]`` /
``[UNK]`` / ``[CLS]`` special tokens.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Sequence

PAD_TOKEN = "[PAD]"
UNK_TOKEN = "[UNK]"
CLS_TOKEN = "[CLS]"
MASK_TOKEN = "[MASK]"

#: Special tokens, in the id order they are always assigned.
SPECIAL_TOKENS: tuple[str, ...] = (PAD_TOKEN, UNK_TOKEN, CLS_TOKEN, MASK_TOKEN)


class Vocabulary:
    """A bidirectional token <-> id mapping.

    Ids 0..3 are always the special tokens (PAD, UNK, CLS, MASK); regular
    tokens start at id 4 and are ordered by decreasing corpus frequency (ties
    broken alphabetically) so truncating the vocabulary keeps the most common
    tokens.
    """

    def __init__(self, tokens: Iterable[str] = (), include_special: bool = True) -> None:
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        self._include_special = include_special
        if include_special:
            for token in SPECIAL_TOKENS:
                self._add(token)
        for token in tokens:
            self.add(token)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        documents: Iterable[Sequence[str]],
        min_freq: int = 1,
        max_size: int | None = None,
        include_special: bool = True,
    ) -> "Vocabulary":
        """Build a vocabulary from tokenized documents.

        Args:
            documents: Iterable of token sequences.
            min_freq: Drop tokens occurring fewer than this many times.
            max_size: Cap on the number of *regular* tokens (special tokens
                are not counted against the cap).
            include_special: Whether to reserve the special tokens.

        Returns:
            The constructed vocabulary.
        """
        counts: Counter = Counter()
        for document in documents:
            counts.update(document)
        eligible = [
            (token, freq) for token, freq in counts.items() if freq >= min_freq
        ]
        eligible.sort(key=lambda item: (-item[1], item[0]))
        if max_size is not None:
            eligible = eligible[:max_size]
        vocab = cls(include_special=include_special)
        for token, _ in eligible:
            vocab.add(token)
        vocab._frequencies = {token: counts[token] for token in vocab.tokens()}
        return vocab

    def add(self, token: str) -> int:
        """Add *token* if absent; return its id."""
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        return self._add(token)

    def _add(self, token: str) -> int:
        token_id = len(self._id_to_token)
        self._token_to_id[token] = token_id
        self._id_to_token.append(token)
        return token_id

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_token)

    def tokens(self) -> tuple[str, ...]:
        """All tokens in id order."""
        return tuple(self._id_to_token)

    def token_to_id(self, token: str) -> int:
        """Id of *token*, falling back to the UNK id for unknown tokens."""
        token_id = self._token_to_id.get(token)
        if token_id is not None:
            return token_id
        if self._include_special:
            return self._token_to_id[UNK_TOKEN]
        raise KeyError(f"unknown token {token!r} and no UNK token reserved")

    def id_to_token(self, token_id: int) -> str:
        """Token with id *token_id*."""
        return self._id_to_token[token_id]

    def encode(self, tokens: Sequence[str]) -> list[int]:
        """Map a token sequence to ids (unknown tokens become UNK)."""
        return [self.token_to_id(token) for token in tokens]

    def decode(self, ids: Sequence[int]) -> list[str]:
        """Inverse of :meth:`encode`."""
        return [self.id_to_token(token_id) for token_id in ids]

    # ------------------------------------------------------------------
    # special token ids
    # ------------------------------------------------------------------
    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK_TOKEN]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[CLS_TOKEN]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[MASK_TOKEN]

    @property
    def special_ids(self) -> tuple[int, ...]:
        """Ids of all reserved special tokens."""
        if not self._include_special:
            return ()
        return tuple(self._token_to_id[token] for token in SPECIAL_TOKENS)

    def frequency(self, token: str) -> int:
        """Corpus frequency recorded at build time (0 if unknown or not built)."""
        return getattr(self, "_frequencies", {}).get(token, 0)

    # ------------------------------------------------------------------
    # persistence (the artifact protocol)
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """JSON-able state: tokens in id order plus build-time frequencies."""
        return {
            "include_special": self._include_special,
            "tokens": list(self._id_to_token),
            "frequencies": dict(getattr(self, "_frequencies", {})),
        }

    @classmethod
    def from_state(cls, state: dict) -> "Vocabulary":
        """Rebuild a vocabulary with identical token -> id assignments."""
        vocabulary = cls(include_special=state["include_special"])
        for token in state["tokens"]:
            vocabulary.add(token)
        frequencies = state.get("frequencies")
        if frequencies:
            vocabulary._frequencies = {
                token: int(count) for token, count in frequencies.items()
            }
        return vocabulary
