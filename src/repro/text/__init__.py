"""Text preprocessing substrate.

Implements the preprocessing described in Section IV of the paper: digit and
symbol removal, tokenization, lemmatization, vocabulary construction and
sequence encoding/padding for the neural models.
"""

from repro.text.cleaning import clean_item, clean_sequence, remove_digits_and_symbols
from repro.text.lemmatizer import Lemmatizer, lemmatize
from repro.text.pipeline import PipelineConfig, PreprocessingPipeline
from repro.text.sequences import SequenceEncoder, pad_sequences
from repro.text.stages import (
    CleanStage,
    JoinStage,
    LemmatizeStage,
    LowercaseStage,
    Stage,
    StageChain,
    TokenizeStage,
)
from repro.text.tokenizer import tokenize, tokenize_sequence
from repro.text.vocabulary import Vocabulary

__all__ = [
    "CleanStage",
    "JoinStage",
    "LemmatizeStage",
    "LowercaseStage",
    "PipelineConfig",
    "Stage",
    "StageChain",
    "TokenizeStage",
    "clean_item",
    "clean_sequence",
    "remove_digits_and_symbols",
    "Lemmatizer",
    "lemmatize",
    "PreprocessingPipeline",
    "SequenceEncoder",
    "pad_sequences",
    "tokenize",
    "tokenize_sequence",
    "Vocabulary",
]
