"""Cleaning of raw recipe items.

Section IV of the paper: "the digits or symbols were omitted from the items to
only keep words, thereby reducing the noise in this highly sparse dataset".
"""

from __future__ import annotations

import re
from typing import Iterable

_NON_WORD = re.compile(r"[^a-zA-Z\s]+")
_MULTI_SPACE = re.compile(r"\s+")


def remove_digits_and_symbols(text: str) -> str:
    """Strip digits and punctuation/symbols from *text*, keeping letters and spaces."""
    cleaned = _NON_WORD.sub(" ", text)
    return _MULTI_SPACE.sub(" ", cleaned).strip()


def clean_item(item: str, lowercase: bool = True) -> str:
    """Clean a single recipe item (ingredient phrase, process or utensil).

    Applies digit/symbol removal, whitespace normalisation and (by default)
    lower-casing.  May return an empty string when the item contained nothing
    but digits/symbols; callers should drop such items.
    """
    cleaned = remove_digits_and_symbols(item)
    return cleaned.lower() if lowercase else cleaned


def clean_sequence(sequence: Iterable[str], lowercase: bool = True) -> list[str]:
    """Clean every item of a recipe sequence, dropping items that become empty."""
    cleaned = (clean_item(item, lowercase=lowercase) for item in sequence)
    return [item for item in cleaned if item]
