"""Tokenization.

Recipe items are short phrases ("red lentil", "olive oil").  The statistical
pipeline tokenizes them into words for TF-IDF, while the sequential pipeline
can either keep whole items as single tokens (the default, preserving the
item-level sequence of the paper) or split them into words.
"""

from __future__ import annotations

import re
from typing import Iterable

_TOKEN = re.compile(r"[a-zA-Z']+")


def tokenize(text: str, lowercase: bool = True) -> list[str]:
    """Split *text* into word tokens.

    Only alphabetic runs (plus apostrophes) count as tokens, matching the
    paper's digits-and-symbols removal.
    """
    tokens = _TOKEN.findall(text)
    if lowercase:
        tokens = [token.lower() for token in tokens]
    return tokens


def tokenize_sequence(
    sequence: Iterable[str],
    lowercase: bool = True,
    split_items: bool = False,
    item_separator: str = "_",
) -> list[str]:
    """Tokenize a recipe item sequence.

    Args:
        sequence: The recipe items in order.
        lowercase: Lower-case the output tokens.
        split_items: If true, multi-word items are split into their words
            ("red lentil" -> ["red", "lentil"]); if false (default) each item
            becomes a single token with internal spaces replaced by
            *item_separator* ("red lentil" -> "red_lentil"), preserving the
            item-level sequence the paper feeds to the sequential models.
        item_separator: Joiner used when ``split_items`` is false.

    Returns:
        The ordered token list.
    """
    tokens: list[str] = []
    for item in sequence:
        words = tokenize(item, lowercase=lowercase)
        if not words:
            continue
        if split_items:
            tokens.extend(words)
        else:
            tokens.append(item_separator.join(words))
    return tokens
