"""Rule-based English lemmatizer.

The paper lemmatizes the corpus after tokenization ("tokenization followed by
lemmatization of the dataset, resulting in 20,400 distinct entities").  The
usual tool for this is NLTK's WordNet lemmatizer; WordNet is not available
offline, so this module implements a deterministic suffix-rule lemmatizer that
covers the inflections that actually occur in culinary text: plural nouns
("tomatoes" -> "tomato"), gerunds and past participles of cooking verbs
("simmering" -> "simmer", "chopped" -> "chop").

The rules are intentionally conservative: when stripping a suffix would
produce a word that is too short or obviously wrong, the original form is
kept.  A small exception dictionary handles irregular forms common in recipes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable

#: Irregular or awkward forms seen in recipe text.
_EXCEPTIONS: dict[str, str] = {
    "leaves": "leaf",
    "loaves": "loaf",
    "halves": "half",
    "knives": "knife",
    "tomatoes": "tomato",
    "potatoes": "potato",
    "mangoes": "mango",
    "children": "child",
    "men": "man",
    "women": "woman",
    "feet": "foot",
    "teeth": "tooth",
    "geese": "goose",
    "mice": "mouse",
    "dice": "die",
    "olives": "olive",
    "chives": "chive",
    "cloves": "clove",
    "cooking": "cook",
    "baking": "bake",
    "frying": "fry",
    "fried": "fry",
    "dried": "dry",
    "dries": "dry",
    "made": "make",
    "done": "do",
    "cut": "cut",
    "best": "good",
    "better": "good",
    "hotter": "hot",
    "larger": "large",
    "whisked": "whisk",
}

#: Words that end in what looks like an inflectional suffix but are lemmas.
_PROTECTED: frozenset[str] = frozenset(
    {
        "couscous", "molasses", "swiss", "brussels", "asparagus", "hummus",
        "citrus", "octopus", "gas", "bass", "glass", "grass", "press",
        "process", "address", "less", "bless", "cress", "watercress",
        "species", "series", "anise", "cheese", "please", "rice", "juice",
        "sauce", "slice", "dice", "ice", "nice", "spice", "puree", "free",
        "three", "coffee", "toffee", "ghee", "bring", "string", "spring",
        "ring", "king", "wing", "thing", "icing", "dressing", "pudding",
        "dumpling", "filling", "topping", "seasoning", "shortening", "red",
        "bread", "seed", "need", "feed", "blend", "add", "fold", "shred",
        "spread", "bed", "shed", "blessed", "naked", "wicked",
    }
)

_VOWELS = "aeiou"


class Lemmatizer:
    """Deterministic suffix-rule lemmatizer with an exception dictionary.

    Args:
        extra_exceptions: Additional irregular forms merged over the built-in
            exception dictionary.
        cache_size: Bound on the memoisation cache.  Corpora repeat the same
            tokens constantly (``add`` alone occurs 188k times at full scale),
            so the rule engine memoises lemmas in an LRU dict; the bound keeps
            adversarial vocabularies (e.g. hapax floods) from growing memory
            without limit.
    """

    def __init__(
        self, extra_exceptions: dict[str, str] | None = None, cache_size: int = 32768
    ) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self._exceptions = dict(_EXCEPTIONS)
        if extra_exceptions:
            self._exceptions.update(extra_exceptions)
        self._cache: OrderedDict[str, str] = OrderedDict()
        self._cache_size = cache_size
        #: The memoisation cache is shared by every thread using this
        #: instance (the feature store computes artifacts concurrently);
        #: OrderedDict reordering is not safe under concurrent mutation.
        self._cache_lock = threading.Lock()

    def lemmatize(self, word: str) -> str:
        """Return the lemma of a single lower-case word."""
        if not word:
            return word
        with self._cache_lock:
            cached = self._cache.get(word)
            if cached is not None:
                self._cache.move_to_end(word)
                return cached
        lemma = self._lemmatize_uncached(word)
        with self._cache_lock:
            self._cache[word] = lemma
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return lemma

    def lemmatize_all(self, words: Iterable[str]) -> list[str]:
        """Lemmatize every word in *words*, preserving order."""
        return [self.lemmatize(word) for word in words]

    def lemmatize_phrase(self, phrase: str) -> str:
        """Lemmatize every word of a multi-word phrase ("red lentils" -> "red lentil")."""
        return " ".join(self.lemmatize(word) for word in phrase.split())

    # ------------------------------------------------------------------
    def _lemmatize_uncached(self, word: str) -> str:
        # Iterate to a fixed point (bounded) so lemmatization is idempotent
        # even for unusual words where one rule's output matches another rule.
        current = word
        for _ in range(4):
            reduced = self._apply_rules(current)
            if reduced == current:
                break
            current = reduced
        return current

    def _apply_rules(self, word: str) -> str:
        if word in self._exceptions:
            return self._exceptions[word]
        if word in _PROTECTED or len(word) <= 3:
            return word
        for rule in (self._strip_plural, self._strip_gerund, self._strip_past):
            lemma = rule(word)
            if lemma is not None:
                return lemma
        return word

    @staticmethod
    def _strip_plural(word: str) -> str | None:
        if word.endswith("ies") and len(word) > 4:
            return word[:-3] + "y"
        if word.endswith(("ches", "shes", "xes", "sses", "zes")) and len(word) > 4:
            return word[:-2]
        if word.endswith("oes") and len(word) > 4:
            return word[:-2]
        if word.endswith("s") and not word.endswith(("ss", "us", "is")) and len(word) > 3:
            return word[:-1]
        return None

    @staticmethod
    def _strip_gerund(word: str) -> str | None:
        if not word.endswith("ing") or len(word) <= 5:
            return None
        stem = word[:-3]
        if len(stem) >= 3 and stem[-1] == stem[-2] and stem[-1] not in _VOWELS + "sl":
            return stem[:-1]  # chopping -> chop
        if not any(ch in _VOWELS for ch in stem):
            return word
        if stem.endswith(("at", "iv", "ak", "uc", "in", "ast", "as")) and len(stem) >= 3:
            return stem + "e"  # baking handled by exceptions; grating -> grate
        return stem

    @staticmethod
    def _strip_past(word: str) -> str | None:
        if not word.endswith("ed") or len(word) <= 4:
            return None
        stem = word[:-2]
        if not any(ch in _VOWELS for ch in stem):
            return word
        if len(stem) >= 3 and stem[-1] == stem[-2] and stem[-1] not in _VOWELS + "sl":
            return stem[:-1]  # chopped -> chop
        if stem.endswith(("at", "iv", "uc", "ast", "as", "in")):
            return stem + "e"  # grated -> grate, marinated -> marinate
        if stem.endswith("i"):
            return stem[:-1] + "y"  # tried -> try
        return stem


_DEFAULT = Lemmatizer()


def lemmatize(word: str) -> str:
    """Module-level convenience wrapper around a shared :class:`Lemmatizer`."""
    return _DEFAULT.lemmatize(word)
