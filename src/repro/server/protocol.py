"""Dependency-free HTTP/1.1 wire protocol over asyncio streams.

The serving frontier deliberately avoids web frameworks: the whole protocol
surface it needs — request-line + header parsing, ``Content-Length`` bodies,
keep-alive and pipelining semantics, bounded header/body sizes — fits in a
few small, testable functions over :class:`asyncio.StreamReader` /
:class:`asyncio.StreamWriter`.

Requests are read strictly in order off each connection, so HTTP/1.1
pipelining works by construction: responses are written back in arrival
order.  Malformed or over-limit input raises :class:`HTTPError`, which the
server layer turns into a structured JSON error response (never a traceback
on the wire).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Mapping

#: Reason phrases for every status the server emits.
STATUS_PHRASES: dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

_MAX_REQUEST_LINE = 8192


class HTTPError(Exception):
    """A protocol- or application-level error with a structured payload.

    Rendered to the client as a JSON body ``{"error": {"code", "message",
    "field"?}}`` with the carried status — malformed input never surfaces as
    a traceback on the wire.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        field: str | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.field = field

    def payload(self) -> dict:
        error: dict = {"code": self.code, "message": self.message}
        if self.field is not None:
            error["field"] = self.field
        return {"error": error}


@dataclass
class HTTPRequest:
    """One parsed request: method, split path, lowercase headers, raw body."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def segments(self) -> tuple[str, ...]:
        return tuple(part for part in self.path.split("/") if part)

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self):
        """The body decoded as JSON; :class:`HTTPError` 400 when invalid."""
        if not self.body:
            raise HTTPError(400, "empty_body", "request body must be a JSON document")
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(
                400, "invalid_json", f"request body is not valid JSON: {exc}"
            ) from None


async def read_request(
    reader,
    *,
    max_header_bytes: int = 16384,
    max_body_bytes: int = 1048576,
) -> HTTPRequest | None:
    """Read one request off *reader*; ``None`` on a clean EOF between requests.

    Raises :class:`HTTPError` on malformed framing, over-limit headers
    (431), over-limit bodies (413) or unsupported transfer encodings (501);
    ``ConnectionError`` / ``asyncio.IncompleteReadError`` mid-request
    propagate (the peer vanished, there is nobody to answer).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise
    except asyncio.LimitOverrunError:
        raise HTTPError(
            431, "headers_too_large", f"request head exceeds {max_header_bytes} bytes"
        ) from None
    if len(head) > max_header_bytes:
        raise HTTPError(
            431, "headers_too_large", f"request head exceeds {max_header_bytes} bytes"
        )

    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
    except UnicodeDecodeError:  # latin-1 decodes anything; defensive only
        raise HTTPError(400, "bad_request_line", "undecodable request head") from None
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HTTPError(
            400, "bad_request_line", f"malformed request line {request_line!r}"
        )
    method, target, _version = parts
    if len(target) > _MAX_REQUEST_LINE:
        raise HTTPError(400, "bad_request_line", "request target too long")

    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise HTTPError(400, "bad_header", f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HTTPError(
            501, "chunked_unsupported", "chunked transfer encoding is not supported"
        )

    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
            if length < 0:
                raise ValueError
        except ValueError:
            raise HTTPError(
                400, "bad_content_length", f"invalid Content-Length {raw_length!r}"
            ) from None
        if length > max_body_bytes:
            raise HTTPError(
                413,
                "body_too_large",
                f"request body of {length} bytes exceeds the {max_body_bytes}-byte limit",
            )
        if length:
            body = await reader.readexactly(length)

    # Strip any query string: the API surface is path + JSON bodies.
    path = target.split("?", 1)[0]
    return HTTPRequest(method=method.upper(), path=path, headers=headers, body=body)


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Mapping[str, str] | None = None,
) -> bytes:
    """Serialize one HTTP/1.1 response (explicit ``Content-Length`` framing)."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int,
    payload,
    *,
    keep_alive: bool = True,
    extra_headers: Mapping[str, str] | None = None,
) -> bytes:
    """A JSON response with deterministic key order (sorted)."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return render_response(
        status, body, keep_alive=keep_alive, extra_headers=extra_headers
    )
