"""``repro-serve`` — stand up the HTTP serving frontier from the command line.

Two ways to get models behind the server:

* ``repro-serve --export-dir runs/export`` deploys every bundle under an
  experiment export directory (one route per bundle name, all at
  ``--version``), exactly like ``ModelGateway.deploy_export_dir``;
* ``repro-serve --demo`` trains a small logistic-regression model on a
  synthetic corpus in-process and deploys it as ``cuisine@v1`` — zero
  artifacts needed, the smoke-test and quick-start path.

The process serves until SIGTERM/SIGINT, then drains gracefully: the
listener closes, in-flight requests finish, and the gateway (and its
prediction service) shut down before exit.  ``--ready-file`` writes a small
JSON document (host, port, pid) once the socket is bound, so scripts can
start the server on an ephemeral port (``--port 0``) and discover where it
landed.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import os
import signal
import sys
import tempfile
from pathlib import Path

from repro.gateway.gateway import ModelGateway
from repro.server.app import ModelServer

logger = logging.getLogger("repro.server")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve repro model bundles over HTTP (asyncio, stdlib-only).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--export-dir",
        help="experiment export directory; every bundle becomes a route",
    )
    source.add_argument(
        "--demo",
        action="store_true",
        help="train a small demo model in-process and serve it as cuisine@v1",
    )
    parser.add_argument("--version", default="v1", help="version label for deployed bundles")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000, help="0 binds an ephemeral port")
    parser.add_argument(
        "--admin-token",
        default=os.environ.get("REPRO_ADMIN_TOKEN"),
        help="enable /admin endpoints guarded by this token "
        "(default: $REPRO_ADMIN_TOKEN; unset disables admin)",
    )
    parser.add_argument("--max-inflight", type=int, default=64)
    parser.add_argument("--max-batch-items", type=int, default=256)
    parser.add_argument("--max-body-bytes", type=int, default=1048576)
    parser.add_argument("--drain-timeout", type=float, default=30.0)
    parser.add_argument("--demo-scale", type=float, default=0.004)
    parser.add_argument("--demo-seed", type=int, default=11)
    parser.add_argument(
        "--ready-file",
        help="write {host, port, pid} JSON here once the socket is bound",
    )
    parser.add_argument("--log-level", default="INFO")
    return parser


def _demo_gateway(scale: float, seed: int, workdir: str) -> ModelGateway:
    """A gateway serving one quickly-trained logreg as ``cuisine@v1``."""
    from repro.core.experiment import ExperimentConfig, ExperimentRunner
    from repro.data import generate_recipedb

    logger.info("demo mode: generating corpus (scale=%s) and training logreg", scale)
    corpus = generate_recipedb(scale=scale, seed=seed)
    config = ExperimentConfig(
        models=("logreg",),
        seed=seed,
        statistical_kwargs={"logreg": {"max_iter": 40}},
        export_dir=workdir,
    )
    ExperimentRunner(config, corpus=corpus).run()
    gateway = ModelGateway()
    gateway.deploy("cuisine", "v1", Path(workdir) / "logreg")
    return gateway


def _export_gateway(export_dir: str, version: str) -> ModelGateway:
    gateway = ModelGateway()
    deployed = gateway.deploy_export_dir(export_dir, version)
    if not deployed:
        gateway.close()
        raise SystemExit(f"no bundles found under {export_dir!r}")
    for route, deployment in sorted(deployed.items()):
        logger.info("deployed %s@%s from %s", route, deployment.version, deployment.source)
    return gateway


async def _serve(server: ModelServer, ready_file: str | None) -> None:
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.request_stop)
        except NotImplementedError:  # non-POSIX event loops
            pass

    def announce() -> None:
        print(f"repro-serve listening on http://{server.host}:{server.port}", flush=True)
        if ready_file:
            Path(ready_file).write_text(
                json.dumps({"host": server.host, "port": server.port, "pid": os.getpid()})
            )

    await server.serve(ready=announce)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper(), logging.INFO),
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    with tempfile.TemporaryDirectory(prefix="repro-serve-demo-") as workdir:
        if args.demo:
            gateway = _demo_gateway(args.demo_scale, args.demo_seed, workdir)
        else:
            gateway = _export_gateway(args.export_dir, args.version)
        server = ModelServer(
            gateway,
            host=args.host,
            port=args.port,
            admin_token=args.admin_token,
            max_inflight=args.max_inflight,
            max_batch_items=args.max_batch_items,
            max_body_bytes=args.max_body_bytes,
            drain_timeout=args.drain_timeout,
            owns_gateway=True,
        )
        try:
            asyncio.run(_serve(server, args.ready_file))
        except KeyboardInterrupt:
            pass
    print("repro-serve drained cleanly", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
