"""``repro-serve`` — stand up the HTTP serving frontier from the command line.

Two ways to get models behind the server:

* ``repro-serve --export-dir runs/export`` deploys every bundle under an
  experiment export directory (one route per bundle name, all at
  ``--version``), exactly like ``ModelGateway.deploy_export_dir``;
* ``repro-serve --demo`` trains a small logistic-regression model on a
  synthetic corpus in-process and deploys it as ``cuisine@v1`` — zero
  artifacts needed, the smoke-test and quick-start path.

The process serves until SIGTERM/SIGINT, then drains gracefully: the
listener closes, in-flight requests finish, and the gateway (and its
prediction service) shut down before exit.  ``--ready-file`` writes a small
JSON document (host, port, pid) once the socket is bound, so scripts can
start the server on an ephemeral port (``--port 0``) and discover where it
landed.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import os
import signal
import socket
import sys
import tempfile
import time
from pathlib import Path

from repro.gateway.gateway import ModelGateway
from repro.server.app import ModelServer

logger = logging.getLogger("repro.server")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve repro model bundles over HTTP (asyncio, stdlib-only).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--export-dir",
        help="experiment export directory; every bundle becomes a route",
    )
    source.add_argument(
        "--demo",
        action="store_true",
        help="train a small demo model in-process and serve it as cuisine@v1",
    )
    parser.add_argument("--version", default="v1", help="version label for deployed bundles")
    parser.add_argument(
        "--route",
        help="serve a single-bundle --export-dir under this route name "
        "instead of the bundle's model name",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000, help="0 binds an ephemeral port")
    parser.add_argument(
        "--socket-fd",
        type=int,
        help="serve on this inherited listening socket instead of binding "
        "--host/--port (cluster worker mode; the fd must be a bound, "
        "listening TCP socket)",
    )
    parser.add_argument(
        "--control-port",
        type=int,
        help="also serve on a private host:control-port listener (0 binds an "
        "ephemeral port) so this process stays individually addressable "
        "behind a shared SO_REUSEPORT data port",
    )
    parser.add_argument(
        "--worker-id",
        type=int,
        help="fleet index reported in /healthz and /metrics server stats",
    )
    parser.add_argument(
        "--mmap-bundles",
        action="store_true",
        help="memory-map bundle arrays (read-only, page-shared across "
        "worker processes) instead of copying them per process",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        help="prediction result-cache entries (0 disables the cache)",
    )
    parser.add_argument(
        "--max-batch-size",
        type=int,
        help="micro-batch size cap of the prediction service worker",
    )
    parser.add_argument(
        "--flush-interval",
        type=float,
        help="seconds the fixed batch policy waits for a micro-batch to "
        "fill after its first request (0 never waits; service default "
        "0.005)",
    )
    parser.add_argument(
        "--batch-policy",
        choices=("fixed", "adaptive"),
        help="micro-batch flush control: 'fixed' (constant "
        "--max-batch-size/--flush-interval, the default) or 'adaptive' "
        "(SLO-aware windows sized from observed queue depth: flush "
        "immediately when idle or deeply backlogged, wait a fraction of "
        "--slo-ms otherwise)",
    )
    parser.add_argument(
        "--slo-ms",
        type=float,
        help="per-request latency objective (milliseconds) the adaptive "
        "batch policy budgets its flush windows from (default 25)",
    )
    parser.add_argument(
        "--service-time",
        type=float,
        default=0.0,
        help="benchmark hook: add this many seconds of synthetic work to "
        "every model pass, pinning per-process capacity independent of "
        "host CPU count",
    )
    parser.add_argument(
        "--admin-token",
        default=os.environ.get("REPRO_ADMIN_TOKEN"),
        help="enable /admin endpoints guarded by this token "
        "(default: $REPRO_ADMIN_TOKEN; unset disables admin)",
    )
    parser.add_argument("--max-inflight", type=int, default=64)
    parser.add_argument("--max-batch-items", type=int, default=256)
    parser.add_argument("--max-body-bytes", type=int, default=1048576)
    parser.add_argument("--drain-timeout", type=float, default=30.0)
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        help="head-sampling rate for request tracing in [0, 1]; slow and "
        "error traces are always kept regardless (tail sampling)",
    )
    parser.add_argument(
        "--trace-slow-ms",
        type=float,
        default=250.0,
        help="latency threshold (ms) above which a trace is always kept",
    )
    parser.add_argument(
        "--trace-seed",
        type=int,
        default=0,
        help="seed of the deterministic trace-id / head-sampling hash",
    )
    parser.add_argument(
        "--no-trace",
        action="store_true",
        help="disable request tracing entirely (requests pay only an "
        "is-enabled check; /debug/traces stays empty)",
    )
    parser.add_argument("--demo-scale", type=float, default=0.004)
    parser.add_argument("--demo-seed", type=int, default=11)
    parser.add_argument(
        "--ready-file",
        help="write {host, port, pid} JSON here once the socket is bound",
    )
    parser.add_argument("--log-level", default="INFO")
    return parser


def train_demo_export(scale: float, seed: int, workdir: str | Path) -> Path:
    """Train the demo logreg into *workdir*; returns the bundle directory.

    Shared by ``repro-serve --demo`` (one process, trains in-line) and
    ``repro-cluster --demo`` (the supervisor trains **once**, then every
    worker loads the same immutable bundle).
    """
    from repro.core.experiment import ExperimentConfig, ExperimentRunner
    from repro.data import generate_recipedb

    logger.info("demo mode: generating corpus (scale=%s) and training logreg", scale)
    corpus = generate_recipedb(scale=scale, seed=seed)
    config = ExperimentConfig(
        models=("logreg",),
        seed=seed,
        statistical_kwargs={"logreg": {"max_iter": 40}},
        export_dir=str(workdir),
    )
    ExperimentRunner(config, corpus=corpus).run()
    return Path(workdir) / "logreg"


def _demo_gateway(scale: float, seed: int, workdir: str, **gateway_kwargs) -> ModelGateway:
    """A gateway serving one quickly-trained logreg as ``cuisine@v1``."""
    bundle = train_demo_export(scale, seed, workdir)
    gateway = ModelGateway(**gateway_kwargs)
    gateway.deploy("cuisine", "v1", bundle)
    return gateway


def _export_gateway(
    export_dir: str, version: str, route: str | None = None, **gateway_kwargs
) -> ModelGateway:
    gateway = ModelGateway(**gateway_kwargs)
    if route is not None:
        from repro.serving.bundle import discover_bundles

        bundles = discover_bundles(export_dir)
        if len(bundles) != 1:
            gateway.close()
            raise SystemExit(
                f"--route needs exactly one bundle under {export_dir!r}, "
                f"found {sorted(bundles)}"
            )
        ((name, path),) = bundles.items()
        deployment = gateway.deploy(route, version, path)
        logger.info("deployed %s@%s from %s", route, deployment.version, path)
        return gateway
    deployed = gateway.deploy_export_dir(export_dir, version)
    if not deployed:
        gateway.close()
        raise SystemExit(f"no bundles found under {export_dir!r}")
    for route_name, deployment in sorted(deployed.items()):
        logger.info(
            "deployed %s@%s from %s", route_name, deployment.version, deployment.source
        )
    return gateway


def _inject_service_time(gateway: ModelGateway, seconds: float) -> None:
    """Pin every deployed model's pass time to at least *seconds*.

    A benchmark hook (``--service-time``): scale-out benchmarks need worker
    capacity bounded by a known per-request service time, not by how many
    host cores the CI machine happens to have.  Both serving paths (fused
    encoder and generic) funnel through ``predict_proba_features``, so the
    sleep applies exactly once per model pass.
    """
    registry = gateway.registry
    for route in registry.routes():
        for version in registry.versions(route):
            model = registry.resolve(route, version).model
            original = model.predict_proba_features

            def slowed(features, *, _original=original):
                time.sleep(seconds)
                return _original(features)

            model.predict_proba_features = slowed


async def _serve(server: ModelServer, ready_file: str | None) -> None:
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.request_stop)
        except NotImplementedError:  # non-POSIX event loops
            pass

    def announce() -> None:
        print(f"repro-serve listening on http://{server.host}:{server.port}", flush=True)
        if ready_file:
            payload = {"host": server.host, "port": server.port, "pid": os.getpid()}
            if server.control_port is not None:
                payload["control_port"] = server.control_port
            if server.worker_id is not None:
                payload["worker_id"] = server.worker_id
            Path(ready_file).write_text(json.dumps(payload))

    await server.serve(ready=announce)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper(), logging.INFO),
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    gateway_kwargs: dict = {}
    if args.mmap_bundles:
        gateway_kwargs["mmap_bundles"] = True
    if args.cache_size is not None:
        gateway_kwargs["cache_size"] = args.cache_size
    if args.max_batch_size is not None:
        gateway_kwargs["max_batch_size"] = args.max_batch_size
    if args.flush_interval is not None:
        gateway_kwargs["flush_interval"] = args.flush_interval
    if args.batch_policy is not None:
        gateway_kwargs["batch_policy"] = args.batch_policy
    if args.slo_ms is not None:
        gateway_kwargs["slo_ms"] = args.slo_ms
    sock = None
    if args.socket_fd is not None:
        sock = socket.socket(fileno=args.socket_fd)
    with tempfile.TemporaryDirectory(prefix="repro-serve-demo-") as workdir:
        if args.demo:
            gateway = _demo_gateway(
                args.demo_scale, args.demo_seed, workdir, **gateway_kwargs
            )
        else:
            gateway = _export_gateway(
                args.export_dir, args.version, args.route, **gateway_kwargs
            )
        if args.service_time > 0:
            _inject_service_time(gateway, args.service_time)
        server = ModelServer(
            gateway,
            host=args.host,
            port=args.port,
            sock=sock,
            control_port=args.control_port,
            worker_id=args.worker_id,
            admin_token=args.admin_token,
            max_inflight=args.max_inflight,
            max_batch_items=args.max_batch_items,
            max_body_bytes=args.max_body_bytes,
            drain_timeout=args.drain_timeout,
            owns_gateway=True,
            trace_sample=None if args.no_trace else args.trace_sample,
            trace_slow_ms=args.trace_slow_ms,
            trace_seed=args.trace_seed,
        )
        try:
            asyncio.run(_serve(server, args.ready_file))
        except KeyboardInterrupt:
            pass
    print("repro-serve drained cleanly", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
