"""The asyncio HTTP serving frontier over a :class:`~repro.gateway.ModelGateway`.

:class:`ModelServer` is the network front door of the reproduction stack:

* ``POST /routes/<route>/predict`` — single (``{"sequence": [...]}``) or
  batched (``{"sequences": [[...], ...]}``) prediction with optional
  per-request routing ``key``/``keys`` and version pinning, strict
  named-field validation (400s carry the offending field, never a
  traceback);
* ``GET /healthz`` — the gateway's ``health_snapshot()`` plus server-level
  counters, as JSON;
* ``GET /metrics`` — the same state flattened to the text exposition format
  (:func:`repro.observability.render_metrics_text`);
* ``POST /admin/routes/<route>/{deploy,swap,rollback,retire,policy}`` —
  the control plane, guarded by a bearer-style ``x-admin-token`` header;
* ``GET/POST /admin/routes/<route>/evaluate`` — the eval gate
  (:mod:`repro.eval`): POST replays a golden set through the gateway and
  stores a deterministic promote/hold/rollback verdict (optionally acting on
  it with ``apply``); GET returns the stored verdict.

Production concerns the gateway cannot provide alone live here:
**admission control** (a bounded in-flight window; excess prediction
requests are shed immediately with 429 instead of queueing without bound),
per-connection **keep-alive and pipelining** (requests are handled strictly
in order per connection), request **size limits** (431/413), and **graceful
drain** — ``request_stop()`` stops accepting connections, lets every
in-flight request finish, then closes the gateway (and, when owned, the
underlying ``PredictionService``).

The event loop never runs model code: predictions are handed to a bounded
thread pool, whose width matches the admission window so accepted requests
start immediately instead of queueing behind each other.
"""

from __future__ import annotations

import asyncio
import contextvars
import functools
import hmac
import logging
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Mapping

import numpy as np

from repro.eval.canary import evaluate_route
from repro.eval.golden import load_golden_set
from repro.eval.policy import EvalPolicy
from repro.gateway.gateway import ModelGateway
from repro.gateway.policies import (
    ABSplit,
    Canary,
    Ensemble,
    Shadow,
    TrafficPolicy,
    derive_request_key,
)
from repro.observability import CounterSet, RollingLatency, render_metrics_text
from repro.server.protocol import (
    HTTPError,
    HTTPRequest,
    json_response,
    read_request,
    render_response,
)
from repro.trace import (
    TRACE_HEADER,
    Trace,
    TraceStore,
    Tracer,
    call_with_trace,
    parse_trace_header,
)

logger = logging.getLogger(__name__)

#: The trace begun by ``_handle_predict`` for the request currently being
#: answered, read back by ``_respond`` to echo ``X-Repro-Trace`` on the
#: response.  Task-local (each connection is one asyncio task), reset per
#: request.
_RESPONSE_TRACE: contextvars.ContextVar[Trace | None] = contextvars.ContextVar(
    "repro_server_response_trace", default=None
)

#: JSON policy specs accepted by the ``policy`` admin endpoint, by ``kind``.
_POLICY_BUILDERS: dict[str, Callable[[dict], TrafficPolicy]] = {
    "ab_split": lambda spec: ABSplit(
        variants=spec["variants"], salt=spec.get("salt", "")
    ),
    "canary": lambda spec: Canary(
        candidate=spec["candidate"],
        fraction=spec["fraction"],
        stable=spec.get("stable"),
        salt=spec.get("salt", ""),
    ),
    "shadow": lambda spec: Shadow(
        candidate=spec["candidate"], primary=spec.get("primary")
    ),
    "ensemble": lambda spec: Ensemble(
        members=spec["members"],
        method=spec.get("method", "mean"),
        weights=spec.get("weights"),
    ),
}


def policy_from_spec(spec: Mapping) -> TrafficPolicy | None:
    """Build a traffic policy from its JSON description.

    ``{"kind": "active"}`` returns ``None`` (meaning: clear back to the
    default active-version policy); unknown kinds and malformed specs raise
    :class:`HTTPError` 400 naming the offending field.
    """
    if not isinstance(spec, Mapping):
        raise HTTPError(400, "bad_field", "'policy' must be a JSON object", field="policy")
    kind = spec.get("kind")
    if kind == "active":
        return None
    builder = _POLICY_BUILDERS.get(kind)
    if builder is None:
        known = sorted(_POLICY_BUILDERS) + ["active"]
        raise HTTPError(
            400, "bad_field", f"unknown policy kind {kind!r}; known: {known}",
            field="policy.kind",
        )
    try:
        return builder(dict(spec))
    except KeyError as exc:
        raise HTTPError(
            400, "bad_field", f"policy kind {kind!r} requires field {exc.args[0]!r}",
            field=f"policy.{exc.args[0]}",
        ) from None
    except (TypeError, ValueError) as exc:
        raise HTTPError(400, "bad_field", str(exc), field="policy") from None


class _Connection:
    """Book-keeping for one live client connection."""

    __slots__ = ("writer", "busy", "task")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.busy = False
        self.task: asyncio.Task | None = None


class ServerHandle:
    """Control handle for a server running in a background thread."""

    def __init__(self, server: "ModelServer", thread: threading.Thread) -> None:
        self.server = server
        self._thread = thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 60.0) -> None:
        """Request a graceful drain and wait for the server thread to exit."""
        self.server.request_stop()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError(f"server did not drain within {timeout}s")


class ModelServer:
    """Serve a :class:`~repro.gateway.ModelGateway` over HTTP/1.1.

    Args:
        gateway: The gateway fronted by this server.
        host / port: Bind address; ``port=0`` binds an ephemeral port (the
            bound port is published on :attr:`port` once serving).
        sock: Pre-bound listening socket to serve on instead of binding
            ``host:port`` — how a :mod:`repro.cluster` supervisor hands a
            worker its share of a ``SO_REUSEPORT`` port.  The server takes
            ownership; :attr:`host`/:attr:`port` are read back from it.
        control_port: When not ``None``, additionally serve the same
            endpoints on a private ``host:control_port`` listener (``0``
            binds an ephemeral port, published on :attr:`control_port`).
            Workers behind a shared port stay individually addressable
            through it for health checks and admin fan-out.
        worker_id: Fleet index reported in the ``server`` stats block of
            ``/healthz`` and ``/metrics`` (``None`` outside a fleet).
        admin_token: Shared secret for the ``/admin`` control plane; ``None``
            disables admin endpoints entirely (403).
        max_inflight: Admission window — prediction requests beyond this
            many concurrently in flight are shed with a fast 429.
        max_batch_items: Upper bound on ``sequences`` per batched request.
        max_body_bytes / max_header_bytes: Request size limits (413 / 431).
        drain_timeout: Seconds the drain waits for in-flight connections.
        owns_gateway: Close the gateway at the end of the drain (the
            gateway's own ``owns_service`` flag then decides whether the
            shared ``PredictionService`` is torn down with it).
        trace_sample: Head-sampling rate for request tracing in ``[0, 1]``;
            ``None`` disables tracing entirely (requests then pay only a
            single ``is None`` check).  Slow and error traces are kept at
            100% regardless of the rate (tail sampling).
        trace_slow_ms: Latency threshold (milliseconds) above which a trace
            is always kept.
        trace_seed: Seed for deterministic trace ids and the head-sampling
            hash — a seeded loadgen scenario reproduces the same trace set.
        trace_capacity: Ring-buffer size of the in-process trace store
            behind ``GET /debug/traces``.
    """

    def __init__(
        self,
        gateway: ModelGateway,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        sock: socket.socket | None = None,
        control_port: int | None = None,
        worker_id: int | None = None,
        admin_token: str | None = None,
        max_inflight: int = 64,
        max_batch_items: int = 256,
        max_body_bytes: int = 1048576,
        max_header_bytes: int = 16384,
        drain_timeout: float = 30.0,
        owns_gateway: bool = True,
        trace_sample: float | None = 1.0,
        trace_slow_ms: float = 250.0,
        trace_seed: int = 0,
        trace_capacity: int = 256,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_batch_items < 1:
            raise ValueError(f"max_batch_items must be >= 1, got {max_batch_items}")
        self.gateway = gateway
        self.host = host
        self.port = port
        self.control_port = control_port
        self.worker_id = worker_id
        self.admin_token = admin_token
        self.max_inflight = max_inflight
        self.max_batch_items = max_batch_items
        self.max_body_bytes = max_body_bytes
        self.max_header_bytes = max_header_bytes
        self.drain_timeout = drain_timeout
        self.owns_gateway = owns_gateway

        #: Request tracing: deterministic ids + head sampling (tracer) and
        #: bounded retention with tail sampling for slow/error traces (store).
        self.tracer = Tracer(
            seed=trace_seed,
            sample=trace_sample if trace_sample is not None else 0.0,
            slow_ms=trace_slow_ms,
            enabled=trace_sample is not None,
        )
        self.traces = TraceStore(trace_capacity, slow_ms=trace_slow_ms)

        #: Server-level counters: http_requests / predict_requests /
        #: predict_sequences / shed / errors:<status> / connections.
        self.counters = CounterSet()
        #: Wall-clock latency of handled prediction requests (parse → response
        #: built), the server-side counterpart of a load generator's view.
        self.latency = RollingLatency()

        self._inflight = 0
        self._draining = False
        self._connections: set[_Connection] = set()
        self._sock = sock
        self._server: asyncio.base_events.Server | None = None
        self._control_server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        # Pool width == admission window: every admitted request gets a
        # thread immediately, so queueing happens only at the 429 boundary.
        self._executor = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-serve"
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def serve(self, ready: Callable[[], None] | None = None) -> None:
        """Bind, serve until :meth:`request_stop`, then drain gracefully."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        limit = max(self.max_header_bytes, 65536)
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self._sock, limit=limit
            )
            self.host, self.port = self._server.sockets[0].getsockname()[:2]
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port, limit=limit
            )
            self.port = self._server.sockets[0].getsockname()[1]
        if self.control_port is not None:
            # A private per-process listener sharing the exact same handler:
            # the data port may be one SO_REUSEPORT socket among many, but
            # this address reaches *this* worker deterministically.
            self._control_server = await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self.control_port,
                limit=limit,
            )
            self.control_port = self._control_server.sockets[0].getsockname()[1]
        logger.info("repro.server listening on %s:%d", self.host, self.port)
        if ready is not None:
            ready()
        try:
            await self._stop_event.wait()
        finally:
            await self._drain()

    def request_stop(self) -> None:
        """Thread-safe: begin the graceful drain (idempotent)."""
        loop, event = self._loop, self._stop_event
        if loop is None or event is None:
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            pass  # loop already closed — the server is gone

    def start_in_thread(self, *, timeout: float = 60.0) -> ServerHandle:
        """Run the server on a background thread; returns once it is bound."""
        ready = threading.Event()
        failures: list[BaseException] = []

        def runner() -> None:
            try:
                asyncio.run(self.serve(ready=ready.set))
            except BaseException as exc:  # surfaced to the starter below
                failures.append(exc)
            finally:
                ready.set()

        thread = threading.Thread(target=runner, name="repro-server", daemon=True)
        thread.start()
        if not ready.wait(timeout):
            raise TimeoutError(f"server failed to start within {timeout}s")
        if failures:
            raise failures[0]
        return ServerHandle(self, thread)

    async def _drain(self) -> None:
        """Stop accepting, finish in-flight requests, close the gateway."""
        self._draining = True
        for server in (self._server, self._control_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        # Idle keep-alive connections are parked in a read; closing the
        # transport wakes them into a clean EOF exit.  Busy connections
        # finish their current request (the handler loop then exits on the
        # draining flag) — accepted work is never dropped.
        for connection in list(self._connections):
            if not connection.busy:
                connection.writer.close()
        pending = [c.task for c in self._connections if c.task is not None]
        if pending:
            await asyncio.wait(pending, timeout=self.drain_timeout)
        self._executor.shutdown(wait=True)
        if self.owns_gateway:
            await asyncio.to_thread(self.gateway.close)
        logger.info("repro.server drained (%s connections at shutdown)", len(pending))

    # ------------------------------------------------------------------
    # connection handling (keep-alive + pipelining)
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(writer)
        connection.task = asyncio.current_task()
        self._connections.add(connection)
        self.counters.increment("connections")
        try:
            while True:
                try:
                    request = await read_request(
                        reader,
                        max_header_bytes=self.max_header_bytes,
                        max_body_bytes=self.max_body_bytes,
                    )
                except HTTPError as exc:
                    # Framing is unreliable after a malformed head: answer
                    # and close instead of resynchronizing.
                    writer.write(json_response(exc.status, exc.payload(), keep_alive=False))
                    await writer.drain()
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break  # peer vanished mid-request
                if request is None:
                    break  # clean close between requests
                connection.busy = True
                try:
                    response = await self._respond(request)
                finally:
                    connection.busy = False
                try:
                    writer.write(response)
                    await writer.drain()
                except ConnectionError:
                    break
                if self._draining or not request.keep_alive:
                    break
        finally:
            self._connections.discard(connection)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _respond(self, request: HTTPRequest) -> bytes:
        self.counters.increment("http_requests")
        keep_alive = request.keep_alive and not self._draining
        trace_token = _RESPONSE_TRACE.set(None)
        try:
            try:
                status, payload = await self._dispatch(request)
            except HTTPError as exc:
                status, payload = exc.status, exc.payload()
            except Exception as exc:  # never a traceback on the wire
                # (CancelledError is a BaseException and deliberately propagates:
                # a cancelled connection task must not fabricate a 500.)
                logger.exception("unhandled error serving %s %s", request.method, request.path)
                status = 500
                payload = {
                    "error": {
                        "code": "internal_error",
                        "message": f"{type(exc).__name__} while serving the request",
                    }
                }
            trace = _RESPONSE_TRACE.get()
        finally:
            _RESPONSE_TRACE.reset(trace_token)
        extra_headers = {TRACE_HEADER: trace.trace_id} if trace is not None else None
        if status >= 400:
            self.counters.increment(f"errors:{status}")
        if isinstance(payload, str):  # pre-rendered plain text (``/metrics``)
            return render_response(
                status,
                payload.encode("utf-8"),
                content_type="text/plain; charset=utf-8",
                keep_alive=keep_alive,
                extra_headers=extra_headers,
            )
        return json_response(
            status, payload, keep_alive=keep_alive, extra_headers=extra_headers
        )

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, request: HTTPRequest):
        segments = request.segments
        if segments == ("healthz",):
            self._require_method(request, "GET")
            return 200, self._health_payload()
        if segments == ("metrics",):
            self._require_method(request, "GET")
            return 200, render_metrics_text(
                self._metrics_payload(), exemplars=self._latency_exemplars()
            )
        if segments == ("debug", "traces"):
            self._require_method(request, "GET")
            return 200, {"traces": self.traces.list(), "stats": self.traces.stats()}
        if len(segments) == 3 and segments[:2] == ("debug", "traces"):
            self._require_method(request, "GET")
            stored = self.traces.get(segments[2])
            if stored is None:
                raise HTTPError(
                    404, "unknown_trace",
                    f"no stored trace {segments[2]!r} (evicted, sampled out, or "
                    f"never seen)",
                )
            return 200, stored
        if len(segments) == 3 and segments[0] == "routes" and segments[2] == "predict":
            self._require_method(request, "POST")
            return await self._handle_predict(segments[1], request)
        if len(segments) == 4 and segments[:2] == ("admin", "routes"):
            # ``evaluate`` is dual-method: GET reads the stored verdict, POST
            # runs the gate.  Every other admin action mutates and is POST-only.
            if segments[3] == "evaluate":
                if request.method not in ("GET", "POST"):
                    raise HTTPError(
                        405, "method_not_allowed",
                        f"{request.path} only accepts GET or POST, got {request.method}",
                    )
            else:
                self._require_method(request, "POST")
            # Off the event loop: deploy loads bundle arrays from disk, eval
            # replays a golden set through the gateway, and registry mutations
            # take the registry lock — none may stall concurrently-served
            # predictions.
            return await asyncio.get_running_loop().run_in_executor(
                self._executor,
                functools.partial(self._handle_admin, segments[2], segments[3], request),
            )
        raise HTTPError(404, "not_found", f"no endpoint at {request.path!r}")

    @staticmethod
    def _require_method(request: HTTPRequest, method: str) -> None:
        if request.method != method:
            raise HTTPError(
                405, "method_not_allowed",
                f"{request.path} only accepts {method}, got {request.method}",
            )

    # ------------------------------------------------------------------
    # observability endpoints
    # ------------------------------------------------------------------
    def _server_stats(self) -> dict:
        counters = self.counters.as_dict()
        stats: dict = {}
        if self.worker_id is not None:
            stats["worker_id"] = self.worker_id
        return stats | {
            "inflight": self._inflight,
            "max_inflight": self.max_inflight,
            "draining": self._draining,
            "open_connections": len(self._connections),
            "counters": counters,
            "latency": self.latency.snapshot(),
        }

    def _health_payload(self) -> dict:
        snapshot = self.gateway.health_snapshot()
        snapshot["server"] = self._server_stats()
        if self.tracer.enabled:
            snapshot["trace"] = self.traces.stats()
        return snapshot

    def _latency_exemplars(self) -> dict[str, str] | None:
        """Attach the slowest kept trace id to the server latency lines."""
        trace_id = self.traces.exemplar()
        if trace_id is None:
            return None
        return {
            f"repro_server_latency_{suffix}": trace_id
            for suffix in ("p50_ms", "p95_ms", "p99_ms", "max_ms")
        }

    def _metrics_payload(self) -> dict:
        snapshot = self.gateway.health_snapshot()
        return {
            "healthy": snapshot["status"] == "ok",
            "routes": snapshot["routes"],
            "service": snapshot["service"],
            "server": self._server_stats(),
        }

    # ------------------------------------------------------------------
    # prediction data plane
    # ------------------------------------------------------------------
    @staticmethod
    def _string_items(value, field: str) -> tuple[str, ...]:
        if not isinstance(value, list):
            raise HTTPError(
                400, "bad_field",
                f"'{field}' must be a list of strings, got {type(value).__name__}",
                field=field,
            )
        if not value:
            raise HTTPError(
                400, "bad_field", f"'{field}' must not be empty", field=field
            )
        for index, item in enumerate(value):
            if not isinstance(item, str):
                raise HTTPError(
                    400, "bad_field",
                    f"'{field}[{index}]' must be a string, got {type(item).__name__}",
                    field=f"{field}[{index}]",
                )
        return tuple(value)

    def _optional_string(self, payload: dict, field: str) -> str | None:
        value = payload.get(field)
        if value is not None and not isinstance(value, str):
            raise HTTPError(
                400, "bad_field",
                f"'{field}' must be a string, got {type(value).__name__}",
                field=field,
            )
        return value

    def _parse_predict(self, request: HTTPRequest) -> dict:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HTTPError(
                400, "bad_body",
                f"request body must be a JSON object, got {type(payload).__name__}",
                field="body",
            )
        has_single = "sequence" in payload
        has_batch = "sequences" in payload
        if has_single == has_batch:
            raise HTTPError(
                400, "bad_body",
                "request body must contain exactly one of 'sequence' or 'sequences'",
                field="sequence",
            )
        parsed: dict = {"version": self._optional_string(payload, "version")}
        if has_single:
            parsed["sequence"] = self._string_items(payload["sequence"], "sequence")
            parsed["key"] = self._optional_string(payload, "key")
            return parsed
        sequences = payload["sequences"]
        if not isinstance(sequences, list):
            raise HTTPError(
                400, "bad_field",
                f"'sequences' must be a list of lists, got {type(sequences).__name__}",
                field="sequences",
            )
        if not sequences:
            raise HTTPError(
                400, "bad_field", "'sequences' must not be empty", field="sequences"
            )
        if len(sequences) > self.max_batch_items:
            raise HTTPError(
                413, "batch_too_large",
                f"batch of {len(sequences)} sequences exceeds the "
                f"{self.max_batch_items}-item limit",
                field="sequences",
            )
        parsed["sequences"] = [
            self._string_items(item, f"sequences[{index}]")
            for index, item in enumerate(sequences)
        ]
        keys = payload.get("keys")
        if keys is not None:
            keys = list(self._string_items(keys, "keys"))
            if len(keys) != len(sequences):
                raise HTTPError(
                    400, "bad_field",
                    f"got {len(keys)} keys for {len(sequences)} sequences",
                    field="keys",
                )
        parsed["keys"] = keys
        return parsed

    def _begin_trace(
        self, route: str, request: HTTPRequest, parsed: dict
    ) -> tuple[Trace | None, "object | None"]:
        """Start (or adopt) the trace for a predict request.

        Returns ``(trace, root_span)``; ``(None, None)`` when tracing is
        disabled — the entire per-request tracing cost then collapses to
        this one check.
        """
        if not self.tracer.enabled:
            return None, None
        if "sequence" in parsed:
            key = parsed["key"] or derive_request_key(parsed["sequence"])
        else:
            keys = parsed["keys"]
            key = keys[0] if keys else derive_request_key(parsed["sequences"][0])
        trace = None
        parent_id = None
        header = request.headers.get(TRACE_HEADER.lower())
        if header:
            upstream = parse_trace_header(header)
            if upstream is not None:
                trace_id, sampled, parent_id = upstream
                trace = self.tracer.adopt(trace_id, key, sampled=sampled)
        if trace is None:
            trace = self.tracer.begin(key)
        attrs: dict = {"route": route}
        if self.worker_id is not None:
            attrs["worker_id"] = self.worker_id
        if "sequence" in parsed:
            # The original payload rides on the root span so an exported
            # trace can be replayed as a loadgen workload.
            attrs["sequence"] = list(parsed["sequence"])
        else:
            attrs["batch"] = len(parsed["sequences"])
        root = trace.start_span("server.request", parent=parent_id, attrs=attrs)
        _RESPONSE_TRACE.set(trace)
        return trace, root

    async def _handle_predict(self, route: str, request: HTTPRequest):
        parsed = self._parse_predict(request)
        trace, root = self._begin_trace(route, request, parsed)
        try:
            return await self._predict_admitted(route, parsed, trace, root)
        except HTTPError as exc:
            if trace is not None:
                trace.error = True
                root.attrs["status"] = exc.status
            raise
        finally:
            if trace is not None:
                trace.end_span(root)
                self.traces.offer(trace)

    async def _predict_admitted(
        self, route: str, parsed: dict, trace: Trace | None, root
    ):
        if self._inflight >= self.max_inflight:
            self.counters.increment("shed")
            if root is not None:
                root.attrs["shed"] = True
            raise HTTPError(
                429, "overloaded",
                f"admission window of {self.max_inflight} in-flight requests is "
                f"full; retry with backoff",
            )
        self._inflight += 1
        start = time.perf_counter()
        try:
            if "sequence" in parsed:
                call = functools.partial(
                    self.gateway.predict_proba,
                    route,
                    parsed["sequence"],
                    key=parsed["key"],
                    version=parsed["version"],
                )
                count = 1
            else:
                call = functools.partial(
                    self.gateway.predict_proba_batch,
                    route,
                    parsed["sequences"],
                    keys=parsed["keys"],
                    version=parsed["version"],
                )
                count = len(parsed["sequences"])
            try:
                # run_in_executor does not carry contextvars into the pool
                # thread, so the active trace is handed across explicitly.
                probabilities = await asyncio.get_running_loop().run_in_executor(
                    self._executor,
                    functools.partial(
                        call_with_trace,
                        trace,
                        root.span_id if root is not None else None,
                        call,
                    ),
                )
                label_space = self.gateway.registry.label_space(route)
            except KeyError as exc:
                raise HTTPError(404, "unknown_route", _key_error_message(exc)) from None
            except TimeoutError as exc:
                raise HTTPError(503, "prediction_timeout", str(exc)) from None
            except RuntimeError as exc:
                raise HTTPError(503, "unavailable", str(exc)) from None
            except ValueError as exc:
                raise HTTPError(400, "bad_request", str(exc)) from None
        finally:
            self._inflight -= 1
        self.counters.increment("predict_requests")
        self.counters.increment("predict_sequences", count)
        self.latency.record(time.perf_counter() - start, count=count)
        if "sequence" in parsed:
            payload = {
                "route": route,
                "label": label_space[int(np.argmax(probabilities))],
                "probabilities": [float(p) for p in probabilities],
            }
        else:
            payload = {
                "route": route,
                "count": count,
                "labels": [label_space[int(i)] for i in probabilities.argmax(axis=1)],
                "probabilities": [[float(p) for p in row] for row in probabilities],
            }
        return 200, payload

    # ------------------------------------------------------------------
    # admin control plane
    # ------------------------------------------------------------------
    def _require_admin(self, request: HTTPRequest) -> None:
        if self.admin_token is None:
            raise HTTPError(
                403, "admin_disabled",
                "admin endpoints are disabled (server started without an admin token)",
            )
        presented = request.headers.get("x-admin-token") or ""
        if not hmac.compare_digest(
            presented.encode("utf-8"), self.admin_token.encode("utf-8")
        ):
            raise HTTPError(401, "unauthorized", "missing or invalid x-admin-token header")

    def _handle_admin(self, route: str, action: str, request: HTTPRequest):
        self._require_admin(request)
        payload = request.json() if request.body else {}
        if not isinstance(payload, dict):
            raise HTTPError(
                400, "bad_body",
                f"request body must be a JSON object, got {type(payload).__name__}",
                field="body",
            )
        try:
            if action == "deploy":
                version = self._required_string(payload, "version")
                path = self._required_string(payload, "path")
                deployment = self.gateway.deploy(
                    route, version, path,
                    activate=payload.get("activate"),
                    replace=bool(payload.get("replace", False)),
                )
                return 200, {
                    "route": route,
                    "version": deployment.version,
                    "active": self.gateway.registry.active_version(route),
                }
            if action == "swap":
                deployment = self.gateway.swap(route, self._required_string(payload, "version"))
                return 200, {"route": route, "active": deployment.version}
            if action == "rollback":
                deployment = self.gateway.rollback(route)
                return 200, {"route": route, "active": deployment.version}
            if action == "retire":
                version = self._required_string(payload, "version")
                self.gateway.retire(route, version)
                return 200, {
                    "route": route,
                    "retired": version,
                    "versions": list(self.gateway.registry.versions(route)),
                }
            if action == "policy":
                policy = policy_from_spec(payload.get("policy", payload))
                if policy is None:
                    self.gateway.clear_policy(route)
                else:
                    self.gateway.set_policy(route, policy)
                return 200, {
                    "route": route,
                    "policy": self.gateway.registry.policy(route).describe(),
                }
            if action == "evaluate":
                if request.method == "GET":
                    verdict = self.gateway.verdict(route)
                    if verdict is None:
                        raise HTTPError(
                            404, "no_verdict",
                            f"route {route!r} has no stored eval verdict; POST "
                            f"to this endpoint to run the gate",
                        )
                    return 200, {"route": route, "verdict": verdict}
                return self._handle_evaluate(route, payload)
        except HTTPError:
            raise
        except KeyError as exc:
            raise HTTPError(404, "not_found", _key_error_message(exc)) from None
        except (ValueError, RuntimeError, OSError) as exc:
            raise HTTPError(400, "bad_request", str(exc)) from None
        raise HTTPError(
            404, "not_found",
            f"unknown admin action {action!r}; known: deploy, swap, rollback, "
            f"retire, policy, evaluate",
        )

    def _handle_evaluate(self, route: str, payload: dict):
        """Run the eval gate (``repro.eval``) for a candidate version.

        Body fields: ``candidate`` (required), ``golden`` (required path to a
        golden-set JSONL on this host), ``baseline`` (default: the active
        version), ``policy`` (EvalPolicy field overrides), ``seed``
        (bootstrap seed, default 0), ``shadow`` (use live shadow counters,
        default true) and ``apply`` (act on the verdict: promote swaps the
        candidate active, rollback restores the previous version when the
        candidate is the active one).  The verdict is stored on the route
        and summarised in ``/healthz`` and ``/metrics``.
        """
        candidate = self._required_string(payload, "candidate")
        golden_path = self._required_string(payload, "golden")
        baseline = self._optional_string(payload, "baseline")
        seed = payload.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise HTTPError(
                400, "bad_field",
                f"'seed' must be an integer, got {type(seed).__name__}",
                field="seed",
            )
        policy = None
        if payload.get("policy") is not None:
            spec = payload["policy"]
            if not isinstance(spec, dict):
                raise HTTPError(
                    400, "bad_field",
                    f"'policy' must be a JSON object of EvalPolicy fields, "
                    f"got {type(spec).__name__}",
                    field="policy",
                )
            try:
                policy = EvalPolicy.from_dict(spec)
            except (TypeError, ValueError) as exc:
                raise HTTPError(400, "bad_field", str(exc), field="policy") from None
        try:
            golden = load_golden_set(golden_path)
        except FileNotFoundError:
            raise HTTPError(
                400, "bad_field",
                f"no golden set at {golden_path!r} on this host",
                field="golden",
            ) from None
        except ValueError as exc:
            raise HTTPError(400, "bad_field", str(exc), field="golden") from None
        _, verdict = evaluate_route(
            self.gateway,
            route,
            candidate,
            golden,
            baseline=baseline,
            policy=policy,
            seed=seed,
            use_shadow=bool(payload.get("shadow", True)),
        )
        self.gateway.record_verdict(route, verdict)
        applied = "none"
        if payload.get("apply"):
            if verdict.decision == "promote":
                if self.gateway.registry.active_version(route) != candidate:
                    self.gateway.swap(route, candidate)
                    applied = f"swapped active to {candidate}"
                else:
                    applied = f"{candidate} already active"
            elif verdict.decision == "rollback":
                if self.gateway.registry.active_version(route) == candidate:
                    restored = self.gateway.rollback(route)
                    applied = f"rolled back to {restored.version}"
                else:
                    applied = "none (candidate is not the active version)"
        return 200, {
            "route": route,
            "verdict": verdict.as_dict(),
            "applied": applied,
            "active": self.gateway.registry.active_version(route),
        }

    @staticmethod
    def _required_string(payload: dict, field: str) -> str:
        value = payload.get(field)
        if not isinstance(value, str) or not value:
            raise HTTPError(
                400, "bad_field",
                f"'{field}' must be a non-empty string", field=field,
            )
        return value


def _key_error_message(exc: KeyError) -> str:
    """KeyError args are the raw message for registry errors, a key otherwise."""
    if exc.args and isinstance(exc.args[0], str) and " " in exc.args[0]:
        return exc.args[0]
    return f"unknown name {exc.args[0]!r}" if exc.args else "unknown name"
