"""The asyncio HTTP serving frontier — the network front door of the stack.

``repro.server`` fronts a :class:`~repro.gateway.ModelGateway` with a
dependency-free HTTP/1.1 server built directly on :mod:`asyncio` streams:

* :mod:`repro.server.protocol` — wire-level request parsing / response
  rendering with bounded header and body sizes, keep-alive and pipelining
  semantics, and structured :class:`HTTPError` payloads;
* :mod:`repro.server.app` — :class:`ModelServer`: JSON predict endpoints
  (single + batch with per-request routing keys), ``/healthz`` and a flat
  text ``/metrics`` export, a token-guarded ``/admin`` control plane
  (deploy / swap / rollback / retire / set-policy), bounded-concurrency
  admission control with fast 429 shedding, and graceful drain;
* :mod:`repro.server.cli` — the ``repro-serve`` console entry point.

The sibling :mod:`repro.loadgen` package generates seeded traffic against
this server (or directly against a gateway) and reports throughput /
latency quantiles.
"""

from repro.server.app import ModelServer, ServerHandle, policy_from_spec
from repro.server.protocol import (
    HTTPError,
    HTTPRequest,
    json_response,
    read_request,
    render_response,
)

__all__ = [
    "HTTPError",
    "HTTPRequest",
    "ModelServer",
    "ServerHandle",
    "json_response",
    "policy_from_spec",
    "read_request",
    "render_response",
]
