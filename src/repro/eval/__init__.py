"""``repro.eval`` — the **online quality gate** for deployed model versions.

Not to be confused with :mod:`repro.evaluation`, which regenerates the
*paper's* offline tables and figures from library objects.  This package
decides whether a *candidate deployment* is safe to promote:

* :mod:`repro.eval.golden` — per-route, versioned, content-fingerprinted
  golden sets (JSONL next to the bundles, held-out-cuisine slices);
* :mod:`repro.eval.policy` — every threshold in one ``EvalPolicy`` dataclass;
* :mod:`repro.eval.harness` — the layered evaluator (compatibility →
  accuracy → calibration → slices, each layer gated on the previous) running
  candidate vs baseline through the live gateway with versions pinned;
* :mod:`repro.eval.canary` — the statistical canary analyzer fusing
  golden-set results with live shadow agreement into a deterministic, seeded
  ``promote`` / ``hold`` / ``rollback`` :class:`~repro.eval.canary.Verdict`
  with byte-identical canonical JSON;
* :mod:`repro.eval.cli` — the ``repro-eval`` console entry point
  (``--json`` for machine consumers).

The server admin plane exposes the gate as
``GET/POST /admin/routes/<route>/evaluate`` and stores the latest verdict in
the deployment registry, where ``stats()``, ``/metrics`` and
``health_snapshot()`` pick it up.
"""

from repro.eval.canary import (
    CanaryAnalyzer,
    ShadowEvidence,
    VERDICT_CODES,
    Verdict,
    binomial_cdf,
    evaluate_route,
)
from repro.eval.golden import (
    CORE_SLICE,
    GoldenExample,
    GoldenSet,
    build_golden_set,
    golden_set_path,
    load_golden_set,
    save_golden_set,
)
from repro.eval.harness import (
    EvalReport,
    LayerResult,
    LayeredEvaluator,
    accuracy_score,
    brier_score,
    expected_calibration_error,
)
from repro.eval.policy import EvalPolicy

__all__ = [
    "CORE_SLICE",
    "CanaryAnalyzer",
    "EvalPolicy",
    "EvalReport",
    "GoldenExample",
    "GoldenSet",
    "LayerResult",
    "LayeredEvaluator",
    "ShadowEvidence",
    "VERDICT_CODES",
    "Verdict",
    "accuracy_score",
    "binomial_cdf",
    "brier_score",
    "build_golden_set",
    "evaluate_route",
    "expected_calibration_error",
    "golden_set_path",
    "load_golden_set",
    "save_golden_set",
]
