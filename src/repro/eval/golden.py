"""Per-route golden sets: versioned, content-fingerprinted eval fixtures.

A golden set is the frozen ground truth the eval gate replays against every
candidate version: raw item sequences with expected cuisine labels, tagged
with a slice name so the evaluator can report generalization separately for
the distribution tail.  Sets are built deterministically from a
:class:`~repro.data.recipedb.RecipeDB` split and persisted as JSONL (one
header line + one example per line) next to the model bundles they gate, so
the artifact that decides promotion ships with the artifacts being promoted.

The header records a BLAKE2b content fingerprint covering every example;
:func:`load_golden_set` recomputes and verifies it, so a golden set edited in
place (accidentally or otherwise) is rejected instead of silently changing
what "passing" means.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.data.recipedb import RecipeDB

#: Slice tag of examples outside the held-out generalization slices.
CORE_SLICE = "core"

#: Prefix of the per-cuisine generalization slices.
HOLDOUT_PREFIX = "holdout:"

_FORMAT = "repro-golden-set"
_FORMAT_VERSION = 1


@dataclass(frozen=True)
class GoldenExample:
    """One frozen eval case: a raw sequence, its label, and its slice."""

    sequence: tuple[str, ...]
    expected: str
    slice_name: str = CORE_SLICE

    def __post_init__(self) -> None:
        if not self.sequence:
            raise ValueError("golden example has an empty sequence")
        if not self.expected:
            raise ValueError("golden example has an empty expected label")
        if not self.slice_name:
            raise ValueError("golden example has an empty slice name")


@dataclass(frozen=True)
class GoldenSet:
    """An immutable golden set for one route.

    Attributes:
        route: The gateway route this set evaluates.
        version: Caller-chosen version label of the set itself (golden sets
            evolve independently of model versions).
        label_space: Canonically-ordered labels the expected labels live in;
            must be a subset of the route's label space at evaluation time.
        examples: The frozen eval cases.
    """

    route: str
    version: str
    label_space: tuple[str, ...]
    examples: tuple[GoldenExample, ...]

    def __post_init__(self) -> None:
        if not self.route:
            raise ValueError("golden set route must be non-empty")
        if not self.version:
            raise ValueError("golden set version must be non-empty")
        if len(set(self.label_space)) != len(self.label_space):
            raise ValueError("golden set label space has duplicate labels")
        known = set(self.label_space)
        unknown = sorted({ex.expected for ex in self.examples} - known)
        if unknown:
            raise ValueError(
                f"golden examples expect labels {unknown} outside the set's "
                f"label space"
            )

    def __len__(self) -> int:
        return len(self.examples)

    def fingerprint(self) -> str:
        """Stable BLAKE2b content hash covering every field of every example."""
        cached = self.__dict__.get("_fingerprint_cache")
        if cached is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(f"{self.route}\x1e{self.version}\x1e".encode("utf-8"))
            digest.update("\x1f".join(self.label_space).encode("utf-8"))
            digest.update(b"\x1d")
            for example in self.examples:
                digest.update("\x1f".join(example.sequence).encode("utf-8"))
                digest.update(
                    f"\x1e{example.expected}\x1e{example.slice_name}\x1d".encode("utf-8")
                )
            cached = digest.hexdigest()
            object.__setattr__(self, "_fingerprint_cache", cached)
        return cached

    def slices(self) -> dict[str, tuple[int, ...]]:
        """Example indices grouped by slice name, sorted by slice."""
        grouped: dict[str, list[int]] = {}
        for index, example in enumerate(self.examples):
            grouped.setdefault(example.slice_name, []).append(index)
        return {name: tuple(grouped[name]) for name in sorted(grouped)}


def build_golden_set(
    corpus: RecipeDB,
    route: str,
    *,
    version: str = "1",
    size: int | None = None,
    holdout_cuisines: int = 2,
    seed: int = 0,
    label_space: Sequence[str] | None = None,
) -> GoldenSet:
    """Deterministically build a golden set from a corpus split.

    Pass a held-out split (e.g. ``train_val_test_split(...).test``) — never
    training data — so the gate measures generalization, not memorization.

    Args:
        corpus: The recipes to freeze into eval cases.
        route: Gateway route the set will evaluate.
        version: Version label of the golden set itself.
        size: Optional cap; when smaller than the corpus, a seeded uniform
            sample of this many recipes is taken (same seed → same set).
        holdout_cuisines: The rarest N cuisines (ties broken by name) are
            tagged ``holdout:<cuisine>`` instead of ``core``; these tail
            classes are where a retrained candidate most easily regresses
            without moving aggregate accuracy, so the evaluator's slice layer
            watches them separately.
        seed: PRNG seed for the sampling step.
        label_space: Override the recorded label space (defaults to the
            cuisines present in the sampled corpus, in canonical order).

    Returns:
        A :class:`GoldenSet`; identical inputs produce byte-identical sets.
    """
    if size is not None and size < len(corpus):
        corpus = corpus.sample(size, seed=seed)
    counts = corpus.cuisine_counts()
    rarest = sorted(counts, key=lambda cuisine: (counts[cuisine], cuisine))
    holdout = set(rarest[: max(0, holdout_cuisines)])
    space = tuple(label_space) if label_space is not None else corpus.present_cuisines()
    examples = tuple(
        GoldenExample(
            sequence=recipe.sequence,
            expected=recipe.cuisine,
            slice_name=(
                f"{HOLDOUT_PREFIX}{recipe.cuisine}"
                if recipe.cuisine in holdout
                else CORE_SLICE
            ),
        )
        for recipe in corpus
    )
    return GoldenSet(route=route, version=version, label_space=space, examples=examples)


def golden_set_path(directory: str | Path, route: str) -> Path:
    """The conventional location of a route's golden set next to its bundles."""
    return Path(directory) / f"golden_{route}.jsonl"


def save_golden_set(golden: GoldenSet, path: str | Path) -> Path:
    """Persist *golden* as JSONL: one header line, then one example per line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "format": _FORMAT,
        "format_version": _FORMAT_VERSION,
        "route": golden.route,
        "version": golden.version,
        "label_space": list(golden.label_space),
        "examples": len(golden.examples),
        "fingerprint": golden.fingerprint(),
    }
    lines = [json.dumps(header, sort_keys=True)]
    for example in golden.examples:
        lines.append(
            json.dumps(
                {
                    "sequence": list(example.sequence),
                    "expected": example.expected,
                    "slice": example.slice_name,
                },
                sort_keys=True,
            )
        )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def load_golden_set(path: str | Path) -> GoldenSet:
    """Load a golden set, verifying its recorded content fingerprint.

    Raises:
        FileNotFoundError: If *path* does not exist.
        ValueError: If the file is not a golden set, is truncated, or its
            content no longer matches the fingerprint in the header.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"golden set {path} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"golden set {path} has a malformed header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != _FORMAT:
        raise ValueError(f"{path} is not a {_FORMAT} file")
    if header.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"golden set {path} has format_version "
            f"{header.get('format_version')!r}; this reader supports "
            f"{_FORMAT_VERSION}"
        )
    examples = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"golden set {path} line {number}: {exc}") from exc
        examples.append(
            GoldenExample(
                sequence=tuple(record["sequence"]),
                expected=record["expected"],
                slice_name=record.get("slice", CORE_SLICE),
            )
        )
    declared = header.get("examples")
    if declared is not None and declared != len(examples):
        raise ValueError(
            f"golden set {path} declares {declared} examples but holds "
            f"{len(examples)} (truncated or concatenated file)"
        )
    golden = GoldenSet(
        route=header["route"],
        version=str(header["version"]),
        label_space=tuple(header["label_space"]),
        examples=tuple(examples),
    )
    recorded = header.get("fingerprint")
    if recorded is not None and recorded != golden.fingerprint():
        raise ValueError(
            f"golden set {path} content does not match its recorded "
            f"fingerprint {recorded} (got {golden.fingerprint()}); the file "
            f"was modified after it was written"
        )
    return golden
