"""The layered evaluator: candidate vs baseline over a golden set.

Layers run strictly in order and each one only runs if the previous passed —
the design borrowed from layered text-to-query eval harnesses (cheap
structural checks gate expensive semantic ones):

1. **compatibility** — the golden set addresses this route, its labels fit
   the route's label space, and it is large enough to say anything at all;
2. **accuracy** — overall golden-set accuracy delta within the policy's
   non-inferiority margin;
3. **calibration** — per-class accuracy deltas plus expected calibration
   error and Brier-score deltas (a candidate can match aggregate accuracy
   while becoming badly over-confident or trading classes);
4. **slices** — accuracy deltas per golden slice, including the
   ``holdout:<cuisine>`` generalization slices of the distribution tail.

Predictions go through the live :class:`~repro.gateway.gateway.ModelGateway`
with the version pinned (``version=`` bypasses the traffic policy), so the
gate exercises exactly the serving path production traffic takes — batched
featurization, caching, label-space alignment — without generating shadow
mirrors or perturbing routing counters beyond ordinary request metrics.

The resulting :class:`EvalReport` carries both the JSON-able layer results
and the paired per-example correctness vectors the statistical canary
analyzer (:mod:`repro.eval.canary`) bootstraps over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.eval.golden import GoldenSet
from repro.eval.policy import EvalPolicy
from repro.gateway.gateway import ModelGateway

#: Layer names, in gating order.
LAYERS = ("compatibility", "accuracy", "calibration", "slices")


def accuracy_score(predicted: np.ndarray, expected: np.ndarray) -> float:
    """Fraction of positions where *predicted* equals *expected*."""
    if len(expected) == 0:
        return 0.0
    return float(np.mean(predicted == expected))


def brier_score(probabilities: np.ndarray, expected: np.ndarray) -> float:
    """Multiclass Brier score: mean squared distance to the one-hot truth."""
    if len(expected) == 0:
        return 0.0
    one_hot = np.zeros_like(probabilities)
    one_hot[np.arange(len(expected)), expected] = 1.0
    return float(np.mean(np.sum((probabilities - one_hot) ** 2, axis=1)))


def expected_calibration_error(
    probabilities: np.ndarray, expected: np.ndarray, bins: int = 10
) -> float:
    """ECE over equal-width confidence bins of the argmax probability."""
    if len(expected) == 0:
        return 0.0
    confidence = probabilities.max(axis=1)
    correct = probabilities.argmax(axis=1) == expected
    edges = np.linspace(0.0, 1.0, bins + 1)
    # Right-inclusive upper edge so confidence 1.0 lands in the last bin.
    assignment = np.clip(np.digitize(confidence, edges[1:-1], right=False), 0, bins - 1)
    total = len(expected)
    ece = 0.0
    for index in range(bins):
        mask = assignment == index
        count = int(np.sum(mask))
        if count == 0:
            continue
        gap = abs(float(np.mean(correct[mask])) - float(np.mean(confidence[mask])))
        ece += (count / total) * gap
    return float(ece)


@dataclass
class LayerResult:
    """Outcome of one eval layer.

    ``skipped`` layers never ran because an earlier layer failed; they count
    as not passed so a report only passes when all four layers ran clean.
    """

    name: str
    passed: bool
    skipped: bool = False
    details: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "passed": bool(self.passed),
            "skipped": bool(self.skipped),
            "details": self.details,
        }


@dataclass
class EvalReport:
    """Everything one layered evaluation produced.

    ``candidate_correct`` / ``baseline_correct`` are paired per-example
    0/1 vectors (golden-set order) consumed by the canary analyzer's seeded
    bootstrap; they are deliberately excluded from :meth:`as_dict` — the wire
    form carries the layer summaries, not raw vectors.
    """

    route: str
    candidate: str
    baseline: str
    golden_version: str
    golden_fingerprint: str
    examples: int
    layers: list[LayerResult] = field(default_factory=list)
    candidate_correct: np.ndarray | None = field(default=None, repr=False)
    baseline_correct: np.ndarray | None = field(default=None, repr=False)

    @property
    def passed(self) -> bool:
        """True only when every layer ran and passed."""
        return bool(self.layers) and all(layer.passed for layer in self.layers)

    @property
    def failed_layer(self) -> str | None:
        """Name of the first layer that failed (skipped layers excluded)."""
        for layer in self.layers:
            if not layer.passed and not layer.skipped:
                return layer.name
        return None

    def layer(self, name: str) -> LayerResult:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer {name!r} in report; have {[l.name for l in self.layers]}")

    def as_dict(self) -> dict:
        return {
            "route": self.route,
            "candidate": self.candidate,
            "baseline": self.baseline,
            "golden_version": self.golden_version,
            "golden_fingerprint": self.golden_fingerprint,
            "examples": int(self.examples),
            "passed": self.passed,
            "failed_layer": self.failed_layer,
            "layers": [layer.as_dict() for layer in self.layers],
        }


class LayeredEvaluator:
    """Runs a golden set through the gateway for a (candidate, baseline) pair."""

    def __init__(self, gateway: ModelGateway) -> None:
        self.gateway = gateway

    def evaluate(
        self,
        route: str,
        candidate: str,
        golden: GoldenSet,
        *,
        baseline: str | None = None,
        policy: EvalPolicy | None = None,
    ) -> EvalReport:
        """Evaluate ``route@candidate`` against ``route@baseline`` on *golden*.

        Args:
            route: Gateway route both versions are deployed on.
            candidate: The version under test (usually dark or shadowing).
            golden: The frozen golden set to replay.
            baseline: Reference version; defaults to the route's active one.
            policy: Thresholds; defaults to ``EvalPolicy()``.

        Returns:
            An :class:`EvalReport` with one :class:`LayerResult` per layer.

        Raises:
            KeyError: Unknown route, or a version that is not deployed —
                these are caller errors, not eval failures.
            RuntimeError: No baseline given and the route has no active
                version.
        """
        policy = policy if policy is not None else EvalPolicy()
        registry = self.gateway.registry
        route_space = registry.label_space(route)
        if baseline is None:
            baseline = registry.active_version(route)
            if not baseline:
                raise RuntimeError(
                    f"route {route!r} has no active version to use as the "
                    f"baseline; pass one explicitly"
                )
        deployed = set(registry.versions(route))
        for role, version in (("candidate", candidate), ("baseline", baseline)):
            if version not in deployed:
                raise KeyError(
                    f"{role} version {version!r} is not deployed on route "
                    f"{route!r}; deployed: {sorted(deployed)}"
                )

        report = EvalReport(
            route=route,
            candidate=candidate,
            baseline=baseline,
            golden_version=golden.version,
            golden_fingerprint=golden.fingerprint(),
            examples=len(golden.examples),
        )

        compat = self._compatibility_layer(route, route_space, golden, policy)
        report.layers.append(compat)
        if not compat.passed:
            self._skip_remaining(report)
            return report

        space_index = {label: i for i, label in enumerate(route_space)}
        expected = np.array(
            [space_index[example.expected] for example in golden.examples], dtype=np.int64
        )
        sequences = [example.sequence for example in golden.examples]
        candidate_probs = self.gateway.predict_proba_batch(
            route, sequences, version=candidate
        )
        baseline_probs = self.gateway.predict_proba_batch(
            route, sequences, version=baseline
        )
        candidate_pred = candidate_probs.argmax(axis=1)
        baseline_pred = baseline_probs.argmax(axis=1)
        report.candidate_correct = (candidate_pred == expected).astype(np.float64)
        report.baseline_correct = (baseline_pred == expected).astype(np.float64)

        accuracy = self._accuracy_layer(
            candidate_pred, baseline_pred, expected, policy
        )
        report.layers.append(accuracy)
        if not accuracy.passed:
            self._skip_remaining(report)
            return report

        calibration = self._calibration_layer(
            candidate_probs,
            baseline_probs,
            candidate_pred,
            baseline_pred,
            expected,
            route_space,
            policy,
        )
        report.layers.append(calibration)
        if not calibration.passed:
            self._skip_remaining(report)
            return report

        report.layers.append(
            self._slice_layer(candidate_pred, baseline_pred, expected, golden, policy)
        )
        return report

    # ------------------------------------------------------------------
    # layers
    # ------------------------------------------------------------------
    @staticmethod
    def _compatibility_layer(
        route: str,
        route_space: Sequence[str],
        golden: GoldenSet,
        policy: EvalPolicy,
    ) -> LayerResult:
        problems: list[str] = []
        if golden.route != route:
            problems.append(
                f"golden set targets route {golden.route!r}, not {route!r}"
            )
        extra_space = sorted(set(golden.label_space) - set(route_space))
        if extra_space:
            problems.append(
                f"golden label space has labels {extra_space} outside the "
                f"route's label space"
            )
        unknown = sorted(
            {example.expected for example in golden.examples} - set(route_space)
        )
        if unknown:
            problems.append(
                f"golden examples expect labels {unknown} the route cannot emit"
            )
        if len(golden.examples) < policy.min_examples:
            problems.append(
                f"golden set holds {len(golden.examples)} examples; policy "
                f"requires at least {policy.min_examples}"
            )
        return LayerResult(
            name="compatibility",
            passed=not problems,
            details={
                "problems": problems,
                "examples": len(golden.examples),
                "label_space_size": len(golden.label_space),
            },
        )

    @staticmethod
    def _accuracy_layer(
        candidate_pred: np.ndarray,
        baseline_pred: np.ndarray,
        expected: np.ndarray,
        policy: EvalPolicy,
    ) -> LayerResult:
        candidate_accuracy = accuracy_score(candidate_pred, expected)
        baseline_accuracy = accuracy_score(baseline_pred, expected)
        delta = candidate_accuracy - baseline_accuracy
        return LayerResult(
            name="accuracy",
            passed=delta >= -policy.max_accuracy_drop,
            details={
                "candidate_accuracy": candidate_accuracy,
                "baseline_accuracy": baseline_accuracy,
                "delta": delta,
                "max_accuracy_drop": policy.max_accuracy_drop,
            },
        )

    @staticmethod
    def _calibration_layer(
        candidate_probs: np.ndarray,
        baseline_probs: np.ndarray,
        candidate_pred: np.ndarray,
        baseline_pred: np.ndarray,
        expected: np.ndarray,
        route_space: Sequence[str],
        policy: EvalPolicy,
    ) -> LayerResult:
        per_class: dict[str, dict] = {}
        regressed: list[str] = []
        for index, label in enumerate(route_space):
            mask = expected == index
            count = int(np.sum(mask))
            if count < policy.min_class_examples:
                continue
            candidate_accuracy = accuracy_score(candidate_pred[mask], expected[mask])
            baseline_accuracy = accuracy_score(baseline_pred[mask], expected[mask])
            delta = candidate_accuracy - baseline_accuracy
            per_class[label] = {
                "examples": count,
                "candidate_accuracy": candidate_accuracy,
                "baseline_accuracy": baseline_accuracy,
                "delta": delta,
            }
            if delta < -policy.max_class_accuracy_drop:
                regressed.append(label)

        candidate_ece = expected_calibration_error(
            candidate_probs, expected, policy.calibration_bins
        )
        baseline_ece = expected_calibration_error(
            baseline_probs, expected, policy.calibration_bins
        )
        candidate_brier = brier_score(candidate_probs, expected)
        baseline_brier = brier_score(baseline_probs, expected)
        ece_delta = candidate_ece - baseline_ece
        brier_delta = candidate_brier - baseline_brier
        passed = (
            not regressed
            and ece_delta <= policy.max_ece_increase
            and brier_delta <= policy.max_brier_increase
        )
        return LayerResult(
            name="calibration",
            passed=passed,
            details={
                "per_class": per_class,
                "regressed_classes": sorted(regressed),
                "candidate_ece": candidate_ece,
                "baseline_ece": baseline_ece,
                "ece_delta": ece_delta,
                "candidate_brier": candidate_brier,
                "baseline_brier": baseline_brier,
                "brier_delta": brier_delta,
            },
        )

    @staticmethod
    def _slice_layer(
        candidate_pred: np.ndarray,
        baseline_pred: np.ndarray,
        expected: np.ndarray,
        golden: GoldenSet,
        policy: EvalPolicy,
    ) -> LayerResult:
        per_slice: dict[str, dict] = {}
        regressed: list[str] = []
        for name, indices in golden.slices().items():
            count = len(indices)
            selection = np.array(indices, dtype=np.int64)
            candidate_accuracy = accuracy_score(
                candidate_pred[selection], expected[selection]
            )
            baseline_accuracy = accuracy_score(
                baseline_pred[selection], expected[selection]
            )
            delta = candidate_accuracy - baseline_accuracy
            per_slice[name] = {
                "examples": count,
                "candidate_accuracy": candidate_accuracy,
                "baseline_accuracy": baseline_accuracy,
                "delta": delta,
                # Small slices are reported but never enforced.
                "enforced": count >= policy.min_class_examples,
            }
            if count >= policy.min_class_examples and delta < -policy.max_slice_accuracy_drop:
                regressed.append(name)
        return LayerResult(
            name="slices",
            passed=not regressed,
            details={
                "per_slice": per_slice,
                "regressed_slices": sorted(regressed),
            },
        )

    @staticmethod
    def _skip_remaining(report: EvalReport) -> None:
        present = {layer.name for layer in report.layers}
        for name in LAYERS:
            if name not in present:
                report.layers.append(LayerResult(name=name, passed=False, skipped=True))
