"""Statistical canary analysis: from measurements to a deterministic verdict.

The analyzer fuses two evidence streams —

* the golden-set :class:`~repro.eval.harness.EvalReport` (paired per-example
  correctness of candidate and baseline on frozen ground truth), and
* live shadow agreement counters from :mod:`repro.observability`
  (``shadow_pair_agree:<primary>-><shadow>`` plus per-class counts),

— into one machine-readable :class:`Verdict`: ``promote`` / ``hold`` /
``rollback``, with every input (policy, seed, golden fingerprint) and every
intermediate statistic embedded, so the decision is auditable and exactly
reproducible.

Statistics are deliberately boring and exactly seeded:

* a **paired bootstrap** over per-example correctness gives a percentile
  confidence interval on the accuracy delta (``np.random.default_rng(seed)``
  — same seed, same interval, bit for bit);
* an **exact one-sided binomial test** (log-space, no approximation) asks how
  surprising the observed shadow agreement count would be if the true rate
  were exactly the policy's ``min_agreement_rate`` — run on the aggregate
  pair and again per class to catch class-skewed disagreement that aggregate
  agreement hides.

Decision semantics:

* ``rollback`` — the candidate is *confidently* worse: the bootstrap CI lies
  entirely below the non-inferiority margin, or live shadow agreement is
  significantly below the floor with enough samples.
* ``promote`` — every eval layer passed, the CI lies entirely at-or-above the
  margin, and no shadow evidence contradicts.
* ``hold`` — everything else: insufficient evidence, borderline intervals,
  failed soft layers (calibration/slices), or shadow contradiction short of
  significance.  Hold is the safe default; the flywheel retries later with
  more traffic.

Verdicts contain **no timestamps or host state**; :meth:`Verdict.to_json`
is canonical (sorted keys, compact separators), so the same inputs produce
byte-identical verdict JSON across processes and machines — a property the
test suite enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np
from scipy.special import gammaln

from repro.eval.golden import GoldenSet
from repro.eval.harness import EvalReport, LayeredEvaluator
from repro.eval.policy import EvalPolicy

#: decision name -> numeric code exported to /metrics (float so the cluster
#: fleet merge averages rather than sums worker-reported codes).
VERDICT_CODES: dict[str, float] = {"promote": 1.0, "hold": 0.0, "rollback": -1.0}


def binomial_cdf(successes: int, trials: int, rate: float) -> float:
    """Exact P(X <= successes) for X ~ Binomial(trials, rate), in log space."""
    if trials < 0:
        raise ValueError(f"trials must be >= 0, got {trials}")
    if successes >= trials:
        return 1.0
    if successes < 0:
        return 0.0
    if rate <= 0.0:
        return 1.0
    if rate >= 1.0:
        return 0.0
    counts = np.arange(0, successes + 1, dtype=np.float64)
    log_pmf = (
        gammaln(trials + 1)
        - gammaln(counts + 1)
        - gammaln(trials - counts + 1)
        + counts * np.log(rate)
        + (trials - counts) * np.log1p(-rate)
    )
    return float(min(1.0, np.exp(log_pmf).sum()))


@dataclass(frozen=True)
class ShadowEvidence:
    """Live shadow agreement counts for one (primary, shadow) version pair."""

    primary: str
    shadow: str
    requests: int
    agreements: int
    by_class: Mapping[str, tuple[int, int]] | None = None

    def __post_init__(self) -> None:
        if self.requests < 0 or self.agreements < 0:
            raise ValueError("shadow counts must be non-negative")
        if self.agreements > self.requests:
            raise ValueError(
                f"agreements ({self.agreements}) exceed requests ({self.requests})"
            )

    @property
    def agreement_rate(self) -> float | None:
        if self.requests == 0:
            return None
        return self.agreements / self.requests

    @classmethod
    def from_metrics_snapshot(
        cls, snapshot: Mapping, primary: str, shadow: str
    ) -> "ShadowEvidence":
        """Extract the pair's evidence from ``RouteMetrics.snapshot()`` output.

        Counters are attributed per (primary, shadow) pair, so traffic
        mirrored before a hot-swap (a different pair) never pollutes the
        current pair's test.
        """
        shadow_stats = snapshot.get("shadow", {})
        pair = shadow_stats.get("pairs", {}).get(f"{primary}->{shadow}", {})
        requests = int(pair.get("requests", 0))
        agreements = int(pair.get("agreements", 0))
        by_class = {}
        for label, rated in shadow_stats.get("by_class", {}).get(shadow, {}).items():
            by_class[label] = (
                int(rated.get("agreements", 0)),
                int(rated.get("disagreements", 0)),
            )
        return cls(
            primary=primary,
            shadow=shadow,
            requests=requests,
            agreements=agreements,
            by_class=by_class or None,
        )


@dataclass(frozen=True)
class Verdict:
    """One deterministic promote/hold/rollback decision with its evidence."""

    route: str
    candidate: str
    baseline: str
    decision: str
    reasons: tuple[str, ...]
    seed: int
    golden_version: str
    golden_fingerprint: str
    policy: dict
    statistics: dict
    report: dict

    def __post_init__(self) -> None:
        if self.decision not in VERDICT_CODES:
            raise ValueError(
                f"decision must be one of {sorted(VERDICT_CODES)}, "
                f"got {self.decision!r}"
            )

    @property
    def code(self) -> float:
        return VERDICT_CODES[self.decision]

    def as_dict(self) -> dict:
        return {
            "route": self.route,
            "candidate": self.candidate,
            "baseline": self.baseline,
            "decision": self.decision,
            "code": self.code,
            "reasons": list(self.reasons),
            "seed": int(self.seed),
            "golden_version": self.golden_version,
            "golden_fingerprint": self.golden_fingerprint,
            "policy": self.policy,
            "statistics": self.statistics,
            "report": self.report,
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators, no timestamps.

        Same seed + same golden set + same model pair ⇒ byte-identical
        output; the admin plane and the flywheel compare and store this form.
        """
        import json

        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def summary(self) -> dict:
        """Compact flat form for ``stats()`` / ``/metrics`` / health merging.

        ``code`` is a float on purpose: the cluster health merge sums ints
        and averages floats, and a fleet of workers reporting the same
        verdict should average to that verdict, not sum to a multiple.
        """
        return {
            "candidate": self.candidate,
            "baseline": self.baseline,
            "decision": self.decision,
            "code": self.code,
        }


class CanaryAnalyzer:
    """Turns an :class:`EvalReport` (+ optional live evidence) into a verdict."""

    def __init__(self, policy: EvalPolicy | None = None, *, seed: int = 0) -> None:
        self.policy = policy if policy is not None else EvalPolicy()
        self.seed = int(seed)

    def analyze(
        self, report: EvalReport, shadow: ShadowEvidence | None = None
    ) -> Verdict:
        """Decide promote/hold/rollback for *report* (+ optional *shadow*)."""
        policy = self.policy
        reasons: list[str] = []
        statistics: dict = {"bootstrap": None, "shadow": None}

        rollback = False
        promotable = report.passed

        if report.candidate_correct is None or report.baseline_correct is None:
            # Compatibility failed: the pair was never measured, so there is
            # no statistical ground to stand on — hold, never rollback.
            compat = report.layer("compatibility")
            for problem in compat.details.get("problems", []):
                reasons.append(f"compatibility: {problem}")
            promotable = False
        else:
            lower, upper, observed = self._bootstrap_delta(
                report.candidate_correct, report.baseline_correct
            )
            margin = -policy.max_accuracy_drop
            statistics["bootstrap"] = {
                "delta": observed,
                "lower": lower,
                "upper": upper,
                "margin": margin,
                "resamples": policy.bootstrap_resamples,
                "confidence": policy.confidence,
            }
            if upper < margin:
                rollback = True
                reasons.append(
                    f"accuracy delta CI [{lower:.4f}, {upper:.4f}] lies entirely "
                    f"below the non-inferiority margin {margin:.4f}"
                )
            elif lower < margin:
                promotable = False
                reasons.append(
                    f"accuracy delta CI [{lower:.4f}, {upper:.4f}] straddles the "
                    f"non-inferiority margin {margin:.4f}; more evidence needed"
                )
            if not report.passed:
                failed = report.failed_layer
                promotable = False
                reasons.append(f"eval layer {failed!r} failed")

        if shadow is not None:
            shadow_stats, shadow_rollback, shadow_blocks = self._shadow_test(shadow)
            statistics["shadow"] = shadow_stats
            if shadow_rollback:
                rollback = True
            if shadow_blocks:
                promotable = False
            reasons.extend(shadow_stats.pop("reasons"))

        if rollback:
            decision = "rollback"
        elif promotable:
            decision = "promote"
            reasons.append(
                "all eval layers passed and the accuracy delta CI clears the "
                "non-inferiority margin"
            )
        else:
            decision = "hold"

        return Verdict(
            route=report.route,
            candidate=report.candidate,
            baseline=report.baseline,
            decision=decision,
            reasons=tuple(reasons),
            seed=self.seed,
            golden_version=report.golden_version,
            golden_fingerprint=report.golden_fingerprint,
            policy=policy.as_dict(),
            statistics=statistics,
            report=report.as_dict(),
        )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def _bootstrap_delta(
        self, candidate_correct: np.ndarray, baseline_correct: np.ndarray
    ) -> tuple[float, float, float]:
        """Seeded paired-bootstrap percentile CI on the accuracy delta.

        Resampling examples (not the two systems independently) preserves the
        per-example pairing, which is what makes small deltas detectable.
        """
        policy = self.policy
        count = len(candidate_correct)
        observed = float(candidate_correct.mean() - baseline_correct.mean())
        rng = np.random.default_rng(self.seed)
        indices = rng.integers(0, count, size=(policy.bootstrap_resamples, count))
        deltas = (
            candidate_correct[indices].mean(axis=1)
            - baseline_correct[indices].mean(axis=1)
        )
        tail = (1.0 - policy.confidence) / 2.0
        lower, upper = np.quantile(deltas, [tail, 1.0 - tail])
        return float(lower), float(upper), observed

    def _shadow_test(self, shadow: ShadowEvidence) -> tuple[dict, bool, bool]:
        """Binomial tests on live agreement; returns (stats, rollback, block).

        ``rollback`` when aggregate agreement is significantly below the
        policy floor; ``block`` (demote promote to hold) when evidence is
        below the floor without significance, or a single class shows a
        significant skew the aggregate hides.
        """
        policy = self.policy
        reasons: list[str] = []
        rollback = False
        block = False
        stats: dict = {
            "primary": shadow.primary,
            "shadow": shadow.shadow,
            "requests": int(shadow.requests),
            "agreements": int(shadow.agreements),
            "agreement_rate": shadow.agreement_rate,
            "min_agreement_rate": policy.min_agreement_rate,
            "p_value": None,
            "sufficient": shadow.requests >= policy.min_shadow_requests,
            "skewed_classes": [],
            "reasons": reasons,
        }
        if shadow.requests < policy.min_shadow_requests:
            reasons.append(
                f"shadow evidence inconclusive: {shadow.requests} mirrored "
                f"requests < {policy.min_shadow_requests} required"
            )
            return stats, rollback, block

        p_value = binomial_cdf(
            shadow.agreements, shadow.requests, policy.min_agreement_rate
        )
        stats["p_value"] = p_value
        rate = shadow.agreement_rate or 0.0
        if rate < policy.min_agreement_rate:
            if p_value < policy.shadow_alpha:
                rollback = True
                reasons.append(
                    f"live agreement {rate:.4f} over {shadow.requests} requests "
                    f"is significantly below the {policy.min_agreement_rate:.2f} "
                    f"floor (p={p_value:.4g})"
                )
            else:
                block = True
                reasons.append(
                    f"live agreement {rate:.4f} is below the "
                    f"{policy.min_agreement_rate:.2f} floor but not yet "
                    f"significant (p={p_value:.4g})"
                )

        skewed: list[str] = []
        for label in sorted(shadow.by_class or {}):
            agree, disagree = shadow.by_class[label]
            total = agree + disagree
            if total < policy.min_class_examples:
                continue
            class_p = binomial_cdf(agree, total, policy.min_agreement_rate)
            if agree / total < policy.min_agreement_rate and class_p < policy.shadow_alpha:
                skewed.append(label)
        if skewed:
            block = True
            stats["skewed_classes"] = skewed
            reasons.append(
                f"shadow agreement is significantly skewed on classes {skewed}"
            )
        return stats, rollback, block


def evaluate_route(
    gateway,
    route: str,
    candidate: str,
    golden: GoldenSet,
    *,
    baseline: str | None = None,
    policy: EvalPolicy | None = None,
    seed: int = 0,
    use_shadow: bool = True,
) -> tuple[EvalReport, Verdict]:
    """One-call gate: layered evaluation + canary analysis for a route.

    Pulls live shadow evidence for the ``(baseline, candidate)`` pair from
    the route's metrics when *use_shadow* is true (absent counters simply
    yield zero mirrored requests, which the analyzer treats as
    inconclusive).  This is the entry point the server admin plane and the
    ``repro-eval`` CLI share.
    """
    evaluator = LayeredEvaluator(gateway)
    report = evaluator.evaluate(
        route, candidate, golden, baseline=baseline, policy=policy
    )
    shadow = None
    if use_shadow:
        snapshot = gateway.registry.metrics(route).snapshot()
        shadow = ShadowEvidence.from_metrics_snapshot(
            snapshot, primary=report.baseline, shadow=candidate
        )
    analyzer = CanaryAnalyzer(policy, seed=seed)
    return report, analyzer.analyze(report, shadow)
