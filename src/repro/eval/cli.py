"""``repro-eval`` — run the eval gate from the command line.

Three subcommands cover the gate's lifecycle:

* ``repro-eval build`` — deterministically build a golden set from the
  held-out test split of a synthetic corpus and persist it as JSONL;
* ``repro-eval run`` — offline gate: load a baseline and a candidate bundle
  into a private gateway, replay the golden set, print the verdict;
* ``repro-eval remote`` — ask a *running* server (or cluster supervisor) to
  evaluate via ``POST /admin/routes/<route>/evaluate``, so the decision uses
  the live process's shadow counters.

``--json`` prints the verdict's canonical JSON (sorted keys, compact, no
timestamps) so shell scripts and the future flywheel consume decisions
without parsing prose.  The exit code mirrors the decision: ``0`` promote,
``1`` hold, ``2`` rollback.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request

from repro.eval.canary import Verdict, evaluate_route
from repro.eval.golden import build_golden_set, load_golden_set, save_golden_set
from repro.eval.policy import EvalPolicy

#: Decision -> process exit code (promote is the only "success").
EXIT_CODES = {"promote": 0, "hold": 1, "rollback": 2}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Golden-set eval gate: build sets, evaluate candidates, "
        "emit promote/hold/rollback verdicts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser(
        "build", help="build a golden set from a synthetic corpus test split"
    )
    build.add_argument("--out", required=True, help="output JSONL path")
    build.add_argument("--route", default="cuisine", help="route the set evaluates")
    build.add_argument("--size", type=int, help="cap the set to N seeded-sampled examples")
    build.add_argument("--holdout", type=int, default=2, help="rarest N cuisines become holdout slices")
    build.add_argument("--set-version", default="1", help="version label of the golden set")
    build.add_argument("--scale", type=float, default=0.01, help="synthetic corpus scale")
    build.add_argument("--seed", type=int, default=7, help="corpus + sampling seed")

    run = sub.add_parser(
        "run", help="offline gate: evaluate a candidate bundle against a baseline bundle"
    )
    run.add_argument("--route", default="cuisine")
    run.add_argument("--baseline-bundle", required=True, help="baseline bundle directory")
    run.add_argument("--candidate-bundle", required=True, help="candidate bundle directory")
    run.add_argument("--baseline-version", default="baseline")
    run.add_argument("--candidate-version", default="candidate")
    run.add_argument("--golden", required=True, help="golden set JSONL path")
    run.add_argument("--policy", help="JSON object overriding EvalPolicy fields")
    run.add_argument("--seed", type=int, default=0, help="bootstrap seed")
    run.add_argument("--json", action="store_true", help="print canonical verdict JSON")

    remote = sub.add_parser(
        "remote", help="evaluate through a running server's admin plane"
    )
    remote.add_argument("--url", required=True, help="server base URL, e.g. http://127.0.0.1:8000")
    remote.add_argument("--route", default="cuisine")
    remote.add_argument("--candidate", required=True, help="deployed candidate version")
    remote.add_argument("--baseline", help="deployed baseline version (default: active)")
    remote.add_argument("--golden", required=True, help="golden set path *on the server host*")
    remote.add_argument("--token", required=True, help="admin token")
    remote.add_argument("--policy", help="JSON object overriding EvalPolicy fields")
    remote.add_argument("--seed", type=int, default=0, help="bootstrap seed")
    remote.add_argument(
        "--apply",
        action="store_true",
        help="let the server act on the verdict (promote swaps the candidate "
        "active; rollback restores the previous version if the candidate is "
        "active)",
    )
    remote.add_argument("--json", action="store_true", help="print canonical verdict JSON")
    remote.add_argument("--timeout", type=float, default=60.0)
    return parser


def _parse_policy(raw: str | None) -> EvalPolicy | None:
    if raw is None:
        return None
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"--policy is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise SystemExit("--policy must be a JSON object of EvalPolicy fields")
    try:
        return EvalPolicy.from_dict(payload)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"--policy rejected: {exc}")


def _print_verdict(verdict_dict: dict, as_json: bool) -> None:
    if as_json:
        print(json.dumps(verdict_dict, sort_keys=True, separators=(",", ":")))
        return
    print(
        f"verdict: {verdict_dict['decision']}  "
        f"(candidate={verdict_dict['candidate']} "
        f"baseline={verdict_dict['baseline']} "
        f"route={verdict_dict['route']})"
    )
    for reason in verdict_dict.get("reasons", []):
        print(f"  - {reason}")
    bootstrap = (verdict_dict.get("statistics") or {}).get("bootstrap")
    if bootstrap:
        print(
            f"  accuracy delta {bootstrap['delta']:+.4f} "
            f"CI [{bootstrap['lower']:+.4f}, {bootstrap['upper']:+.4f}] "
            f"margin {bootstrap['margin']:+.4f}"
        )


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.data import generate_recipedb
    from repro.data.splits import train_val_test_split

    corpus = generate_recipedb(scale=args.scale, seed=args.seed)
    splits = train_val_test_split(corpus, seed=args.seed)
    golden = build_golden_set(
        splits.test,
        args.route,
        version=args.set_version,
        size=args.size,
        holdout_cuisines=args.holdout,
        seed=args.seed,
    )
    path = save_golden_set(golden, args.out)
    print(
        f"wrote golden set {path} "
        f"({len(golden)} examples, {len(golden.slices())} slices, "
        f"fingerprint {golden.fingerprint()})"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.gateway.gateway import ModelGateway

    policy = _parse_policy(args.policy)
    golden = load_golden_set(args.golden)
    gateway = ModelGateway()
    try:
        gateway.deploy(args.route, args.baseline_version, args.baseline_bundle)
        gateway.deploy(
            args.route, args.candidate_version, args.candidate_bundle, activate=False
        )
        _, verdict = evaluate_route(
            gateway,
            args.route,
            args.candidate_version,
            golden,
            baseline=args.baseline_version,
            policy=policy,
            seed=args.seed,
        )
    finally:
        gateway.close()
    _print_verdict(verdict.as_dict(), args.json)
    return EXIT_CODES[verdict.decision]


def _cmd_remote(args: argparse.Namespace) -> int:
    body: dict = {
        "candidate": args.candidate,
        "golden": args.golden,
        "seed": args.seed,
    }
    if args.baseline:
        body["baseline"] = args.baseline
    if args.apply:
        body["apply"] = True
    if args.policy:
        policy = _parse_policy(args.policy)
        body["policy"] = policy.as_dict()
    request = urllib.request.Request(
        f"{args.url.rstrip('/')}/admin/routes/{args.route}/evaluate",
        data=json.dumps(body).encode("utf-8"),
        headers={
            "Content-Type": "application/json",
            "X-Admin-Token": args.token,
        },
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=args.timeout) as response:
            payload = json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace")
        raise SystemExit(f"server rejected evaluation ({exc.code}): {detail}")
    except urllib.error.URLError as exc:
        raise SystemExit(f"cannot reach {args.url}: {exc.reason}")
    verdict_dict = payload.get("verdict", payload)
    _print_verdict(verdict_dict, args.json)
    if args.apply and not args.json and "applied" in payload:
        print(f"  applied: {payload['applied']}")
    return EXIT_CODES.get(verdict_dict.get("decision"), 1)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "build":
        return _cmd_build(args)
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_remote(args)


if __name__ == "__main__":
    sys.exit(main())
