"""Thresholds governing the eval gate, as one explicit dataclass.

Every number the layered evaluator (:mod:`repro.eval.harness`) or the canary
analyzer (:mod:`repro.eval.canary`) compares against lives here, so a verdict
is fully reproducible from ``(golden set, model pair, policy, seed)`` and the
policy travels inside the verdict JSON.  The defaults are deliberately
conservative: a candidate must demonstrate non-inferiority, not merely fail
to look bad.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields


@dataclass(frozen=True)
class EvalPolicy:
    """Promotion thresholds for the layered eval gate.

    Attributes:
        min_examples: Minimum golden-set size for any verdict beyond ``hold``.
        max_accuracy_drop: Non-inferiority margin: the candidate's overall
            golden-set accuracy may trail the baseline's by at most this much.
        min_class_examples: Per-class / per-slice deltas are only enforced for
            groups with at least this many examples (small groups are noise).
        max_class_accuracy_drop: Largest tolerated accuracy drop on any single
            class with enough examples.
        calibration_bins: Confidence bins for expected calibration error.
        max_ece_increase: Largest tolerated ECE increase (candidate - baseline).
        max_brier_increase: Largest tolerated Brier-score increase.
        max_slice_accuracy_drop: Largest tolerated accuracy drop on any golden
            slice (``core`` or a ``holdout:<cuisine>`` generalization slice).
        min_shadow_requests: Live shadow agreement is only statistically
            tested once the (primary, candidate) pair has mirrored at least
            this many requests; below it the shadow evidence is inconclusive.
        min_agreement_rate: The live agreement rate the candidate must hold
            against the baseline under the binomial test.
        shadow_alpha: Significance level of the one-sided binomial test on
            shadow agreement (aggregate and per-class).
        bootstrap_resamples: Paired bootstrap resamples for the accuracy-delta
            confidence interval.
        confidence: Two-sided confidence level of the bootstrap interval.
    """

    min_examples: int = 30
    max_accuracy_drop: float = 0.02
    min_class_examples: int = 5
    max_class_accuracy_drop: float = 0.15
    calibration_bins: int = 10
    max_ece_increase: float = 0.05
    max_brier_increase: float = 0.02
    max_slice_accuracy_drop: float = 0.10
    min_shadow_requests: int = 50
    min_agreement_rate: float = 0.80
    shadow_alpha: float = 0.05
    bootstrap_resamples: int = 400
    confidence: float = 0.90

    def __post_init__(self) -> None:
        for name in ("min_examples", "min_class_examples", "min_shadow_requests"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
        if not isinstance(self.calibration_bins, int) or self.calibration_bins < 2:
            raise ValueError(
                f"calibration_bins must be an integer >= 2, got {self.calibration_bins!r}"
            )
        if not isinstance(self.bootstrap_resamples, int) or self.bootstrap_resamples < 10:
            raise ValueError(
                f"bootstrap_resamples must be an integer >= 10, "
                f"got {self.bootstrap_resamples!r}"
            )
        for name in (
            "max_accuracy_drop",
            "max_class_accuracy_drop",
            "max_ece_increase",
            "max_brier_increase",
            "max_slice_accuracy_drop",
        ):
            value = getattr(self, name)
            if not 0.0 <= float(value) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        for name in ("min_agreement_rate", "shadow_alpha", "confidence"):
            value = getattr(self, name)
            if not 0.0 < float(value) < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {value!r}")

    def as_dict(self) -> dict:
        """JSON-able mapping of every threshold (embedded in verdicts)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "EvalPolicy":
        """Rebuild a policy from :meth:`as_dict` output (e.g. a request body).

        Unknown keys raise ``ValueError`` naming the offending field so typos
        in admin requests fail loudly instead of silently keeping a default.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown EvalPolicy fields {unknown}; known: {sorted(known)}"
            )
        return cls(**payload)
