"""Batch-level featurization fast path for the serving miss path.

The prediction service's cache-miss path used to featurize one sequence at a
time: each request walked the feature store (global-lock bookkeeping, a
per-key lock, a content digest) and ran the pure-Python stage chain over
every item occurrence.  This module fuses that work at the batch level while
staying **bitwise-identical** to the sequential path:

* :class:`BatchFeaturizer.batch_tokens` — tokenize/lemmatize a whole
  micro-batch in one pass.  The store is consulted once per sequence (warm
  sequences stay pure cache hits, with the same hit/miss accounting as
  before); the remaining misses share one **item memo table**, so an item
  string appearing in many recipes of the batch (``salt``, ``onion``,
  ``stir`` — the normal case) runs the clean/tokenize/lemmatize chain exactly
  once.  The memo is a bounded LRU kept across batches.
* :class:`PrecomputedTfidfEncoder` — fuses token lists → TF-IDF CSR assembly
  into one NumPy pass over the fitted vectorizer's precomputed vocabulary and
  idf arrays (no intermediate sparse allocations, no ``astype``/``tocsr``
  round-trips), bitwise-identical to
  :meth:`~repro.features.tfidf.TfidfVectorizer.transform`.
* :class:`PrecomputedHashingEncoder` — the hashing-trick analogue for
  stateless :class:`~repro.features.hashing.HashingVectorizer` features:
  token → (bucket, sign) lookups are memoised (BLAKE2b runs once per distinct
  token, not once per occurrence) and the CSR is assembled vectorised,
  bitwise-identical to ``HashingVectorizer.transform``.

Both encoders run the shared :func:`~repro.features.counts.ngram_features`
analyzer first, so n-gram specs (``ngram_range > (1, 1)``) take the fused
path too — the expansion produces exactly the feature strings the reference
vectorizers analyze, and everything downstream is the same merged CSR
assembly.  :meth:`BatchFeaturizer.encoder_for` gates only on the model: one
that overrides ``encode_tokens`` keeps its own encoding.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Sequence

import numpy as np
from scipy import sparse

from repro.features.counts import ngram_features
from repro.features.hashing import HashingVectorizer, _stable_hash
from repro.features.tfidf import TfidfVectorizer
from repro.pipeline.fingerprint import sequence_key, stable_hash
from repro.pipeline.store import FeatureStore, _load_json, _save_json
from repro.text.pipeline import PipelineConfig
from repro.text.stages import StageChain

__all__ = [
    "BatchFeaturizer",
    "PrecomputedHashingEncoder",
    "PrecomputedTfidfEncoder",
]

#: Store artifact kind shared with :meth:`FeatureStore.sequence_tokens`.
_SEQUENCE_KIND = "sequence_tokens"


def _assemble_csr(
    column_chunks: list[np.ndarray | list[int]],
    values_for,
    n_features: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Merge per-document column occurrences into canonical CSR arrays.

    ``values_for(keys, counts, order)`` maps the merged (sorted, deduplicated)
    occurrence keys to the CSR data array; *order* groups the original
    occurrence positions by key (for signed/weighted merges).

    Returns ``(data, indices, indptr, rows)`` where *rows* is the row index
    of every stored element (needed for row-wise normalisation).
    """
    n_docs = len(column_chunks)
    lengths = [len(chunk) for chunk in column_chunks]
    occurrence_rows = np.repeat(np.arange(n_docs, dtype=np.int64), lengths)
    occurrence_columns = (
        np.concatenate([np.asarray(c, dtype=np.int64) for c in column_chunks])
        if any(lengths)
        else np.zeros(0, dtype=np.int64)
    )
    keys, index, counts = np.unique(
        occurrence_rows * n_features + occurrence_columns,
        return_inverse=True,
        return_counts=True,
    )
    data = values_for(keys, counts, index)
    rows = keys // n_features
    indices = keys % n_features
    indptr = np.zeros(n_docs + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=n_docs), out=indptr[1:])
    return data, indices, indptr, rows


class PrecomputedTfidfEncoder:
    """Fused tokens → TF-IDF CSR encoding over a fitted vectorizer.

    Bitwise-identical to ``vectorizer.transform(token_lists)`` for any
    ``ngram_range``: the shared analyzer expands the same n-gram strings,
    then same counts, same sublinear/idf weighting (one multiply per stored
    element), same normalisation order of operations.
    """

    def __init__(self, vectorizer: TfidfVectorizer) -> None:
        if vectorizer.idf_ is None:
            raise RuntimeError("vectorizer is not fitted; call fit() first")
        self.vectorizer = vectorizer
        # Precomputed once per fitted model: the term -> column table and the
        # idf weights, referenced (not copied) from the fitted artifacts.
        self._vocabulary_get = vectorizer.vocabulary_.get
        self._idf = sparse.csr_matrix(vectorizer.idf_)
        self._n_features = vectorizer.n_features
        self._sublinear = vectorizer.sublinear_tf
        self._ngram_range = vectorizer._counter.ngram_range

    def encode(self, token_lists: Sequence[Sequence[str]]) -> sparse.csr_matrix:
        """TF-IDF CSR matrix of *token_lists* (one fused NumPy pass)."""
        get = self._vocabulary_get
        ngram_range = self._ngram_range
        column_chunks = [
            [
                idx
                for idx in map(get, ngram_features(tokens, ngram_range))
                if idx is not None
            ]
            for tokens in token_lists
        ]
        n_docs = len(column_chunks)
        data, indices, indptr, _ = _assemble_csr(
            column_chunks,
            lambda keys, counts, order: counts.astype(np.float64),
            self._n_features,
        )
        counts = sparse.csr_matrix(
            (data, indices, indptr),
            shape=(n_docs, self._n_features),
            dtype=np.float64,
        )
        # From the counts on, run the *literal* reference ops on the fused
        # matrix.  Downstream classifiers sum sparse products in storage
        # order, so even the internal CSR layout must match — and scipy's
        # broadcasting multiply / normalisation reductions have
        # version-specific orderings (pairwise row sums, linked-list matmul)
        # that a reimplementation would have to chase ulp by ulp.  The fusion
        # win is everything before this point: analyzer calls, the astype
        # copy, and the per-document Python bookkeeping are gone.
        if self._sublinear:
            counts.data = 1.0 + np.log(counts.data)
        tfidf = counts.multiply(self._idf).tocsr()
        return self.vectorizer._normalize(tfidf)


class PrecomputedHashingEncoder:
    """Memoised hashing-trick encoding for stateless hashed features.

    ``HashingVectorizer.transform`` digests every feature *occurrence* with
    BLAKE2b.  This encoder memoises feature → (bucket, sign) in a bounded
    LRU (hashing runs once per distinct feature string — n-grams included)
    and assembles the CSR with the same vectorised merge as the TF-IDF path
    — bitwise-identical output for any ``ngram_range``.
    """

    def __init__(self, vectorizer: HashingVectorizer, memo_size: int = 65536) -> None:
        self.vectorizer = vectorizer
        self._ngram_range = vectorizer.ngram_range
        self._memo: OrderedDict[str, tuple[int, float]] = OrderedDict()
        self._memo_size = memo_size
        self._memo_lock = threading.Lock()

    def _bucket_sign(self, token: str) -> tuple[int, float]:
        with self._memo_lock:
            entry = self._memo.get(token)
            if entry is not None:
                self._memo.move_to_end(token)
                return entry
        h = _stable_hash(token)
        bucket = h % self.vectorizer.n_features
        sign = -1.0 if self.vectorizer.alternate_sign and (h >> 63) & 1 else 1.0
        with self._memo_lock:
            self._memo[token] = (bucket, sign)
            if len(self._memo) > self._memo_size:
                self._memo.popitem(last=False)
        return bucket, sign

    def encode(self, token_lists: Sequence[Sequence[str]]) -> sparse.csr_matrix:
        """Hashed CSR matrix of *token_lists*, matching the reference path."""
        n_features = self.vectorizer.n_features
        column_chunks: list[list[int]] = []
        sign_chunks: list[list[float]] = []
        for tokens in token_lists:
            columns: list[int] = []
            signs: list[float] = []
            for token in ngram_features(tokens, self._ngram_range):
                bucket, sign = self._bucket_sign(token)
                columns.append(bucket)
                signs.append(sign)
            column_chunks.append(columns)
            sign_chunks.append(signs)
        occurrence_signs = (
            np.concatenate([np.asarray(s, dtype=np.float64) for s in sign_chunks])
            if any(len(s) for s in sign_chunks)
            else np.zeros(0, dtype=np.float64)
        )

        def signed_sums(keys, counts, order):
            # Sum of ±1.0 per (row, bucket); occurrence order within a key
            # matches the reference dict accumulation (both are exact).
            sums = np.bincount(order, weights=occurrence_signs, minlength=len(keys))
            return sums

        data, indices, indptr, _ = _assemble_csr(
            column_chunks, signed_sums, n_features
        )
        # The reference path drops exact-zero buckets (alternating signs that
        # cancelled) and binarises afterwards.
        keep = data != 0.0
        if not keep.all():
            per_row = np.bincount(
                np.repeat(np.arange(len(indptr) - 1), np.diff(indptr)),
                weights=keep.astype(np.float64),
                minlength=len(indptr) - 1,
            )
            data = data[keep]
            indices = indices[keep]
            indptr = np.zeros(len(per_row) + 1, dtype=np.int64)
            np.cumsum(per_row.astype(np.int64), out=indptr[1:])
        if self.vectorizer.binary:
            data = np.sign(data)
        return sparse.csr_matrix(
            (data, indices, indptr),
            shape=(len(column_chunks), n_features),
            dtype=np.float64,
        )


class BatchFeaturizer:
    """One-pass batch tokenize/lemmatize with a shared item memo table.

    The featurizer is bitwise-identical to per-sequence
    ``StageChain.run_sequence``: every item is processed by the same chain,
    the memo only deduplicates *equal* item strings (the chain is a pure
    function of the item).  Store integration preserves the prediction
    service's warm-artifact semantics — sequences already featurized (by
    warm-up, a previous batch, or the training side's shard republish) are
    pure store hits, and newly computed sequences are published back under
    their per-sequence keys with the same hit/miss accounting.

    Args:
        memo_size: Bound on the per-config item → words LRU memo.
    """

    def __init__(self, memo_size: int = 65536) -> None:
        if memo_size < 1:
            raise ValueError(f"memo_size must be >= 1, got {memo_size}")
        self.memo_size = memo_size
        self._chains: dict[str, StageChain] = {}
        self._memos: dict[str, OrderedDict[str, list[str]]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _chain_and_memo(
        self, config: PipelineConfig
    ) -> tuple[StageChain, OrderedDict[str, list[str]]]:
        key = stable_hash(config)
        with self._lock:
            chain = self._chains.get(key)
            if chain is None:
                chain = config.stage_chain()
                self._chains[key] = chain
                self._memos[key] = OrderedDict()
            return chain, self._memos[key]

    def _item_words(
        self,
        items: list[str],
        chain: StageChain,
        memo: OrderedDict[str, list[str]],
    ) -> dict[str, list[str]]:
        """Words of every distinct item, via the memo (one chain run each)."""
        resolved: dict[str, list[str]] = {}
        missing: list[str] = []
        with self._lock:
            for item in items:
                words = memo.get(item)
                if words is not None:
                    memo.move_to_end(item)
                    resolved[item] = words
                else:
                    missing.append(item)
        for item in missing:
            resolved[item] = chain.run_item(item)
        if missing:
            with self._lock:
                for item in missing:
                    memo[item] = resolved[item]
                while len(memo) > self.memo_size:
                    memo.popitem(last=False)
        return resolved

    # ------------------------------------------------------------------
    def batch_tokens(
        self,
        sequences: Sequence[tuple[str, ...]],
        config: PipelineConfig,
        store: FeatureStore | None = None,
    ) -> list[list[str]]:
        """Token sequences for a whole micro-batch, in order.

        With a *store*, warm sequences resolve as per-sequence cache hits and
        cold ones are computed here and published back (counted as misses,
        exactly like :meth:`FeatureStore.sequence_tokens` would).
        """
        results: list[list[str] | None] = [None] * len(sequences)
        pending: dict[str, list[int]] = {}
        pending_keys: list[str | None] = [None] * len(sequences)
        if store is not None:
            for position, sequence in enumerate(sequences):
                key = sequence_key(sequence, config)
                found, value = store.lookup(
                    _SEQUENCE_KIND, key, suffix=".json", load=_load_json
                )
                if found:
                    results[position] = value
                else:
                    pending.setdefault(key, []).append(position)
                    pending_keys[position] = key
        else:
            for position in range(len(sequences)):
                key = str(position)
                pending[key] = [position]
                pending_keys[position] = key

        if pending:
            chain, memo = self._chain_and_memo(config)
            # One memo pass over every distinct item of the cold sequences.
            distinct: dict[str, None] = {}
            representative: dict[str, tuple[str, ...]] = {}
            for key, positions in pending.items():
                sequence = sequences[positions[0]]
                representative[key] = sequence
                for item in sequence:
                    distinct.setdefault(item, None)
            words_of = self._item_words(list(distinct), chain, memo)
            for key, positions in pending.items():
                tokens = chain.join.assemble(
                    words_of[item] for item in representative[key]
                )
                if store is not None:
                    tokens = store.insert(
                        _SEQUENCE_KIND, key, tokens, suffix=".json", save=_save_json
                    )
                for position in positions:
                    results[position] = tokens
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def encoder_for(self, model):
        """The precomputed encoder for *model*, or ``None``.

        A model qualifies when it uses the stock
        ``StatisticalModel.encode_tokens`` (no subclass or per-instance
        override) over a fitted vectorizer — any ``ngram_range``.
        Sequential models (vocabulary encoding is already batch-vectorised)
        fall back to ``model.predict_proba_tokens``.
        """
        from repro.models.statistical import StatisticalModel

        if not isinstance(model, StatisticalModel):
            return None
        if "encode_tokens" in vars(model):
            return None  # per-instance override (tests, wrappers) wins
        if type(model).encode_tokens is not StatisticalModel.encode_tokens:
            return None
        vectorizer = model.vectorizer
        cached = getattr(model, "_precomputed_encoder", None)
        if cached is not None and cached.vectorizer is vectorizer:
            return cached
        encoder = None
        if isinstance(vectorizer, TfidfVectorizer):
            if vectorizer.idf_ is not None:
                encoder = PrecomputedTfidfEncoder(vectorizer)
        elif isinstance(vectorizer, HashingVectorizer):
            encoder = PrecomputedHashingEncoder(vectorizer)
        if encoder is not None:
            # Cached on the model object itself so hot-swapped models (and
            # requests pinned to them mid-swap) each keep their own encoder.
            model._precomputed_encoder = encoder
        return encoder
