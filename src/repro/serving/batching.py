"""Pluggable batch control for the prediction service's micro-batch worker.

The worker loop in :class:`~repro.serving.service.PredictionService` used to
hard-code its flush rule: accumulate up to ``max_batch_size`` requests or
until ``flush_interval`` elapses, whichever comes first.  That rule is the
right one *under load* — batching amortizes the model pass — but it taxes a
lone request with the full flush window even when nothing else is coming.

This module turns the flush rule into a **policy object** the worker
consults once per batch:

* :class:`FixedBatchPolicy` — today's behaviour, the default.  A constant
  ``(limit, window)`` plan regardless of load; with the service's default
  arguments the worker's observable behaviour (and its outputs, bitwise)
  is unchanged.
* :class:`AdaptiveBatchPolicy` — an SLO-aware controller.  It watches queue
  depth and a smoothed load signal and picks the plan per flush: deep
  backlog → full batch with **zero** wait (the work is already queued;
  sleeping only adds latency), idle service → zero wait (a lone request
  flushes immediately, so light-load p50 equals single-request latency),
  moderate load → a flush window bounded by a fraction of the latency SLO
  (spend a small slice of the budget gathering a batch).

The contract (:class:`BatchPolicy`) is deliberately tiny — ``plan`` before
each batch, ``observe`` after — so a policy can be as dumb or as stateful
as it likes.  The worker clamps whatever a policy returns (``limit`` to
``[1, max_batch_size]``, ``window`` to ``>= 0``), so a buggy policy can
degrade batching but never crash the loop or violate the queue API.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass

__all__ = [
    "AdaptiveBatchPolicy",
    "BATCH_POLICIES",
    "BatchPlan",
    "BatchPolicy",
    "FixedBatchPolicy",
    "resolve_batch_policy",
]

#: Policy names accepted by :func:`resolve_batch_policy` (and the CLIs).
BATCH_POLICIES = ("fixed", "adaptive")

#: Default latency SLO for the adaptive policy, milliseconds.
DEFAULT_SLO_MS = 25.0


@dataclass(frozen=True)
class BatchPlan:
    """One flush decision: collect up to *limit* requests within *window*.

    ``window`` is seconds the worker may wait after the batch's first
    request for more to arrive; ``0`` means "take only what is already
    queued, never sleep".
    """

    limit: int
    window: float


class BatchPolicy(abc.ABC):
    """Decides, per flush, how long the worker waits and for how many.

    The worker calls :meth:`plan` once per batch — after dequeuing the
    batch's first request, with the instantaneous queue depth *behind* that
    request — and :meth:`observe` after the batch is drained, with the
    realized batch size and the depth left behind.  Both run on the single
    worker thread; a policy only needs its own locking for state read from
    other threads (e.g. :meth:`describe` under ``stats()``).
    """

    @abc.abstractmethod
    def plan(self, queue_depth: int) -> BatchPlan:
        """The flush plan for the batch whose first request just arrived."""

    def observe(self, *, batch_size: int, queue_depth: int) -> None:
        """Feedback after a flush: realized size, depth left behind."""

    def describe(self) -> dict:
        """JSON-safe policy self-description, nested under ``stats()``."""
        return {"policy": type(self).__name__}


class FixedBatchPolicy(BatchPolicy):
    """The historical flush rule: constant batch limit, constant window."""

    def __init__(self, max_batch_size: int = 32, flush_interval: float = 0.005) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if flush_interval < 0:
            raise ValueError(f"flush_interval must be >= 0, got {flush_interval}")
        self.max_batch_size = max_batch_size
        self.flush_interval = flush_interval
        self._plan = BatchPlan(limit=max_batch_size, window=flush_interval)

    def plan(self, queue_depth: int) -> BatchPlan:
        return self._plan

    def describe(self) -> dict:
        return {
            "policy": "fixed",
            "limit": self.max_batch_size,
            "window_ms": 1000.0 * self.flush_interval,
        }


class AdaptiveBatchPolicy(BatchPolicy):
    """SLO-aware flush control from observed queue depth.

    Args:
        max_batch_size: Hard batch limit (mirrors the service's).
        slo_ms: Per-request latency objective.  The policy never *spends*
            more than ``window_fraction`` of it waiting for a batch to
            fill, and spends none of it when waiting cannot help.
        window_fraction: Fraction of the SLO budget a moderate-load flush
            may wait (default 20%).
        busy_threshold: Smoothed-load level (concurrent requests beyond the
            first) above which an empty queue is still treated as "traffic
            is coming" rather than "idle".
        ewma_alpha: Smoothing factor of the load signal (higher = reacts
            faster, forgets faster).

    The three regimes:

    * ``queue_depth >= max_batch_size`` — a full batch is already waiting:
      take it, window 0.
    * ``queue_depth == 0`` and the smoothed load is below
      ``busy_threshold`` — the service is idle: flush the lone request
      immediately (light-load p50 = single-request latency).
    * otherwise — requests are trickling in: wait up to
      ``window_fraction * slo_ms`` for the batch to fill.

    Under sustained overload the queue is always deep, so the policy never
    sleeps — exactly what the fixed policy degenerates to when its
    ``queue.get(timeout=...)`` returns instantly — which is why overload
    p99 stays within the fixed policy's bound while light-load p50 drops by
    the flush interval.
    """

    def __init__(
        self,
        max_batch_size: int = 32,
        slo_ms: float = DEFAULT_SLO_MS,
        *,
        window_fraction: float = 0.2,
        busy_threshold: float = 0.5,
        ewma_alpha: float = 0.25,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if not slo_ms > 0:
            raise ValueError(f"slo_ms must be positive, got {slo_ms}")
        if not 0 < window_fraction <= 1:
            raise ValueError(f"window_fraction must be in (0, 1], got {window_fraction}")
        if not 0 < ewma_alpha <= 1:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.max_batch_size = max_batch_size
        self.slo_ms = slo_ms
        self.window_fraction = window_fraction
        self.busy_threshold = busy_threshold
        self.ewma_alpha = ewma_alpha
        self._window = (slo_ms / 1000.0) * window_fraction
        self._lock = threading.Lock()
        self._load_ewma = 0.0

    def plan(self, queue_depth: int) -> BatchPlan:
        if queue_depth >= self.max_batch_size:
            return BatchPlan(limit=self.max_batch_size, window=0.0)
        if queue_depth == 0:
            with self._lock:
                busy = self._load_ewma >= self.busy_threshold
            if not busy:
                return BatchPlan(limit=self.max_batch_size, window=0.0)
        return BatchPlan(limit=self.max_batch_size, window=self._window)

    def observe(self, *, batch_size: int, queue_depth: int) -> None:
        # Load = concurrency beyond the batch's first request: batch-mates
        # plus whatever queued behind the flush.  Zero on an idle service.
        load = float(max(batch_size - 1, 0) + max(queue_depth, 0))
        with self._lock:
            self._load_ewma += self.ewma_alpha * (load - self._load_ewma)

    def describe(self) -> dict:
        with self._lock:
            load = self._load_ewma
        return {
            "policy": "adaptive",
            "limit": self.max_batch_size,
            "slo_ms": self.slo_ms,
            "window_ms": 1000.0 * self._window,
            "load_ewma": load,
        }


def resolve_batch_policy(
    policy: "BatchPolicy | str | None",
    *,
    max_batch_size: int,
    flush_interval: float,
    slo_ms: float | None = None,
) -> BatchPolicy:
    """Resolve a policy spec (instance, name, or ``None``) into a policy.

    ``None`` and ``"fixed"`` build a :class:`FixedBatchPolicy` from the
    service's ``max_batch_size`` / ``flush_interval``; ``"adaptive"``
    builds an :class:`AdaptiveBatchPolicy` with *slo_ms* (default
    :data:`DEFAULT_SLO_MS`).  A ready-made :class:`BatchPolicy` instance is
    returned as-is — its own configuration wins.
    """
    if isinstance(policy, BatchPolicy):
        return policy
    if policy is None or policy == "fixed":
        return FixedBatchPolicy(max_batch_size, flush_interval)
    if policy == "adaptive":
        return AdaptiveBatchPolicy(
            max_batch_size, slo_ms if slo_ms is not None else DEFAULT_SLO_MS
        )
    raise ValueError(
        f"unknown batch policy {policy!r}; known: {BATCH_POLICIES} "
        "or a BatchPolicy instance"
    )
