"""Bundle discovery and loading for the serving layer.

An **export directory** (as written by
:class:`~repro.core.experiment.ExperimentRunner` with ``export_dir`` set)
holds one bundle sub-directory per trained model.  :func:`discover_bundles`
lists them, :func:`load_bundles` restores them, and :class:`ModelBundle`
pairs a restored model with its manifest metadata.  :func:`validate_manifest`
checks a bundle's manifest schema up front — before any array archive is
touched — so a malformed bundle fails with a message naming the offending
fields instead of a deep ``KeyError``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.models.artifacts import BUNDLE_FORMAT_VERSION, MANIFEST_NAME, is_bundle
from repro.models.base import CuisineModel

#: Fields every bundle manifest must carry.
REQUIRED_MANIFEST_FIELDS: frozenset[str] = frozenset(
    {"format_version", "model", "label_space", "feature_spec", "state"}
)

#: Fields a bundle manifest may carry (required ones included).  The dtype
#: trio is written by every current export (``exact`` true and
#: ``array_dtypes`` empty under the default policy) and absent from bundles
#: written before dtype policies existed — both are valid.
KNOWN_MANIFEST_FIELDS: frozenset[str] = REQUIRED_MANIFEST_FIELDS | {
    "model_class",
    "corpus_fingerprint",
    "arrays",
    "exact",
    "dtype_policy",
    "array_dtypes",
}


def _read_manifest(path: Path) -> dict:
    """The raw manifest JSON of the bundle at *path* (no validation)."""
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise FileNotFoundError(f"no model bundle at {path} (missing {MANIFEST_NAME})")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"bundle manifest at {manifest_path} is not valid JSON: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ValueError(
            f"bundle manifest at {manifest_path} must be a JSON object, "
            f"got {type(manifest).__name__}"
        )
    return manifest


def validate_manifest(path: str | Path) -> dict:
    """Validate the manifest schema of the bundle at *path*.

    Runs entirely on ``manifest.json`` — the (potentially large)
    ``arrays-<digest>.npz`` archive is checked for existence but never read —
    and raises a single friendly error naming every missing / unknown field.

    Returns:
        The raw manifest dict (with ``format_version``/``state`` intact).

    Raises:
        FileNotFoundError: *path* is not a bundle directory, or the manifest
            references an array archive that does not exist.
        ValueError: Malformed JSON, missing/unknown manifest fields, or an
            unsupported format version.
    """
    path = Path(path)
    manifest = _read_manifest(path)
    missing = sorted(REQUIRED_MANIFEST_FIELDS - manifest.keys())
    unknown = sorted(manifest.keys() - KNOWN_MANIFEST_FIELDS)
    problems = []
    if missing:
        problems.append(f"missing required fields {missing}")
    if unknown:
        problems.append(f"unknown fields {unknown}")
    if problems:
        raise ValueError(
            f"invalid bundle manifest at {path / MANIFEST_NAME}: "
            + " and ".join(problems)
            + f"; a valid manifest has required fields "
            f"{sorted(REQUIRED_MANIFEST_FIELDS)} and optional fields "
            f"{sorted(KNOWN_MANIFEST_FIELDS - REQUIRED_MANIFEST_FIELDS)}"
        )
    version = manifest["format_version"]
    if version != BUNDLE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported bundle format version {version!r} at {path}; "
            f"this build reads version {BUNDLE_FORMAT_VERSION}"
        )
    archive_name = manifest.get("arrays")
    if archive_name and not (path / archive_name).is_file():
        raise FileNotFoundError(
            f"bundle at {path} references array archive {archive_name!r}, "
            f"which does not exist"
        )
    return manifest


@dataclass(frozen=True)
class ModelBundle:
    """A model restored from disk together with its bundle metadata."""

    path: Path
    model: CuisineModel

    @property
    def manifest(self) -> dict:
        return self.model.bundle_manifest or {}

    @property
    def name(self) -> str:
        """Registry name of the bundled model."""
        return self.model.name

    @property
    def label_space(self) -> tuple[str, ...]:
        return self.model.label_space

    @property
    def corpus_fingerprint(self) -> str | None:
        """Fingerprint of the corpus the model was trained on."""
        return self.manifest.get("corpus_fingerprint")

    @classmethod
    def load(cls, path: str | Path, *, mmap: bool = False) -> "ModelBundle":
        """Load the bundle at *path*.

        The manifest schema is validated **up front** (see
        :func:`validate_manifest`) so malformed bundles fail with a clear
        message before ``arrays.npz`` is opened; loading then delegates to
        the registry-aware :meth:`~repro.models.base.CuisineModel.load_bundle`.

        Args:
            mmap: Memory-map the bundle's state arrays (read-only, page-
                shared across processes) instead of copying them into memory;
                ``predict_proba`` is bitwise-identical either way.
        """
        validate_manifest(path)
        return cls(path=Path(path), model=CuisineModel.load_bundle(path, mmap=mmap))


def bundle_name(path: str | Path) -> str:
    """The model name a bundle directory is keyed by.

    The manifest's ``model`` field when present (the authoritative registry
    name), the directory name otherwise.
    """
    path = Path(path)
    try:
        name = _read_manifest(path).get("model")
    except (OSError, ValueError):
        name = None
    return name if isinstance(name, str) and name else path.name


def discover_bundles(export_dir: str | Path) -> dict[str, Path]:
    """Map model name -> bundle path for every bundle under *export_dir*.

    A directory counts as a bundle when it contains a manifest; the model
    name comes from the manifest (falling back to the directory name).  The
    result is deterministic — entries are ordered by model name, independent
    of filesystem iteration order.

    Raises:
        FileNotFoundError: *export_dir* does not exist.
        ValueError: Two bundle directories carry the same model name (the
            error names both paths, instead of one silently shadowing the
            other).
    """
    export_dir = Path(export_dir)
    if not export_dir.is_dir():
        raise FileNotFoundError(f"no export directory at {export_dir}")
    found: dict[str, Path] = {}
    for entry in sorted(export_dir.iterdir()):
        if not (entry.is_dir() and is_bundle(entry)):
            continue
        name = bundle_name(entry)
        if name in found:
            raise ValueError(
                f"duplicate bundle name {name!r} under {export_dir}: "
                f"{found[name]} and {entry} both claim it; rename or remove one"
            )
        found[name] = entry
    return dict(sorted(found.items()))


def load_bundles(
    export_dir: str | Path,
    names: Sequence[str] | None = None,
    *,
    mmap: bool = False,
) -> dict[str, ModelBundle]:
    """Load (a subset of) the bundles under *export_dir*, keyed by model name.

    Args:
        export_dir: Directory of bundle sub-directories.
        names: Restrict loading to these model names (all when ``None``).
        mmap: Memory-map bundle arrays (see :meth:`ModelBundle.load`).

    Raises:
        KeyError: When a requested name has no bundle.
    """
    available = discover_bundles(export_dir)
    if names is None:
        selected = available
    else:
        missing = sorted(set(names) - set(available))
        if missing:
            raise KeyError(
                f"no bundles for {missing} under {export_dir}; "
                f"available: {sorted(available)}"
            )
        selected = {name: available[name] for name in names}
    return {name: ModelBundle.load(path, mmap=mmap) for name, path in selected.items()}
