"""Bundle discovery and loading for the serving layer.

An **export directory** (as written by
:class:`~repro.core.experiment.ExperimentRunner` with ``export_dir`` set)
holds one bundle sub-directory per trained model.  :func:`discover_bundles`
lists them, :func:`load_bundles` restores them, and :class:`ModelBundle`
pairs a restored model with its manifest metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.models.artifacts import is_bundle
from repro.models.base import CuisineModel


@dataclass(frozen=True)
class ModelBundle:
    """A model restored from disk together with its bundle metadata."""

    path: Path
    model: CuisineModel

    @property
    def manifest(self) -> dict:
        return self.model.bundle_manifest or {}

    @property
    def name(self) -> str:
        """Registry name of the bundled model."""
        return self.model.name

    @property
    def label_space(self) -> tuple[str, ...]:
        return self.model.label_space

    @property
    def corpus_fingerprint(self) -> str | None:
        """Fingerprint of the corpus the model was trained on."""
        return self.manifest.get("corpus_fingerprint")

    @classmethod
    def load(cls, path: str | Path) -> "ModelBundle":
        """Load the bundle at *path* (delegates to the registry-aware loader)."""
        return cls(path=Path(path), model=CuisineModel.load_bundle(path))


def discover_bundles(export_dir: str | Path) -> dict[str, Path]:
    """Map model name -> bundle path for every bundle under *export_dir*.

    A directory counts as a bundle when it contains a manifest; the model
    name is taken from the directory name (the convention used by the
    experiment runner's export step).
    """
    export_dir = Path(export_dir)
    if not export_dir.is_dir():
        raise FileNotFoundError(f"no export directory at {export_dir}")
    return {
        entry.name: entry
        for entry in sorted(export_dir.iterdir())
        if entry.is_dir() and is_bundle(entry)
    }


def load_bundles(
    export_dir: str | Path, names: Sequence[str] | None = None
) -> dict[str, ModelBundle]:
    """Load (a subset of) the bundles under *export_dir*, keyed by model name.

    Args:
        export_dir: Directory of bundle sub-directories.
        names: Restrict loading to these model names (all when ``None``).

    Raises:
        KeyError: When a requested name has no bundle.
    """
    available = discover_bundles(export_dir)
    if names is None:
        selected = available
    else:
        missing = sorted(set(names) - set(available))
        if missing:
            raise KeyError(
                f"no bundles for {missing} under {export_dir}; "
                f"available: {sorted(available)}"
            )
        selected = {name: available[name] for name in names}
    return {name: ModelBundle.load(path) for name, path in selected.items()}
