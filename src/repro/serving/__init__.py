"""Model serving: bundle loading and the batched prediction service.

The subsystem turns exported model bundles into a running inference layer:

* :mod:`repro.serving.bundle` — discover and load the self-contained bundles
  written by :meth:`repro.models.base.CuisineModel.save_bundle` (or by the
  experiment runner's ``export_dir``);
* :mod:`repro.serving.service` — :class:`PredictionService`, which featurizes
  raw recipe sequences through a shared warm feature store, micro-batches
  concurrent single predictions, LRU-caches repeated inputs and exposes
  hit/latency counters;
* :mod:`repro.serving.featurizer` — :class:`BatchFeaturizer`, the batch
  fast path of the service's miss traffic (one-pass tokenization with a
  shared item memo, plus precomputed fused encoders for unigram TF-IDF and
  hashing-trick specs, bitwise-identical to the sequential path);
* :mod:`repro.serving.cache` — :class:`ShardedResultCache`, the
  epoch-guarded LRU result cache partitioned into independently-locked
  stripes, which also hosts the single-flight registry coalescing identical
  concurrent requests;
* :mod:`repro.serving.batching` — the pluggable flush control of the
  micro-batch worker: :class:`FixedBatchPolicy` (constant size/timeout,
  the default) and :class:`AdaptiveBatchPolicy` (SLO-aware windows sized
  from observed queue depth).
"""

from repro.serving.batching import (
    AdaptiveBatchPolicy,
    BatchPlan,
    BatchPolicy,
    FixedBatchPolicy,
    resolve_batch_policy,
)
from repro.serving.bundle import (
    ModelBundle,
    discover_bundles,
    load_bundles,
    validate_manifest,
)
from repro.serving.cache import InFlight, ShardedResultCache
from repro.serving.featurizer import (
    BatchFeaturizer,
    PrecomputedHashingEncoder,
    PrecomputedTfidfEncoder,
)
from repro.serving.service import PredictionService

__all__ = [
    "AdaptiveBatchPolicy",
    "BatchFeaturizer",
    "BatchPlan",
    "BatchPolicy",
    "FixedBatchPolicy",
    "InFlight",
    "ModelBundle",
    "PrecomputedHashingEncoder",
    "PrecomputedTfidfEncoder",
    "PredictionService",
    "ShardedResultCache",
    "discover_bundles",
    "load_bundles",
    "validate_manifest",
    "resolve_batch_policy",
]
