"""Model serving: bundle loading and the batched prediction service.

The subsystem turns exported model bundles into a running inference layer:

* :mod:`repro.serving.bundle` — discover and load the self-contained bundles
  written by :meth:`repro.models.base.CuisineModel.save_bundle` (or by the
  experiment runner's ``export_dir``);
* :mod:`repro.serving.service` — :class:`PredictionService`, which featurizes
  raw recipe sequences through a shared warm feature store, micro-batches
  concurrent single predictions, LRU-caches repeated inputs and exposes
  hit/latency counters.
"""

from repro.serving.bundle import (
    ModelBundle,
    discover_bundles,
    load_bundles,
    validate_manifest,
)
from repro.serving.service import PredictionService

__all__ = [
    "ModelBundle",
    "PredictionService",
    "discover_bundles",
    "load_bundles",
    "validate_manifest",
]
