"""Sharded, epoch-guarded LRU result cache for the prediction service.

The original :class:`~repro.serving.service.PredictionService` cache was one
``OrderedDict`` behind one lock — under Zipf hot-key traffic every request
(hit or miss) serialized on that lock, and invalidating a hot-swapped model
scanned the whole cache while holding it.  :class:`ShardedResultCache` keeps
the exact same semantics (bounded LRU, per-model epochs guarding against
caching a retired model's results, copies in and out) but partitions entries
into N independently-locked **stripes** keyed by the hash of
``(model_name, sequence)``:

* hits/misses on different stripes never contend;
* hot-swap invalidation bumps the model's epoch first (so no racing writer
  can sneak a stale result in afterwards) and then sweeps one stripe at a
  time — each sweep holds only that stripe's lock.

The capacity bound is enforced per stripe (``capacity // n_stripes`` each),
so the total entry count never exceeds ``capacity``; a skewed key
distribution can leave some stripes below their bound, which only means the
cache is *smaller* than configured, never larger.

The cache also hosts the **single-flight registry** the prediction service
coalesces identical concurrent requests through: per stripe, a small dict of
:class:`InFlight` records keyed like cache entries.  The LRU only helps
*after* the first result lands; single-flight covers the window *before* it
— N concurrent requests for one hot key join one flight, the leader computes
once and every follower shares the (copied) result.  Flight records carry
the epoch they were opened under, so a hot-swap mid-flight is detected by
comparing epochs at join and at completion — a flight opened against a
retired model never satisfies a waiter.  Flights share the stripe locks, so
coalescing adds no global serialization point.
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from typing import Sequence

import numpy as np

__all__ = ["InFlight", "ShardedResultCache"]


class InFlight:
    """One in-progress computation other requests may wait on.

    The leader (the caller :meth:`ShardedResultCache.join_flight` elected)
    computes, then publishes through
    :meth:`ShardedResultCache.finish_flight`, which sets ``value`` *or*
    ``error`` before firing ``event``.  ``epoch`` is the model epoch the
    flight was opened under — a follower must re-check it after the event:
    a smaller-than-current epoch means a hot-swap landed mid-flight and the
    result belongs to the retired model.
    """

    __slots__ = ("epoch", "event", "value", "error")

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.event = threading.Event()
        self.value: np.ndarray | None = None
        self.error: BaseException | None = None


class ShardedResultCache:
    """An epoch-guarded LRU cache of probability rows, sharded N ways.

    Args:
        capacity: Total bound on cached entries across all stripes
            (0 disables caching entirely).
        n_stripes: Number of independently-locked stripes.  Clamped to
            ``capacity`` so every stripe can hold at least one entry.
    """

    def __init__(self, capacity: int, n_stripes: int = 16) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if n_stripes < 1:
            raise ValueError(f"n_stripes must be >= 1, got {n_stripes}")
        self.capacity = capacity
        self.n_stripes = min(n_stripes, capacity) if capacity else n_stripes
        self.stripe_capacity = (capacity // self.n_stripes) if capacity else 0
        self._stripes: tuple[OrderedDict, ...] = tuple(
            OrderedDict() for _ in range(self.n_stripes)
        )
        self._stripe_locks: tuple[threading.Lock, ...] = tuple(
            threading.Lock() for _ in range(self.n_stripes)
        )
        #: Per-stripe single-flight registries (guarded by the stripe locks).
        #: Independent of ``capacity`` — coalescing works with caching off.
        self._flights: tuple[dict, ...] = tuple({} for _ in range(self.n_stripes))
        #: Per-model epochs, bumped on hot-swap/removal.  A ``put`` carrying
        #: an older epoch is silently dropped — the result was computed by a
        #: model object that has since been retired.
        self._epochs: Counter = Counter()
        self._epoch_lock = threading.Lock()

    # ------------------------------------------------------------------
    def _stripe_of(self, model_name: str, sequence: tuple[str, ...]) -> int:
        # Per-process ``hash`` is fine here: stripe choice only has to be
        # stable within the process, and tuple hashing is much cheaper than
        # a content digest on the request hot path.
        return hash((model_name, sequence)) % self.n_stripes

    # ------------------------------------------------------------------
    def get(self, model_name: str, sequence: tuple[str, ...]) -> np.ndarray | None:
        """The cached row for ``(model_name, sequence)``, as a copy."""
        if self.capacity == 0:
            return None
        index = self._stripe_of(model_name, sequence)
        key = (model_name, sequence)
        stripe = self._stripes[index]
        with self._stripe_locks[index]:
            value = stripe.get(key)
            if value is None:
                return None
            stripe.move_to_end(key)
            return value.copy()

    def put(
        self,
        model_name: str,
        sequence: tuple[str, ...],
        value: np.ndarray,
        epoch: int | None = None,
    ) -> bool:
        """Cache a copy of *value*; returns whether it was stored.

        When *epoch* is given it must match the model's current epoch — the
        check runs under the stripe lock, and :meth:`invalidate` bumps the
        epoch *before* sweeping, so a racing stale writer either sees the new
        epoch (and drops the write) or inserts before the sweep reaches the
        stripe (and is swept).
        """
        if self.capacity == 0:
            return False
        index = self._stripe_of(model_name, sequence)
        key = (model_name, sequence)
        stripe = self._stripes[index]
        with self._stripe_locks[index]:
            if epoch is not None and self.epoch(model_name) != epoch:
                return False
            stripe[key] = value.copy()
            stripe.move_to_end(key)
            while len(stripe) > self.stripe_capacity:
                stripe.popitem(last=False)
        return True

    # ------------------------------------------------------------------
    # single-flight coalescing
    # ------------------------------------------------------------------
    def join_flight(
        self, model_name: str, sequence: tuple[str, ...], epoch: int
    ) -> "tuple[InFlight, bool]":
        """Join (or open) the in-flight computation for a key.

        Returns ``(flight, is_leader)``.  The leader owns the computation
        and **must** call :meth:`finish_flight` (success or failure) so
        followers never hang.  A caller only joins an existing flight whose
        ``epoch`` matches its own — an epoch mismatch means the resident
        flight was opened before a hot-swap; the caller opens a fresh
        flight in its place and leads it (the displaced leader still
        finishes its own record, which simply is no longer registered).
        """
        index = self._stripe_of(model_name, sequence)
        key = (model_name, sequence)
        flights = self._flights[index]
        with self._stripe_locks[index]:
            flight = flights.get(key)
            if flight is not None and flight.epoch == epoch:
                return flight, False
            flight = InFlight(epoch)
            flights[key] = flight
            return flight, True

    def finish_flight(
        self,
        model_name: str,
        sequence: tuple[str, ...],
        flight: "InFlight",
        *,
        value: np.ndarray | None = None,
        error: BaseException | None = None,
    ) -> None:
        """Publish a flight's outcome and wake its followers.

        Deregisters *flight* (only if it is still the registered record —
        it may have been displaced by a newer-epoch flight), stores the
        result as a copy (or the error), and fires the event.
        """
        index = self._stripe_of(model_name, sequence)
        key = (model_name, sequence)
        flights = self._flights[index]
        with self._stripe_locks[index]:
            if flights.get(key) is flight:
                del flights[key]
        if error is not None:
            flight.error = error
        elif value is not None:
            flight.value = value.copy()
        flight.event.set()

    def inflight_count(self) -> int:
        """Number of currently registered flights (diagnostics)."""
        total = 0
        for index in range(self.n_stripes):
            with self._stripe_locks[index]:
                total += len(self._flights[index])
        return total

    # ------------------------------------------------------------------
    # epochs and invalidation
    # ------------------------------------------------------------------
    def epoch(self, model_name: str) -> int:
        with self._epoch_lock:
            return self._epochs[model_name]

    def invalidate(self, model_name: str) -> int:
        """Drop every entry of *model_name*; returns the number dropped.

        The epoch is bumped first (no new stale results can be cached after
        this call starts), then each stripe is swept under its own lock — no
        global pause of unrelated traffic.
        """
        with self._epoch_lock:
            self._epochs[model_name] += 1
        dropped = 0
        for index in range(self.n_stripes):
            stripe = self._stripes[index]
            with self._stripe_locks[index]:
                stale = [key for key in stripe if key[0] == model_name]
                for key in stale:
                    del stripe[key]
                dropped += len(stale)
        return dropped

    def clear(self) -> None:
        """Drop every entry (epochs are kept)."""
        for index in range(self.n_stripes):
            with self._stripe_locks[index]:
                self._stripes[index].clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        total = 0
        for index in range(self.n_stripes):
            with self._stripe_locks[index]:
                total += len(self._stripes[index])
        return total

    def stripe_sizes(self) -> Sequence[int]:
        """Current entry count of each stripe (diagnostics)."""
        sizes = []
        for index in range(self.n_stripes):
            with self._stripe_locks[index]:
                sizes.append(len(self._stripes[index]))
        return sizes

    def stats(self) -> dict:
        """JSON-safe snapshot: totals plus the stripe layout."""
        return {
            "entries": len(self),
            "capacity": self.capacity,
            "stripes": self.n_stripes,
            "stripe_capacity": self.stripe_capacity,
            "in_flight": self.inflight_count(),
        }
