"""Batched prediction serving over fitted models.

:class:`PredictionService` is the inference-side counterpart of the
experiment runner: it holds any number of fitted models (typically restored
from bundles), featurizes raw recipe item sequences through one shared, warm
:class:`~repro.pipeline.store.FeatureStore`, and serves predictions through
three paths:

* :meth:`~PredictionService.predict` / :meth:`~PredictionService.predict_proba`
  — single requests.  Concurrent callers are **micro-batched**: requests
  enter a bounded queue and a worker thread flushes them as one model pass
  under a pluggable :class:`~repro.serving.batching.BatchPolicy` (fixed
  size/timeout by default; SLO-aware adaptive sizing optionally).
* :meth:`~PredictionService.predict_batch` /
  :meth:`~PredictionService.predict_proba_batch` — explicit batches,
  featurized and predicted in one pass.
* An **LRU result cache** short-circuits repeated inputs on every path, and
  **single-flight coalescing** covers the window the cache cannot: N
  concurrent identical requests trigger one featurize+predict, every waiter
  shares the (copied) result.

The service keeps per-model request counters and service-wide hit/latency
counters (:meth:`~PredictionService.stats`).

Determinism note: predicted *labels* and cached results are stable, but
probability vectors can differ from a full-batch reference in the last ulp
when micro-batching changes the batch composition — sparse matrix products
sum in a batch-shape-dependent order.  Compare probabilities across batch
compositions with ``np.allclose``, not bitwise.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.data.recipedb import RecipeDB
from repro.models.base import CuisineModel
from repro.observability import CounterSet, RollingLatency, StageTimer
from repro.pipeline.engine import CorpusEngine
from repro.pipeline.fingerprint import sequence_key
from repro.pipeline.store import FeatureStore, _save_json
from repro.serving.batching import BatchPolicy, resolve_batch_policy
from repro.serving.bundle import ModelBundle, load_bundles
from repro.serving.cache import ShardedResultCache
from repro.serving.featurizer import BatchFeaturizer
from repro.trace import Trace, current_span_id, current_trace

_SHUTDOWN = object()


@dataclass
class _Request:
    """One queued single-prediction request.

    The request carries the resolved model object and its cache epoch, so it
    is **pinned** at submission time: a concurrent hot-swap or removal of the
    name cannot change (or break) what this request predicts against, and
    its result is never cached for the successor model.
    """

    model_name: str
    sequence: tuple[str, ...]
    model: CuisineModel
    epoch: int
    submitted_at: float = 0.0
    done: threading.Event = field(default_factory=threading.Event)
    result: np.ndarray | None = None
    error: BaseException | None = None
    # Stage breadcrumbs stamped by the batch thread and read back by the
    # waiting caller, which turns them into trace spans on its own trace.
    queue_wait_s: float = 0.0
    featurize_s: float = 0.0
    predict_s: float = 0.0
    batch_size: int = 0


class PredictionService:
    """Serve cuisine predictions from fitted models with micro-batching.

    Args:
        models: Optional initial ``name -> fitted model`` mapping.
        store: Feature store used to cache request featurization (token
            preprocessing); a private store is created by default.
        engine: Sharded corpus engine used by :meth:`warm_corpus` to
            featurize whole corpora.  Pass the training side's engine (or
            one over a shared/cache-dir-backed store) so inference reuses
            the exact per-shard artifacts training produced; by default an
            in-process engine over *store* is created.
        max_batch_size: Flush the micro-batch queue at this many requests
            (the hard cap; a batch policy can plan smaller, never larger).
        flush_interval: Seconds the worker waits for a batch to fill after
            the first request arrives — a lone request therefore pays up to
            this much extra latency in exchange for batching under load.
            ``0`` disables the wait: each flush takes only what is already
            queued.  (Used by the default fixed policy; an adaptive policy
            chooses its own windows.)
        batch_policy: ``"fixed"`` (default), ``"adaptive"``, or a
            :class:`~repro.serving.batching.BatchPolicy` instance — how the
            worker sizes each flush.  See :mod:`repro.serving.batching`.
        slo_ms: Per-request latency objective handed to the adaptive policy
            (ignored by ``"fixed"`` and by policy instances).
        coalesce: Single-flight coalescing of identical concurrent requests
            (default on): the first request for a ``(model, sequence)`` key
            computes, concurrent duplicates wait on it and share a copy of
            the result — one model pass instead of N.  Hot-swaps mid-flight
            are epoch-guarded: a flight started against a retired model
            version never satisfies its waiters.
        cache_size: Bound on the LRU result cache (0 disables caching;
            coalescing works either way).
        cache_stripes: Number of independently-locked stripes the result
            cache is sharded into (clamped to ``cache_size``), so hot-key
            traffic does not serialize on one lock.
        queue_size: Bound on the request queue; when full, callers block
            until the worker drains it (backpressure).
        request_timeout: Seconds a single predict call waits for its batched
            result before raising ``TimeoutError``.
    """

    def __init__(
        self,
        models: Mapping[str, CuisineModel] | None = None,
        *,
        store: FeatureStore | None = None,
        engine: CorpusEngine | None = None,
        max_batch_size: int = 32,
        flush_interval: float = 0.005,
        batch_policy: "BatchPolicy | str | None" = None,
        slo_ms: float | None = None,
        coalesce: bool = True,
        cache_size: int = 2048,
        cache_stripes: int = 16,
        queue_size: int = 4096,
        request_timeout: float = 60.0,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if flush_interval < 0:
            raise ValueError(f"flush_interval must be >= 0, got {flush_interval}")
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        if store is None and engine is not None:
            store = engine.store
        self.store = store if store is not None else FeatureStore()
        if engine is not None and engine.store is not self.store:
            raise ValueError("engine must be built over the service's feature store")
        self.engine = engine if engine is not None else CorpusEngine(self.store)
        self.max_batch_size = max_batch_size
        self.flush_interval = flush_interval
        self.batch_policy = resolve_batch_policy(
            batch_policy,
            max_batch_size=max_batch_size,
            flush_interval=flush_interval,
            slo_ms=slo_ms,
        )
        self.coalesce = coalesce
        self.cache_size = cache_size
        self.request_timeout = request_timeout

        self._models: dict[str, CuisineModel] = {}
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._worker: threading.Thread | None = None
        self._worker_lock = threading.Lock()
        #: Serializes queue submission against close(): the shutdown sentinel
        #: is always the last item ever enqueued, so drain-on-close cannot
        #: strand a racing request behind it.
        self._submit_lock = threading.Lock()
        self._closed = False

        #: Sharded, epoch-guarded LRU of probability rows — per-model epochs
        #: guard against caching a retired model's result.
        self._result_cache = ShardedResultCache(cache_size, n_stripes=cache_stripes)
        #: Batch fast path for miss-traffic featurization (shared item memo).
        self._featurizer = BatchFeaturizer()

        # Shared observability primitives (same as the gateway's routes).
        self._counters = CounterSet()
        self._latency = RollingLatency()
        self._stages = StageTimer()
        self._stats_lock = threading.Lock()
        self._largest_batch = 0

        for name, model in (models or {}).items():
            self.add_model(model, name=name)

    # ------------------------------------------------------------------
    # construction / model management
    # ------------------------------------------------------------------
    @classmethod
    def from_export_dir(
        cls,
        export_dir: str | Path,
        names: Sequence[str] | None = None,
        **kwargs,
    ) -> "PredictionService":
        """Build a service from an experiment export directory.

        Every bundle under *export_dir* (or the *names* subset) is loaded by
        name through the registry-aware bundle loader and registered.
        """
        service = cls(**kwargs)
        for name, bundle in load_bundles(export_dir, names).items():
            service.add_bundle(bundle, name=name)
        return service

    def add_model(self, model: CuisineModel, name: str | None = None) -> str:
        """Register a fitted model under *name* (default: its registry name).

        Re-registering an existing name (hot-swapping a retrained model)
        drops that name's cached results, so stale predictions are never
        served for the new model.
        """
        name = name if name is not None else model.name
        replaced = self._models.get(name)
        self._models[name] = model
        if replaced is not None and replaced is not model:
            # Per-stripe sweep: bumps the epoch first, then drops this name's
            # entries one stripe at a time — unrelated traffic never waits on
            # a whole-cache scan.
            self._result_cache.invalidate(name)
        return name

    def add_bundle(self, bundle: ModelBundle, name: str | None = None) -> str:
        """Register a loaded :class:`ModelBundle`."""
        return self.add_model(bundle.model, name=name)

    def remove_model(self, name: str) -> CuisineModel:
        """Unregister *name*, dropping its cached results.

        In-flight requests already pinned to the model (queued micro-batch
        entries, running batch predicts) complete normally against the model
        object they captured; their results are not cached (the epoch bump),
        and *new* requests for the name fail with ``KeyError``.
        """
        model = self._require_model(name)
        del self._models[name]
        self._result_cache.invalidate(name)
        return model

    def model_names(self) -> tuple[str, ...]:
        """Registered model names, sorted."""
        return tuple(sorted(self._models))

    def _require_model(self, name: str) -> CuisineModel:
        try:
            return self._models[name]
        except KeyError:
            raise KeyError(
                f"no model {name!r} registered; available: {sorted(self._models)}"
            ) from None

    # ------------------------------------------------------------------
    # featurization (shared warm store)
    # ------------------------------------------------------------------
    def _featurize(self, model: CuisineModel, sequences: Sequence[tuple[str, ...]]):
        """Tokens for *sequences* under the model's pipeline, via the store.

        Token artifacts are keyed **per sequence** (content + pipeline
        config), so the heavy pure-Python preprocessing runs once per
        distinct sequence — independent of batch composition, of which model
        asks (models sharing a pipeline config share the artifacts), and of
        whether the request came through :meth:`warm`, the micro-batch
        worker or an explicit batch.  Cold sequences of a batch are computed
        together by the :class:`BatchFeaturizer` (one pass, shared item
        memo) — bitwise-identical to the sequential per-sequence path.
        """
        config = model.feature_spec().pipeline
        return self._featurizer.batch_tokens(sequences, config, store=self.store)

    def _predict_group(
        self, model: CuisineModel, sequences: Sequence[tuple[str, ...]]
    ) -> tuple[np.ndarray, float, float]:
        """Run one grouped model pass; returns ``(probabilities,
        featurize_seconds, predict_seconds)`` so callers can attribute the
        stage costs to the requests (and traces) that shared the pass."""
        started = time.perf_counter()
        tokens = self._featurize(model, sequences)
        featurized = time.perf_counter()
        encoder = self._featurizer.encoder_for(model)
        if encoder is not None:
            # Precomputed fused encoding (bitwise-identical features), then
            # the same classifier pass the generic path would run.
            probabilities = model.predict_proba_features(encoder.encode(tokens))
        else:
            probabilities = model.predict_proba_tokens(tokens)
        finished = time.perf_counter()
        self._stages.record("featurize", featurized - started, count=len(sequences))
        self._stages.record("predict", finished - featurized, count=len(sequences))
        return probabilities, featurized - started, finished - featurized

    def warm(
        self,
        sequences: Iterable[Sequence[str]],
        names: Sequence[str] | None = None,
    ) -> None:
        """Precompute token artifacts of *sequences* for the named models."""
        sequences = [self._validated(sequence) for sequence in sequences]
        for name in names if names is not None else self.model_names():
            self._featurize(self._require_model(name), sequences)

    def warm_corpus(self, corpus: RecipeDB, names: Sequence[str] | None = None) -> int:
        """Warm the service with a whole corpus through the sharded engine.

        The corpus is featurized shard-wise by the :class:`CorpusEngine`
        (reusing — and contributing to — the same per-shard artifacts the
        training side computes), and each recipe's token sequence is then
        republished under its per-sequence cache key, so a later predict for
        any recipe of *corpus* featurizes as a pure cache hit.  Seeding does
        not inflate the store's miss counters.

        The seeded artifacts live in the store's bounded LRU layer (plus the
        disk cache when the store has a ``cache_dir``): to keep a whole large
        corpus resident, size ``FeatureStore(max_entries=...)`` accordingly
        or configure disk persistence.

        Returns the number of (sequence, pipeline-config) artifacts seeded.
        """
        names = names if names is not None else self.model_names()
        configs = {self._require_model(name).feature_spec().pipeline for name in names}
        seeded = 0
        for config in configs:
            tokens = self.engine.tokens(corpus, config)
            for recipe, recipe_tokens in zip(corpus, tokens):
                self.store.insert(
                    "sequence_tokens",
                    sequence_key(recipe.sequence, config),
                    recipe_tokens,
                    suffix=".json",
                    save=_save_json,
                    count_miss=False,
                )
                seeded += 1
        return seeded

    # ------------------------------------------------------------------
    # result cache
    # ------------------------------------------------------------------
    def _cache_get(self, model_name: str, sequence: tuple[str, ...]) -> np.ndarray | None:
        return self._result_cache.get(model_name, sequence)

    def _model_epoch(self, model_name: str) -> int:
        return self._result_cache.epoch(model_name)

    def _cache_put(
        self,
        model_name: str,
        sequence: tuple[str, ...],
        value: np.ndarray,
        epoch: int | None = None,
    ) -> None:
        # A put carrying a stale epoch (computed by a model hot-swapped away
        # mid-flight) is silently dropped by the cache.
        self._result_cache.put(model_name, sequence, value, epoch=epoch)

    # ------------------------------------------------------------------
    # micro-batching worker
    # ------------------------------------------------------------------
    def _ensure_worker(self) -> None:
        if self._worker is not None and self._worker.is_alive():
            return
        with self._worker_lock:
            if self._closed:
                raise RuntimeError("prediction service is closed")
            if self._worker is not None and self._worker.is_alive():
                return
            self._worker = threading.Thread(
                target=self._worker_loop, name="prediction-service", daemon=True
            )
            self._worker.start()

    def _worker_loop(self) -> None:
        # The loop exits only on the close() sentinel, after draining every
        # request queued before it — shutdown never drops accepted work.
        while True:
            first = self._queue.get()
            if first is _SHUTDOWN:
                return
            # One policy consultation per batch: the plan says how many
            # requests this flush may collect and how long it may wait for
            # them.  The plan is clamped — limit to [1, max_batch_size],
            # window to >= 0 — so a misbehaving policy degrades batching
            # but can never crash the loop (queue.get raises ValueError on
            # a negative timeout) or exceed the service's hard batch cap.
            depth = self._queue.qsize()
            plan = self.batch_policy.plan(depth)
            limit = int(plan.limit)
            if not limit >= 1:
                limit = 1
            limit = min(limit, self.max_batch_size)
            window = float(plan.window)
            if not window > 0:  # also catches NaN
                window = 0.0
            batch = [first]
            # Flush on size or on timeout: block-accumulate until the batch
            # is full or the window has elapsed since the first request;
            # past the deadline, only instantaneously queued requests are
            # still drained (so window=0 batches whatever is already
            # waiting without ever sleeping).
            deadline = time.monotonic() + window
            sentinel_seen = False
            while len(batch) < limit:
                remaining = deadline - time.monotonic()
                try:
                    if remaining > 0:
                        item = self._queue.get(timeout=remaining)
                    else:
                        item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    sentinel_seen = True
                    break
                batch.append(item)
            self._stages.record_value("queue_depth", depth)
            self._stages.record_value("batch_size", len(batch))
            self.batch_policy.observe(
                batch_size=len(batch), queue_depth=self._queue.qsize()
            )
            self._process_batch(batch)
            if sentinel_seen:
                return

    def _process_batch(self, batch: list[_Request]) -> None:
        # Group by the *pinned* model object (not just the name): requests
        # queued across a hot-swap of the same name predict against the
        # model each of them started on.
        groups: dict[tuple[str, int], list[_Request]] = {}
        drained_at = time.perf_counter()
        for request in batch:
            if request.submitted_at:
                wait = drained_at - request.submitted_at
                self._stages.record("queue_wait", wait)
                request.queue_wait_s = wait
            request.batch_size = len(batch)
            groups.setdefault((request.model_name, id(request.model)), []).append(request)
        self._counters.increment("batches_flushed")
        self._counters.increment("batched_requests", len(batch))
        with self._stats_lock:
            self._largest_batch = max(self._largest_batch, len(batch))
        for (model_name, _), requests in groups.items():
            try:
                probabilities, featurize_s, predict_s = self._predict_group(
                    requests[0].model, [request.sequence for request in requests]
                )
            except BaseException as exc:  # surfaced to every waiting caller
                for request in requests:
                    request.error = exc
                    request.done.set()
                continue
            for request, row in zip(requests, probabilities):
                request.featurize_s = featurize_s
                request.predict_s = predict_s
                self._cache_put(model_name, request.sequence, row, epoch=request.epoch)
                request.result = row
                request.done.set()

    # ------------------------------------------------------------------
    # the serving API
    # ------------------------------------------------------------------
    @staticmethod
    def _validated(sequence: Iterable[str]) -> tuple[str, ...]:
        validated = tuple(str(item) for item in sequence)
        if not validated:
            raise ValueError("cannot predict an empty recipe sequence")
        return validated

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "prediction service is closed and no longer accepts requests"
            )

    def predict_proba(self, model_name: str, sequence: Iterable[str]) -> np.ndarray:
        """Class-probability vector for one raw recipe item sequence.

        Cache hits return immediately; identical concurrent misses coalesce
        into one single-flight computation (when ``coalesce`` is on); the
        remaining misses are micro-batched with any concurrent requests
        before running the model.  After :meth:`close`, new submissions are
        rejected with ``RuntimeError``.
        """
        self._ensure_open()
        # Epoch before model: if a swap lands between the two reads, the
        # stale model's result fails the epoch check and is not cached.  The
        # reverse order would cache the old model's output under the new
        # epoch.
        epoch = self._model_epoch(model_name)
        model = self._require_model(model_name)
        validated = self._validated(sequence)
        start = time.perf_counter()
        self._counters.increment(f"requests:{model_name}")
        while True:
            cached = self._cache_get(model_name, validated)
            if cached is not None:
                self._counters.increment("cache_hits")
                self._record_latency(start)
                trace = current_trace()
                if trace is not None:
                    elapsed_ms = (time.perf_counter() - start) * 1000.0
                    trace.add_span(
                        "service.cache_hit",
                        start_ms=trace.now_ms() - elapsed_ms,
                        duration_ms=elapsed_ms,
                        parent=current_span_id(),
                        attrs={"model": model_name},
                    )
                return cached
            if not self.coalesce:
                self._counters.increment("cache_misses")
                return self._submit_and_wait(model_name, validated, model, epoch, start)
            flight, is_leader = self._result_cache.join_flight(
                model_name, validated, epoch
            )
            if is_leader:
                self._counters.increment("cache_misses")
                try:
                    result = self._submit_and_wait(
                        model_name, validated, model, epoch, start
                    )
                except BaseException as exc:
                    # Followers share the leader's fate — never hang them.
                    self._result_cache.finish_flight(
                        model_name, validated, flight, error=exc
                    )
                    raise
                self._result_cache.finish_flight(
                    model_name, validated, flight, value=result
                )
                return result
            # Follower: wait for the leader's computation instead of
            # enqueueing a duplicate.
            if not flight.event.wait(timeout=self.request_timeout):
                raise TimeoutError(
                    f"prediction for model {model_name!r} timed out after "
                    f"{self.request_timeout}s (coalesced)"
                )
            if flight.epoch != self._model_epoch(model_name):
                # A hot-swap landed mid-flight: the leader computed against
                # the retired model version.  The leader's own caller keeps
                # its pinned result (historical semantics); waiters retry
                # against the current model.
                self._counters.increment("coalesced_stale")
                epoch = self._model_epoch(model_name)
                model = self._require_model(model_name)
                continue
            if flight.error is not None:
                raise flight.error
            self._counters.increment("coalesced_hits")
            self._record_latency(start)
            trace = current_trace()
            if trace is not None:
                elapsed_ms = (time.perf_counter() - start) * 1000.0
                trace.add_span(
                    "service.coalesced_follower",
                    start_ms=trace.now_ms() - elapsed_ms,
                    duration_ms=elapsed_ms,
                    parent=current_span_id(),
                    attrs={"model": model_name},
                )
            assert flight.value is not None
            return flight.value.copy()

    def _submit_and_wait(
        self,
        model_name: str,
        validated: tuple[str, ...],
        model: CuisineModel,
        epoch: int,
        start: float,
    ) -> np.ndarray:
        """Enqueue one micro-batch request and wait for its result."""
        request = _Request(
            model_name=model_name,
            sequence=validated,
            model=model,
            epoch=epoch,
            submitted_at=time.perf_counter(),
        )
        with self._submit_lock:
            self._ensure_open()  # re-checked: no submission after the sentinel
            self._ensure_worker()
            self._queue.put(request)
        if not request.done.wait(timeout=self.request_timeout):
            raise TimeoutError(
                f"prediction for model {model_name!r} timed out after "
                f"{self.request_timeout}s"
            )
        if request.error is not None:
            raise request.error
        self._record_latency(start)
        trace = current_trace()
        if trace is not None:
            self._emit_batch_spans(trace, request)
        assert request.result is not None
        return request.result

    @staticmethod
    def _emit_batch_spans(trace: Trace, request: _Request) -> None:
        """Turn the batch thread's stage breadcrumbs into trace spans.

        The batch thread knows nothing about traces (it serves many callers'
        requests in one pass); the waiting caller reconstructs its own
        request's timeline — queue wait, then the shared featurize and
        predict stages — on the trace clock, laid out backwards from now.
        """
        wait_ms = request.queue_wait_s * 1000.0
        featurize_ms = request.featurize_s * 1000.0
        predict_ms = request.predict_s * 1000.0
        total_ms = wait_ms + featurize_ms + predict_ms
        cursor = trace.now_ms() - total_ms
        parent = current_span_id()
        batch_span = trace.add_span(
            "service.batch",
            start_ms=cursor,
            duration_ms=total_ms,
            parent=parent,
            attrs={"model": request.model_name, "batch_size": request.batch_size},
        )
        for name, duration in (
            ("service.queue_wait", wait_ms),
            ("service.featurize", featurize_ms),
            ("service.predict", predict_ms),
        ):
            trace.add_span(
                name,
                start_ms=cursor,
                duration_ms=duration,
                parent=batch_span.span_id,
            )
            cursor += duration

    def predict(self, model_name: str, sequence: Iterable[str]) -> str:
        """Predicted cuisine name for one raw recipe item sequence."""
        model = self._require_model(model_name)
        probabilities = self.predict_proba(model_name, sequence)
        return model.label_space[int(np.argmax(probabilities))]

    def predict_proba_batch(
        self, model_name: str, sequences: Sequence[Iterable[str]]
    ) -> np.ndarray:
        """Class-probability matrix for a batch of raw sequences.

        The whole batch is featurized and predicted in one model pass
        (cache hits are served from the LRU and excluded from the pass).
        """
        self._ensure_open()
        epoch = self._model_epoch(model_name)  # before the model; see predict_proba
        model = self._require_model(model_name)
        validated = [self._validated(sequence) for sequence in sequences]
        if not validated:
            return np.zeros((0, model.n_classes))
        start = time.perf_counter()
        self._counters.increment(f"requests:{model_name}", len(validated))
        rows: dict[int, np.ndarray] = {}
        pending: list[tuple[int, tuple[str, ...]]] = []
        for index, sequence in enumerate(validated):
            cached = self._cache_get(model_name, sequence)
            if cached is not None:
                rows[index] = cached
            else:
                pending.append((index, sequence))
        self._counters.increment("cache_hits", len(validated) - len(pending))
        self._counters.increment("cache_misses", len(pending))
        if pending:
            probabilities, featurize_s, predict_s = self._predict_group(
                model, [sequence for _, sequence in pending]
            )
            for (index, sequence), row in zip(pending, probabilities):
                self._cache_put(model_name, sequence, row, epoch=epoch)
                rows[index] = row
            trace = current_trace()
            if trace is not None:
                parent = current_span_id()
                end = trace.now_ms()
                f_ms, p_ms = featurize_s * 1000.0, predict_s * 1000.0
                trace.add_span(
                    "service.featurize",
                    start_ms=end - f_ms - p_ms,
                    duration_ms=f_ms,
                    parent=parent,
                    attrs={"sequences": len(pending)},
                )
                trace.add_span(
                    "service.predict",
                    start_ms=end - p_ms,
                    duration_ms=p_ms,
                    parent=parent,
                    attrs={"sequences": len(pending)},
                )
        elif validated:
            trace = current_trace()
            if trace is not None:
                trace.add_span(
                    "service.cache_hit",
                    start_ms=trace.now_ms(),
                    duration_ms=0.0,
                    parent=current_span_id(),
                    attrs={"sequences": len(validated)},
                )
        self._record_latency(start, count=len(validated))
        return np.vstack([rows[index] for index in range(len(validated))])

    def predict_batch(self, model_name: str, sequences: Sequence[Iterable[str]]) -> list[str]:
        """Predicted cuisine names for a batch of raw sequences."""
        model = self._require_model(model_name)
        probabilities = self.predict_proba_batch(model_name, sequences)
        return [model.label_space[i] for i in probabilities.argmax(axis=1)]

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _record_latency(self, start: float, count: int = 1) -> None:
        self._latency.record(time.perf_counter() - start, count=count)

    def stats(self) -> dict:
        """Service counters plus the underlying feature-store statistics.

        Counters and latency come from the shared
        :mod:`repro.gateway.observability` primitives — the latency dict
        includes rolling p50/p95/p99 quantiles alongside the lifetime
        totals.
        """
        counters = self._counters.as_dict()  # JSON-safe, sorted, zeros omitted
        requests = {
            name.split(":", 1)[1]: count
            for name, count in counters.items()
            if name.startswith("requests:")
        }
        batches = counters.get("batches_flushed", 0)
        batched = counters.get("batched_requests", 0)
        with self._stats_lock:
            largest = self._largest_batch
        payload = {
            "requests": sum(requests.values()),
            "requests_by_model": requests,
            "cache_hits": counters.get("cache_hits", 0),
            "cache_misses": counters.get("cache_misses", 0),
            #: Requests served by joining another request's in-flight
            #: computation (single-flight), and waits retried because a
            #: hot-swap landed mid-flight.
            "coalesced_hits": counters.get("coalesced_hits", 0),
            "coalesced_stale": counters.get("coalesced_stale", 0),
            "batches_flushed": batches,
            "batched_requests": batched,
            "mean_batch_size": (batched / batches) if batches else 0.0,
            "largest_batch": largest,
            "latency": self._latency.snapshot(),
            #: Per-stage split of the batch wall clock: queue_wait (submit →
            #: batch drained), featurize (tokens), predict (encode + model) —
            #: plus the per-flush queue_depth / batch_size distributions.
            "stages": self._stages.snapshot(),
            #: The active batch policy's self-description (+ live signals).
            "batching": self.batch_policy.describe(),
        }
        payload["cached_entries"] = len(self._result_cache)
        payload["cache"] = self._result_cache.stats()
        payload["store"] = self.store.stats()
        return payload

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the service down: reject new requests, drain accepted ones.

        Idempotent and terminal.  Submissions arriving after ``close()``
        raise ``RuntimeError`` immediately; every request that was accepted
        into the micro-batch queue before shutdown is still **processed to
        completion** (its caller receives a real result, not an error).  Only
        requests that race the shutdown into the queue after the drain
        sentinel are failed — with the same clear ``RuntimeError``, never a
        silent drop or a timeout.
        """
        with self._submit_lock:
            with self._worker_lock:
                if self._closed:
                    return  # another close() owns (or finished) the shutdown
                self._closed = True
                worker = self._worker
            if worker is not None and worker.is_alive():
                # The worker drains everything queued before this sentinel,
                # and the submit lock guarantees nothing is queued after it.
                self._queue.put(_SHUTDOWN)
        if worker is not None:
            worker.join(timeout=30.0)
            if worker.is_alive():
                # Still draining a deep backlog: leave the queue to it — it
                # will complete every accepted request and exit at the
                # sentinel.  Touching the queue here would steal its work.
                return
        self._worker = None
        while True:  # fail (don't drop) anything left behind by a dead worker
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                item.error = RuntimeError(
                    "prediction service is closed and no longer accepts requests"
                )
                item.done.set()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
