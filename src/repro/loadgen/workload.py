"""Deterministic synthetic workloads: who asks what, when.

A :class:`Workload` is a fully materialized, seeded request schedule — the
sequence pool indices, the per-request routing keys and (for open-loop
runs) the arrival times are all drawn up front from one
``numpy.random.default_rng(seed)``, so the same configuration replays the
identical traffic on every run, on every machine.  The harness
(:mod:`repro.loadgen.harness`) only *executes* a workload; it never draws
randomness of its own.

Key distributions model user populations:

* ``"uniform"`` — every key equally likely (cold caches, worst case);
* ``"zipf"`` — key rank *r* weighted ``r**-s``: a few hot keys dominate,
  the realistic shape for user traffic (and the one that exercises result
  caches and deterministic per-key routing).

The same two shapes apply independently to the **payload** pool
(``sequence_distribution``): Zipf-skewed sequences create the hot-key
request traffic that exercises result caches and single-flight coalescing
(many concurrent requests for literally the same sequence).

Arrival processes model *when* requests land:

* ``"poisson"`` — memoryless exponential gaps at the target rate, the
  steady-state baseline;
* ``"burst"`` — a seeded on/off modulated Poisson process (a Markov
  modulated Poisson process with two phases): exponential-length ON
  phases fire at ``burst_factor ×`` the base rate, OFF phases at a
  compensating lower rate, so the time-averaged rate stays close to
  ``rate`` while short bursts pile requests into the service's queue —
  the shape that exercises adaptive batching and coalescing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

KEY_DISTRIBUTIONS = ("uniform", "zipf")
SEQUENCE_DISTRIBUTIONS = ("uniform", "zipf")
ARRIVAL_SHAPES = ("poisson", "burst")


@dataclass(frozen=True)
class WorkloadRequest:
    """One scheduled request: payload, routing key, open-loop arrival time."""

    sequence: tuple[str, ...]
    key: str
    arrival: float  # seconds from workload start; 0.0 in closed-loop runs


@dataclass(frozen=True)
class Workload:
    """A materialized, replayable traffic schedule."""

    requests: tuple[WorkloadRequest, ...]
    seed: int
    rate: float | None  # open-loop target rate (requests/second), if any
    arrival: str = "poisson"  # arrival shape the schedule was drawn with

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def duration(self) -> float:
        """Scheduled span of the arrival process (0.0 for closed-loop)."""
        return self.requests[-1].arrival if self.requests else 0.0

    def key_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for request in self.requests:
            counts[request.key] = counts.get(request.key, 0) + 1
        return counts


def zipf_weights(n_keys: int, s: float) -> np.ndarray:
    """Normalized Zipf probabilities over ranks ``1..n_keys`` (weight r**-s)."""
    ranks = np.arange(1, n_keys + 1, dtype=np.float64)
    weights = ranks**-s
    return weights / weights.sum()


def _burst_arrivals(
    rng: np.random.Generator,
    n_requests: int,
    rate: float,
    *,
    on_seconds: float,
    off_seconds: float,
    factor: float,
) -> np.ndarray:
    """Seeded on/off (two-phase Markov modulated) Poisson arrival times.

    ON phases (mean length *on_seconds*) fire at ``factor * rate``; OFF
    phases (mean *off_seconds*) at the rate that balances the phase-weighted
    average back to *rate* — clamped to at least 2% of *rate* when the duty
    cycle and factor would demand a non-positive OFF rate.  Each
    inter-arrival gap is drawn at the rate of the phase active when the
    previous request landed (a slight smoothing at phase boundaries, so the
    realized average rate tracks *rate* only approximately); phase flips are
    drawn from the same generator, so the whole schedule replays bit-for-bit
    from one seed.
    """
    duty = on_seconds / (on_seconds + off_seconds)
    on_rate = factor * rate
    off_duty = 1.0 - duty
    off_rate = (
        max((rate - duty * on_rate) / off_duty, 0.02 * rate) if off_duty > 0 else rate
    )
    arrivals = np.empty(n_requests, dtype=np.float64)
    now = 0.0
    in_burst = True
    phase_end = rng.exponential(on_seconds)
    for i in range(n_requests):
        now += rng.exponential(1.0 / (on_rate if in_burst else off_rate))
        while now >= phase_end:
            in_burst = not in_burst
            phase_end += rng.exponential(on_seconds if in_burst else off_seconds)
        arrivals[i] = now
    return arrivals


def build_workload(
    sequences: Sequence[Sequence[str]],
    *,
    n_requests: int,
    seed: int,
    rate: float | None = None,
    key_distribution: str = "uniform",
    n_keys: int = 100,
    zipf_s: float = 1.1,
    sequence_distribution: str = "uniform",
    arrival: str = "poisson",
    burst_on_seconds: float = 0.05,
    burst_off_seconds: float = 0.2,
    burst_factor: float = 4.0,
) -> Workload:
    """Draw a seeded request schedule over a pool of recipe sequences.

    Args:
        sequences: Pool of raw item sequences requests sample from.
        n_requests: Total requests in the schedule.
        seed: RNG seed; same seed → identical schedule, bit for bit.
        rate: Open-loop arrival rate in requests/second — arrivals are the
            cumulative sum of seeded exponential inter-arrival gaps (a
            Poisson process).  ``None`` leaves every arrival at 0.0
            (closed-loop runs ignore arrivals).
        key_distribution: ``"uniform"`` or ``"zipf"`` over ``n_keys`` user
            keys (``"user-0"`` is the hottest Zipf rank).
        n_keys: Size of the synthetic user-key population.
        zipf_s: Zipf exponent (larger → more skew); shared by the key and
            sequence distributions.
        sequence_distribution: ``"uniform"`` (default, the historical
            behaviour) or ``"zipf"`` over the *pool* — rank 0 of
            *sequences* is the hottest payload.  Zipf payloads are what
            exercise result caches and single-flight coalescing.
        arrival: ``"poisson"`` (default) or ``"burst"`` — see the module
            docstring.  Only meaningful with a *rate*.
        burst_on_seconds / burst_off_seconds: Mean burst / quiet phase
            lengths of the ``"burst"`` shape (exponentially distributed).
        burst_factor: ON-phase rate multiplier of the ``"burst"`` shape
            (must be > 1; the OFF rate compensates to preserve the
            time-averaged *rate*).
    """
    if not sequences:
        raise ValueError("need a non-empty sequence pool")
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    if n_keys < 1:
        raise ValueError(f"n_keys must be >= 1, got {n_keys}")
    if rate is not None and not rate > 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if key_distribution not in KEY_DISTRIBUTIONS:
        raise ValueError(
            f"unknown key_distribution {key_distribution!r}; "
            f"known: {KEY_DISTRIBUTIONS}"
        )
    if sequence_distribution not in SEQUENCE_DISTRIBUTIONS:
        raise ValueError(
            f"unknown sequence_distribution {sequence_distribution!r}; "
            f"known: {SEQUENCE_DISTRIBUTIONS}"
        )
    if arrival not in ARRIVAL_SHAPES:
        raise ValueError(f"unknown arrival {arrival!r}; known: {ARRIVAL_SHAPES}")
    if arrival == "burst":
        if rate is None:
            raise ValueError("arrival='burst' needs a rate")
        if not burst_factor > 1:
            raise ValueError(f"burst_factor must be > 1, got {burst_factor}")
        if not burst_on_seconds > 0 or not burst_off_seconds > 0:
            raise ValueError(
                "burst_on_seconds and burst_off_seconds must be positive, got "
                f"{burst_on_seconds} / {burst_off_seconds}"
            )

    pool = [tuple(str(item) for item in sequence) for sequence in sequences]
    rng = np.random.default_rng(seed)
    # Draw order is part of the determinism contract: sequences, then keys,
    # then arrivals — a historical configuration (uniform sequences, poisson
    # arrivals) replays bit-for-bit what it always produced.
    if sequence_distribution == "zipf":
        sequence_indices = rng.choice(
            len(pool), size=n_requests, p=zipf_weights(len(pool), zipf_s)
        )
    else:
        sequence_indices = rng.integers(0, len(pool), size=n_requests)
    if key_distribution == "zipf":
        key_ranks = rng.choice(n_keys, size=n_requests, p=zipf_weights(n_keys, zipf_s))
    else:
        key_ranks = rng.integers(0, n_keys, size=n_requests)
    if rate is None:
        arrivals = np.zeros(n_requests)
    elif arrival == "burst":
        arrivals = _burst_arrivals(
            rng,
            n_requests,
            rate,
            on_seconds=burst_on_seconds,
            off_seconds=burst_off_seconds,
            factor=burst_factor,
        )
    else:
        arrivals = np.cumsum(rng.exponential(1.0 / rate, size=n_requests))

    requests = tuple(
        WorkloadRequest(
            sequence=pool[int(sequence_indices[i])],
            key=f"user-{int(key_ranks[i])}",
            arrival=float(arrivals[i]),
        )
        for i in range(n_requests)
    )
    return Workload(requests=requests, seed=seed, rate=rate, arrival=arrival)
