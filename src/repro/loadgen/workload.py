"""Deterministic synthetic workloads: who asks what, when.

A :class:`Workload` is a fully materialized, seeded request schedule — the
sequence pool indices, the per-request routing keys and (for open-loop
runs) the arrival times are all drawn up front from one
``numpy.random.default_rng(seed)``, so the same configuration replays the
identical traffic on every run, on every machine.  The harness
(:mod:`repro.loadgen.harness`) only *executes* a workload; it never draws
randomness of its own.

Key distributions model user populations:

* ``"uniform"`` — every key equally likely (cold caches, worst case);
* ``"zipf"`` — key rank *r* weighted ``r**-s``: a few hot keys dominate,
  the realistic shape for user traffic (and the one that exercises result
  caches and deterministic per-key routing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

KEY_DISTRIBUTIONS = ("uniform", "zipf")


@dataclass(frozen=True)
class WorkloadRequest:
    """One scheduled request: payload, routing key, open-loop arrival time."""

    sequence: tuple[str, ...]
    key: str
    arrival: float  # seconds from workload start; 0.0 in closed-loop runs


@dataclass(frozen=True)
class Workload:
    """A materialized, replayable traffic schedule."""

    requests: tuple[WorkloadRequest, ...]
    seed: int
    rate: float | None  # open-loop target rate (requests/second), if any

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def duration(self) -> float:
        """Scheduled span of the arrival process (0.0 for closed-loop)."""
        return self.requests[-1].arrival if self.requests else 0.0

    def key_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for request in self.requests:
            counts[request.key] = counts.get(request.key, 0) + 1
        return counts


def zipf_weights(n_keys: int, s: float) -> np.ndarray:
    """Normalized Zipf probabilities over ranks ``1..n_keys`` (weight r**-s)."""
    ranks = np.arange(1, n_keys + 1, dtype=np.float64)
    weights = ranks**-s
    return weights / weights.sum()


def build_workload(
    sequences: Sequence[Sequence[str]],
    *,
    n_requests: int,
    seed: int,
    rate: float | None = None,
    key_distribution: str = "uniform",
    n_keys: int = 100,
    zipf_s: float = 1.1,
) -> Workload:
    """Draw a seeded request schedule over a pool of recipe sequences.

    Args:
        sequences: Pool of raw item sequences requests sample from.
        n_requests: Total requests in the schedule.
        seed: RNG seed; same seed → identical schedule, bit for bit.
        rate: Open-loop arrival rate in requests/second — arrivals are the
            cumulative sum of seeded exponential inter-arrival gaps (a
            Poisson process).  ``None`` leaves every arrival at 0.0
            (closed-loop runs ignore arrivals).
        key_distribution: ``"uniform"`` or ``"zipf"`` over ``n_keys`` user
            keys (``"user-0"`` is the hottest Zipf rank).
        n_keys: Size of the synthetic user-key population.
        zipf_s: Zipf exponent (larger → more skew).
    """
    if not sequences:
        raise ValueError("need a non-empty sequence pool")
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    if n_keys < 1:
        raise ValueError(f"n_keys must be >= 1, got {n_keys}")
    if rate is not None and not rate > 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if key_distribution not in KEY_DISTRIBUTIONS:
        raise ValueError(
            f"unknown key_distribution {key_distribution!r}; "
            f"known: {KEY_DISTRIBUTIONS}"
        )

    pool = [tuple(str(item) for item in sequence) for sequence in sequences]
    rng = np.random.default_rng(seed)
    sequence_indices = rng.integers(0, len(pool), size=n_requests)
    if key_distribution == "zipf":
        key_ranks = rng.choice(n_keys, size=n_requests, p=zipf_weights(n_keys, zipf_s))
    else:
        key_ranks = rng.integers(0, n_keys, size=n_requests)
    if rate is not None:
        arrivals = np.cumsum(rng.exponential(1.0 / rate, size=n_requests))
    else:
        arrivals = np.zeros(n_requests)

    requests = tuple(
        WorkloadRequest(
            sequence=pool[int(sequence_indices[i])],
            key=f"user-{int(key_ranks[i])}",
            arrival=float(arrivals[i]),
        )
        for i in range(n_requests)
    )
    return Workload(requests=requests, seed=seed, rate=rate)
