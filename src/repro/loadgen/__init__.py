"""Seeded traffic generation against the serving frontier.

``repro.loadgen`` is the measurement half of the serving stack: it replays
deterministic synthetic recipe traffic against a live ``repro.server``
process (:class:`HTTPTarget`) or directly against an in-process
:class:`~repro.gateway.ModelGateway` (:class:`GatewayTarget`, the
no-network baseline), in open-loop (seeded Poisson arrivals at a target
rate) or closed-loop (fixed-concurrency) mode, and reports throughput,
p50/p95/p99 latency and error/shed counts as a JSON :class:`LoadReport` —
the artifact that seeds the ``BENCH_*.json`` perf trajectory.

* :mod:`repro.loadgen.workload` — seeded schedules: key distributions
  (uniform / Zipf hot keys), exponential inter-arrival times;
* :mod:`repro.loadgen.client` — minimal asyncio HTTP/1.1 client with a
  keep-alive connection pool;
* :mod:`repro.loadgen.harness` — open/closed-loop runners, targets and
  the report.
"""

from repro.loadgen.harness import (
    GatewayTarget,
    HTTPTarget,
    LoadReport,
    MultiHTTPTarget,
    latency_summary,
    run_closed_loop,
    run_open_loop,
)
from repro.loadgen.workload import (
    ARRIVAL_SHAPES,
    KEY_DISTRIBUTIONS,
    SEQUENCE_DISTRIBUTIONS,
    Workload,
    WorkloadRequest,
    build_workload,
    zipf_weights,
)

__all__ = [
    "ARRIVAL_SHAPES",
    "GatewayTarget",
    "HTTPTarget",
    "KEY_DISTRIBUTIONS",
    "SEQUENCE_DISTRIBUTIONS",
    "LoadReport",
    "MultiHTTPTarget",
    "Workload",
    "WorkloadRequest",
    "build_workload",
    "latency_summary",
    "run_closed_loop",
    "run_open_loop",
    "zipf_weights",
]
