"""A minimal asyncio HTTP/1.1 client for the load generator.

Dependency-free on purpose (mirroring :mod:`repro.server.protocol`):
persistent keep-alive connections over asyncio streams, explicit
``Content-Length`` framing, and a small free-list pool so an open-loop run
with hundreds of requests in flight reuses sockets instead of exhausting
ephemeral ports.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass


@dataclass
class ClientResponse:
    """One parsed response: status, lowercase headers, raw body."""

    status: int
    headers: dict[str, str]
    body: bytes

    def json(self):
        return json.loads(self.body)


class ClientConnection:
    """One keep-alive connection to the server."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self.reusable = False

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
        self.reusable = True

    async def request(
        self,
        method: str,
        path: str,
        payload=None,
        headers: dict[str, str] | None = None,
    ) -> ClientResponse:
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(body)}",
            "Content-Type: application/json",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        self._writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(self) -> ClientResponse:
        assert self._reader is not None
        head = await self._reader.readuntil(b"\r\n\r\n")
        status_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = status_line.split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ConnectionError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        response_headers: dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        if response_headers.get("connection", "").lower() == "close":
            self.reusable = False
        return ClientResponse(status=status, headers=response_headers, body=body)

    def close(self) -> None:
        self.reusable = False
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            self._reader = None


class ConnectionPool:
    """A free-list of keep-alive connections to one server."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._free: list[ClientConnection] = []

    async def request(
        self,
        method: str,
        path: str,
        payload=None,
        headers: dict[str, str] | None = None,
    ) -> ClientResponse:
        """Run one request on a pooled connection (opened on demand).

        Only a failure on a *reused* pooled socket is retried, once, on a
        fresh connection: an idle keep-alive socket the server closed
        (drain, timeout) fails on the write before the request was ever
        accepted, so the re-send is safe.  A failure on a fresh connection
        propagates — retrying there could double-execute a request the
        server may already have processed.
        """
        reused = bool(self._free)
        connection = self._free.pop() if reused else ClientConnection(self.host, self.port)
        try:
            response = await connection.request(method, path, payload, headers)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            connection.close()
            if not reused:
                raise
            connection = ClientConnection(self.host, self.port)
            try:
                response = await connection.request(method, path, payload, headers)
            except BaseException:
                connection.close()
                raise
        if connection.reusable:
            self._free.append(connection)
        else:
            connection.close()
        return response

    def close(self) -> None:
        for connection in self._free:
            connection.close()
        self._free.clear()
